open Eric_rv

type node = {
  n_index : int;
  n_offset : int;
  n_size : int;
  n_inst : Inst.t option;
}

type t = {
  nodes : node array;
  index_of_offset : (int, int) Hashtbl.t;
  text_size : int;
}

let build (p : Program.t) =
  let offsets = Program.parcel_offsets p in
  let index_of_offset = Hashtbl.create (Array.length p.Program.text) in
  let nodes =
    Array.mapi
      (fun i parcel ->
        Hashtbl.replace index_of_offset offsets.(i) i;
        { n_index = i;
          n_offset = offsets.(i);
          n_size = Program.parcel_size parcel;
          n_inst = Program.decode_parcel parcel })
      p.Program.text
  in
  { nodes; index_of_offset; text_size = Program.text_size p }

let node_at t offset =
  match Hashtbl.find_opt t.index_of_offset offset with
  | Some i -> Some t.nodes.(i)
  | None -> None

type flow =
  | Next
  | Jump of int
  | Cond of int
  | Call of int
  | Return
  | Indirect
  | Indirect_call

let flow_of node =
  match node.n_inst with
  | None -> Next
  | Some inst -> (
    match inst with
    | Inst.Branch (_, _, _, disp) -> Cond (node.n_offset + disp)
    | Inst.Jal (rd, disp) ->
      if Reg.equal rd Reg.x0 then Jump (node.n_offset + disp) else Call (node.n_offset + disp)
    | Inst.Jalr (rd, rs1, imm) ->
      if Reg.equal rd Reg.x0 then
        if Reg.equal rs1 Reg.ra && imm = 0 then Return else Indirect
      else Indirect_call
    | _ -> Next)

let targets_of_flow = function
  | Jump t | Cond t | Call t -> [ t ]
  | Next | Return | Indirect | Indirect_call -> []

let falls_through = function
  | Next | Cond _ | Call _ | Indirect_call -> true
  | Jump _ | Return | Indirect -> false

(* The fallthrough successor is the *next parcel boundary*, i.e. the
   node's own offset plus its 2- or 4-byte size — never a fixed +4.  A
   compressed call ([c.jalr]) at the end of a block hands control to the
   parcel two bytes later; getting this wrong silently detaches every
   block that follows a compressed terminator. *)
let fallthrough t node =
  if falls_through (flow_of node) then
    let o = node.n_offset + node.n_size in
    if o < t.text_size then Some o else None
  else None

let succ_offsets t node =
  let targets =
    List.filter
      (fun o -> o >= 0 && o < t.text_size && Hashtbl.mem t.index_of_offset o)
      (targets_of_flow (flow_of node))
  in
  match fallthrough t node with Some o -> o :: targets | None -> targets

let call_sites t =
  Array.fold_right
    (fun node acc ->
      match flow_of node with Call target -> (node.n_offset, target) :: acc | _ -> acc)
    t.nodes []

(* ------------------------------------------------------------------ *)
(* Basic blocks                                                        *)
(* ------------------------------------------------------------------ *)

type block = {
  bb_index : int;
  bb_first : int;
  bb_last : int;
  bb_succs : int list;
}

type blocks = { blocks : block array; block_of_node : int array }

let basic_blocks t =
  let n = Array.length t.nodes in
  if n = 0 then { blocks = [||]; block_of_node = [||] }
  else begin
    let leader = Array.make n false in
    leader.(0) <- true;
    Array.iter
      (fun node ->
        let f = flow_of node in
        List.iter
          (fun target ->
            match Hashtbl.find_opt t.index_of_offset target with
            | Some i -> leader.(i) <- true
            | None -> () (* misaligned/out-of-section: verifier's business *))
          (targets_of_flow f);
        match f with
        | Next -> ()
        | _ -> (
          (* Any control-transfer parcel ends its block; whatever sits at
             the next boundary (2 bytes later for RVC) starts a new one. *)
          match Hashtbl.find_opt t.index_of_offset (node.n_offset + node.n_size) with
          | Some i -> leader.(i) <- true
          | None -> ()))
      t.nodes;
    let block_of_node = Array.make n 0 in
    let count = ref 0 in
    for i = 0 to n - 1 do
      if leader.(i) && i > 0 then incr count;
      block_of_node.(i) <- !count
    done;
    let nblocks = !count + 1 in
    let first = Array.make nblocks max_int and last = Array.make nblocks 0 in
    for i = 0 to n - 1 do
      let b = block_of_node.(i) in
      if i < first.(b) then first.(b) <- i;
      if i > last.(b) then last.(b) <- i
    done;
    let blocks =
      Array.init nblocks (fun b ->
          let last_node = t.nodes.(last.(b)) in
          let offsets =
            (* A call resumes at its fallthrough; the callee entry is an
               interprocedural boundary, not an intra-CFG successor. *)
            match flow_of last_node with
            | Call _ -> ( match fallthrough t last_node with Some o -> [ o ] | None -> [])
            | _ -> succ_offsets t last_node
          in
          let succs =
            List.filter_map
              (fun o ->
                match Hashtbl.find_opt t.index_of_offset o with
                | Some i -> Some block_of_node.(i)
                | None -> None)
              offsets
          in
          { bb_index = b; bb_first = first.(b); bb_last = last.(b);
            bb_succs = List.sort_uniq compare succs })
    in
    { blocks; block_of_node }
  end
