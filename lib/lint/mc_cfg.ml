open Eric_rv

type node = {
  n_index : int;
  n_offset : int;
  n_size : int;
  n_inst : Inst.t option;
}

type t = {
  nodes : node array;
  index_of_offset : (int, int) Hashtbl.t;
  text_size : int;
}

let build (p : Program.t) =
  let offsets = Program.parcel_offsets p in
  let index_of_offset = Hashtbl.create (Array.length p.Program.text) in
  let nodes =
    Array.mapi
      (fun i parcel ->
        Hashtbl.replace index_of_offset offsets.(i) i;
        { n_index = i;
          n_offset = offsets.(i);
          n_size = Program.parcel_size parcel;
          n_inst = Program.decode_parcel parcel })
      p.Program.text
  in
  { nodes; index_of_offset; text_size = Program.text_size p }

let node_at t offset =
  match Hashtbl.find_opt t.index_of_offset offset with
  | Some i -> Some t.nodes.(i)
  | None -> None

type flow =
  | Next
  | Jump of int
  | Cond of int
  | Call of int
  | Return
  | Indirect

let flow_of node =
  match node.n_inst with
  | None -> Next
  | Some inst -> (
    match inst with
    | Inst.Branch (_, _, _, disp) -> Cond (node.n_offset + disp)
    | Inst.Jal (rd, disp) ->
      if Reg.equal rd Reg.x0 then Jump (node.n_offset + disp) else Call (node.n_offset + disp)
    | Inst.Jalr (rd, rs1, imm) ->
      if Reg.equal rd Reg.x0 && Reg.equal rs1 Reg.ra && imm = 0 then Return else Indirect
    | _ -> Next)

let targets_of_flow = function
  | Jump t | Cond t | Call t -> [ t ]
  | Next | Return | Indirect -> []

let call_sites t =
  Array.fold_right
    (fun node acc ->
      match flow_of node with Call target -> (node.n_offset, target) :: acc | _ -> acc)
    t.nodes []
