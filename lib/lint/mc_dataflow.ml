open Eric_rv

module Value = struct
  type t = Bot | Vals of int64 list | Top

  let max_width = 8
  let bottom = Bot

  let normalize vs =
    let vs = List.sort_uniq Int64.compare vs in
    if List.length vs > max_width then Top else Vals vs

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Top, _ | _, Top -> Top
    | Vals u, Vals v -> normalize (u @ v)

  let equal a b =
    match (a, b) with
    | Bot, Bot | Top, Top -> true
    | Vals u, Vals v -> u = v
    | _ -> false

  let pp fmt = function
    | Bot -> Format.pp_print_string fmt "⊥"
    | Top -> Format.pp_print_string fmt "⊤"
    | Vals vs ->
      Format.fprintf fmt "{%s}" (String.concat "," (List.map Int64.to_string vs))

  let const v = Vals [ v ]
  let to_list = function Bot -> Some [] | Vals vs -> Some vs | Top -> None

  (* Abstract lifts of concrete arithmetic; cross products are capped by
     [normalize], which widens to Top past [max_width]. *)
  let map1 f = function
    | Bot -> Bot
    | Top -> Top
    | Vals vs -> normalize (List.map f vs)

  let map2 f a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Top, _ | _, Top -> Top
    | Vals u, Vals v ->
      if List.length u * List.length v > max_width * max_width then Top
      else normalize (List.concat_map (fun x -> List.map (f x) v) u)
end

module State = struct
  type t = Unreached | Regs of Value.t array

  let bottom = Unreached

  let join a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | Regs u, Regs v -> Regs (Array.init 32 (fun i -> Value.join u.(i) v.(i)))

  let equal a b =
    match (a, b) with
    | Unreached, Unreached -> true
    | Regs u, Regs v ->
      let ok = ref true in
      for i = 0 to 31 do
        if not (Value.equal u.(i) v.(i)) then ok := false
      done;
      !ok
    | _ -> false

  let pp fmt = function
    | Unreached -> Format.pp_print_string fmt "unreached"
    | Regs rs ->
      Array.iteri
        (fun i v ->
          if v <> Value.Top && i <> 0 then
            Format.fprintf fmt "%s=%a " (Reg.abi_name (Reg.of_int i)) Value.pp v)
        rs

  let unknown () = Regs (Array.make 32 Value.Top)

  let value_of st r =
    if Reg.equal r Reg.x0 then Value.const 0L
    else match st with Unreached -> Value.Bot | Regs rs -> rs.(Reg.to_int r)
end

let sext32 v = Int64.of_int32 (Int64.to_int32 v)

let set st r v =
  match st with
  | State.Unreached -> st
  | State.Regs rs ->
    if Reg.equal r Reg.x0 then st
    else begin
      let rs = Array.copy rs in
      rs.(Reg.to_int r) <- v;
      State.Regs rs
    end

let havoc_caller_saved st =
  let st = set st Reg.ra Value.Top in
  let st = List.fold_left (fun st i -> set st (Reg.t_ i) Value.Top) st [ 0; 1; 2; 3; 4; 5; 6 ] in
  List.fold_left (fun st i -> set st (Reg.a i) Value.Top) st [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let transfer ~text_base (node : Mc_cfg.node) st =
  match st with
  | State.Unreached -> st
  | State.Regs _ -> (
    let pc = Int64.of_int (text_base + node.Mc_cfg.n_offset) in
    let v = State.value_of st in
    match node.Mc_cfg.n_inst with
    | None -> State.unknown () (* undecodable: assume nothing survives *)
    | Some inst -> (
      match inst with
      | Inst.I (Addi, rd, rs1, imm) ->
        set st rd (Value.map1 (Int64.add (Int64.of_int imm)) (v rs1))
      | Inst.I (Addiw, rd, rs1, imm) ->
        set st rd (Value.map1 (fun x -> sext32 (Int64.add x (Int64.of_int imm))) (v rs1))
      | Inst.U (Lui, rd, imm) -> set st rd (Value.const (Int64.of_int (imm lsl 12)))
      | Inst.U (Auipc, rd, imm) ->
        set st rd (Value.const (Int64.add pc (Int64.of_int (imm lsl 12))))
      | Inst.Shift (Slli, rd, rs1, sh) ->
        set st rd (Value.map1 (fun x -> Int64.shift_left x sh) (v rs1))
      | Inst.Shift (Srli, rd, rs1, sh) ->
        set st rd (Value.map1 (fun x -> Int64.shift_right_logical x sh) (v rs1))
      | Inst.R (Add, rd, rs1, rs2) -> set st rd (Value.map2 Int64.add (v rs1) (v rs2))
      | Inst.R (Sub, rd, rs1, rs2) ->
        set st rd (Value.map2 (fun a b -> Int64.sub a b) (v rs1) (v rs2))
      | Inst.Jal (rd, _) when not (Reg.equal rd Reg.x0) ->
        (* The call havocs caller-saved state; on resumption ra holds
           whatever the callee left there. *)
        havoc_caller_saved st
      | Inst.Jalr (rd, _, _) when not (Reg.equal rd Reg.x0) -> havoc_caller_saved st
      | Inst.Ecall -> set st (Reg.a 0) Value.Top
      | _ -> (
        match Inst.defines inst with Some rd -> set st rd Value.Top | None -> st)))

type resolution = { site_offset : int; targets : int list }

type result = {
  resolutions : resolution list;
  resolved_sites : int;
  blocks : int;
  iterations : int;
}

module Solver = Dataflow.Make (State)

let analyze ?(text_base = Program.Layout.text_base) ?visible (cfg : Mc_cfg.t) ~entries =
  let visible = Option.value visible ~default:(fun _ -> true) in
  let step node st =
    if visible node.Mc_cfg.n_index then transfer ~text_base node st
    else if st = State.Unreached then st
    else State.unknown ()
  in
  let { Mc_cfg.blocks; block_of_node } = Mc_cfg.basic_blocks cfg in
  let graph =
    { Dataflow.node_count = Array.length blocks;
      succs = (fun b -> blocks.(b).Mc_cfg.bb_succs);
      preds =
        (let preds = Array.make (Array.length blocks) [] in
         Array.iter
           (fun (b : Mc_cfg.block) ->
             List.iter (fun s -> preds.(s) <- b.Mc_cfg.bb_index :: preds.(s)) b.Mc_cfg.bb_succs)
           blocks;
         fun b -> preds.(b)) }
  in
  let boundary =
    List.filter_map
      (fun offset ->
        match Mc_cfg.node_at cfg offset with
        | Some n -> Some (block_of_node.(n.Mc_cfg.n_index), State.unknown ())
        | None -> None)
      entries
  in
  let block_transfer b st =
    let blk = blocks.(b) in
    let st = ref st in
    for i = blk.Mc_cfg.bb_first to blk.Mc_cfg.bb_last do
      st := step cfg.Mc_cfg.nodes.(i) !st
    done;
    !st
  in
  let solved = Solver.solve ~boundary ~graph ~transfer:block_transfer () in
  (* Replay each block from its solved input to read the state in front
     of every indirect site. *)
  let resolutions = ref [] in
  Array.iter
    (fun (blk : Mc_cfg.block) ->
      let st = ref solved.Solver.input.(blk.Mc_cfg.bb_index) in
      for i = blk.Mc_cfg.bb_first to blk.Mc_cfg.bb_last do
        let node = cfg.Mc_cfg.nodes.(i) in
        (match (node.Mc_cfg.n_inst, Mc_cfg.flow_of node) with
        | Some (Inst.Jalr (_, rs1, imm)), (Mc_cfg.Indirect | Mc_cfg.Indirect_call)
          when visible node.Mc_cfg.n_index ->
          let targets =
            match Value.to_list (State.value_of !st rs1) with
            | None -> []
            | Some vs ->
              List.filter_map
                (fun v ->
                  (* jalr clears bit 0 of the computed address. *)
                  let addr =
                    Int64.to_int (Int64.logand (Int64.add v (Int64.of_int imm)) (-2L))
                  in
                  let off = addr - text_base in
                  if off >= 0 && off < cfg.Mc_cfg.text_size
                     && Hashtbl.mem cfg.Mc_cfg.index_of_offset off
                  then Some off
                  else None)
                vs
              |> List.sort_uniq compare
          in
          resolutions := { site_offset = node.Mc_cfg.n_offset; targets } :: !resolutions
        | _ -> ());
        st := step node !st
      done)
    blocks;
  let resolutions = List.rev !resolutions in
  let resolved_sites = List.length (List.filter (fun r -> r.targets <> []) resolutions) in
  Eric_telemetry.Registry.inc
    ~by:(Int64.of_int resolved_sites)
    "lint.dataflow.resolved_indirect";
  { resolutions;
    resolved_sites;
    blocks = Array.length blocks;
    iterations = solved.Solver.iterations }
