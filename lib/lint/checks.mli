(** The catalogue of lint check ids: one entry per diagnostic the
    checker families can emit, with its family, default severity and a
    one-line summary.  docs/static-analysis.md is the prose rendering of
    this table; [eric_cli lint --checks] prints it. *)

type family = Ir | Machine | Leakage | Taint

val family_name : family -> string

type info = {
  id : string;
  family : family;
  severity : Diag.severity;  (** default severity (leakage checks escalate
                                 to [Error] past the [--max-leakage] gate) *)
  summary : string;
}

val all : info list
(** Stable order: IR checks, then machine-code, then leakage, then taint. *)

val find : string -> info option

val pp_catalogue : Format.formatter -> unit -> unit
