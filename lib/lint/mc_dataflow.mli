(** Constant propagation + value-set analysis over the RV64GC register
    file, solved with {!Dataflow} over {!Mc_cfg} basic blocks.

    This is the disassembler-grade half of the attack model: where the
    linear sweep only reads displacement fields, this analysis tracks the
    small sets of values each register can hold ([lui]/[auipc]/[addi]
    address materialisation, shifts and adds over known constants) and
    resolves computed control flow — [jalr] through a register, including
    [auipc]-relative targets — to concrete text offsets.  The verifier's
    stack checks and the recursive-descent attacker both build on it. *)

(** Per-register abstract value: a bounded set of 64-bit constants. *)
module Value : sig
  type t = Bot | Vals of int64 list | Top

  include Dataflow.LATTICE with type t := t

  val max_width : int
  (** Set-size cap (8): a join that would exceed it widens to [Top]. *)

  val const : int64 -> t
  val to_list : t -> int64 list option
  (** [Some vs] for [Bot]/[Vals] (empty list for [Bot]), [None] for [Top]. *)
end

(** The register file: [Unreached], or one {!Value.t} per x-register
    ([x0] always reads as constant 0). *)
module State : sig
  type t = Unreached | Regs of Value.t array

  include Dataflow.LATTICE with type t := t

  val unknown : unit -> t
  (** All registers [Top] — the boundary state at a function entry. *)

  val value_of : t -> Eric_rv.Reg.t -> Value.t
end

val transfer : text_base:int -> Mc_cfg.node -> State.t -> State.t
(** Abstract execution of one parcel.  [auipc]/[jal] materialise
    [text_base]-relative addresses; calls and [ecall] havoc the
    caller-saved registers; undecodable parcels havoc everything. *)

type resolution = {
  site_offset : int;  (** byte offset of the [jalr]/[c.jalr] parcel *)
  targets : int list;
      (** resolved in-section, parcel-aligned target offsets (empty when
          the base register's value set is unknown) *)
}

type result = {
  resolutions : resolution list;  (** one per indirect site, site order *)
  resolved_sites : int;  (** sites with at least one resolved target *)
  blocks : int;
  iterations : int;
}

val analyze :
  ?text_base:int ->
  ?visible:(int -> bool) ->
  Mc_cfg.t ->
  entries:int list ->
  result
(** Solve over the basic blocks of [cfg], seeding an {!State.unknown}
    boundary at every entry offset (program entry + call targets).
    [visible] (node index, default all) models an attacker who cannot
    read encrypted parcels: an invisible parcel havocs the state.
    [text_base] defaults to {!Eric_rv.Program.Layout.text_base}.  Bumps
    [lint.dataflow.resolved_indirect] by {!result.resolved_sites}. *)
