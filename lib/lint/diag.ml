type severity = Note | Warning | Error

let severity_name = function Note -> "note" | Warning -> "warning" | Error -> "error"
let severity_rank = function Note -> 0 | Warning -> 1 | Error -> 2

type location =
  | Ir_loc of { func : string; block : int; index : int option }
  | Mc_loc of { offset : int }
  | Parcel_loc of { index : int; offset : int }
  | No_loc

type t = {
  severity : severity;
  check : string;
  loc : location;
  message : string;
}

let make ?(loc = No_loc) severity ~check message =
  Eric_telemetry.Registry.inc
    ~labels:[ ("severity", severity_name severity); ("check", check) ]
    "lint.diagnostics";
  { severity; check; loc; message }

let errorf ?loc ~check fmt = Printf.ksprintf (make ?loc Error ~check) fmt
let warningf ?loc ~check fmt = Printf.ksprintf (make ?loc Warning ~check) fmt
let notef ?loc ~check fmt = Printf.ksprintf (make ?loc Note ~check) fmt

let pp_location fmt = function
  | Ir_loc { func; block; index = Some i } -> Format.fprintf fmt "%s:L%d:%d" func block i
  | Ir_loc { func; block; index = None } -> Format.fprintf fmt "%s:L%d:term" func block
  | Mc_loc { offset } -> Format.fprintf fmt "text+0x%x" offset
  | Parcel_loc { index; offset } -> Format.fprintf fmt "parcel %d (+0x%x)" index offset
  | No_loc -> Format.pp_print_string fmt "-"

let pp fmt d =
  Format.fprintf fmt "%s[%s] %a: %s" (severity_name d.severity) d.check pp_location d.loc
    d.message

let to_string d = Format.asprintf "%a" pp d

(* A total order on locations for stable listings: IR first (by function
   then block then index), then machine-code/parcel positions by offset. *)
let loc_key = function
  | Ir_loc { func; block; index } ->
    (0, func, block, Option.value index ~default:max_int)
  | Mc_loc { offset } -> (1, "", offset, 0)
  | Parcel_loc { index; offset } -> (1, "", offset, index)
  | No_loc -> (2, "", 0, 0)

let sort ds =
  List.stable_sort
    (fun a b ->
      match compare (severity_rank b.severity) (severity_rank a.severity) with
      | 0 -> (
        match compare (loc_key a.loc) (loc_key b.loc) with
        | 0 -> compare a.check b.check
        | c -> c)
      | c -> c)
    ds

let counts ds =
  List.fold_left
    (fun (e, w, n) d ->
      match d.severity with
      | Error -> (e + 1, w, n)
      | Warning -> (e, w + 1, n)
      | Note -> (e, w, n + 1))
    (0, 0, 0) ds

let max_severity = function
  | [] -> None
  | ds ->
    Some
      (List.fold_left
         (fun acc d -> if severity_rank d.severity > severity_rank acc then d.severity else acc)
         Note ds)

let to_json d =
  let open Eric_telemetry.Json in
  let loc_fields =
    match d.loc with
    | Ir_loc { func; block; index } ->
      [ ("func", Str func); ("block", Num (float_of_int block)) ]
      @ (match index with Some i -> [ ("index", Num (float_of_int i)) ] | None -> [])
    | Mc_loc { offset } -> [ ("offset", Num (float_of_int offset)) ]
    | Parcel_loc { index; offset } ->
      [ ("parcel", Num (float_of_int index)); ("offset", Num (float_of_int offset)) ]
    | No_loc -> []
  in
  Obj
    ([ ("severity", Str (severity_name d.severity));
       ("check", Str d.check);
       ("message", Str d.message) ]
    @ loc_fields)

let to_jsonl ds =
  String.concat "" (List.map (fun d -> Eric_telemetry.Json.to_string (to_json d) ^ "\n") ds)

let pp_table fmt ds =
  let ds = sort ds in
  let rows =
    List.map
      (fun d ->
        (severity_name d.severity, d.check, Format.asprintf "%a" pp_location d.loc, d.message))
      ds
  in
  let w f = List.fold_left (fun acc r -> max acc (String.length (f r))) 0 rows in
  let w1 = w (fun (a, _, _, _) -> a)
  and w2 = w (fun (_, b, _, _) -> b)
  and w3 = w (fun (_, _, c, _) -> c) in
  List.iter
    (fun (sev, check, loc, msg) ->
      Format.fprintf fmt "%-*s  %-*s  %-*s  %s@." w1 sev w2 check w3 loc msg)
    rows;
  let e, wn, n = counts ds in
  Format.fprintf fmt "%d error%s, %d warning%s, %d note%s@." e
    (if e = 1 then "" else "s")
    wn
    (if wn = 1 then "" else "s")
    n
    (if n = 1 then "" else "s")
