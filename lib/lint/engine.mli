(** Front end of the diagnostics engine: filtering, rendering, and the
    pass/fail gate shared by the CLI and the driver hooks. *)

type format = Table | Jsonl

val format_of_string : string -> format option
(** Accepts ["table"] and ["jsonl"]. *)

val format_name : format -> string

val filter : ?checks:string list -> Diag.t list -> Diag.t list
(** Keep diagnostics whose check id starts with one of the given
    prefixes (e.g. ["mc."] or ["ir.temp"]).  No prefixes = keep all. *)

val render : format -> Format.formatter -> Diag.t list -> unit
(** [Table] is the aligned human listing with a severity summary line;
    [Jsonl] is one JSON object per line (the schema of
    {!Diag.to_json}). *)

val worst : Diag.t list -> Diag.severity option

val fails : ?fail_on:Diag.severity -> Diag.t list -> bool
(** True when any diagnostic reaches [fail_on] (default
    {!Diag.Error}). *)

val exit_code : ?fail_on:Diag.severity -> Diag.t list -> int
(** [0] when {!fails} is false, [1] otherwise. *)
