(** Machine-code verification of a plain {!Eric_rv.Program.t} image.

    Rebuilds the CFG from the decoded parcels ({!Mc_cfg}), discovers
    function bodies by walking from the entry point and every [jal ra]
    call target, and checks:

    - every parcel decodes ([mc.decode.invalid]);
    - the entry offset and every branch/jump target land on parcel
      boundaries inside the section ([mc.entry.misaligned],
      [mc.cfg.target-out-of-section], [mc.cfg.target-misaligned]);
    - control cannot fall off the end of the section
      ([mc.cfg.fallthrough-end]) — [ecall] exits are recognised by
      tracking constant [a7];
    - stack discipline: the running [sp] adjustment (prologue/epilogue
      [addi sp, sp, ±N], including the large-frame
      [li t6, N; add sp, sp, t6] form) is zero at every return and
      consistent at every join ([mc.stack.unbalanced],
      [mc.stack.inconsistent], [mc.stack.untracked]);
    - register discipline, checked against what the register allocator
      claims: callee-saved registers written by a function body must be
      saved ([mc.reg.callee-clobbered]; [ra] likewise in any function
      that makes calls), and a backward liveness pass flags caller-saved
      registers whose value is read after a call that clobbers them
      ([mc.reg.caller-live-across-call]).

    The entry function (the [_start] stub) is exempt from the save
    checks: it never returns. *)

val verify : Eric_rv.Program.t -> Diag.t list
(** Empty on a well-formed image.  Runs under a [lint.mc_verify]
    telemetry span and bumps the [lint.parcels_verified] counter. *)
