open Eric_rv

type coverage = Clear | Enc_all | Enc32 of int32 | Enc16 of int

type report = {
  parcels : int;
  plaintext_parcels : int;
  plaintext_fraction : float;
  opcode_visible : int;
  opcode_visible_fraction : float;
  branch_sites : int;
  branch_offsets_plaintext : int;
  call_sites : int;
  call_edges_plaintext : int;
  prologues : int;
  prologues_plaintext : int;
}

(* Bit masks on the plaintext encodings, from the ISA formats. *)
let b_imm_mask32 = 0xFE000F80l (* B-type: bits 31, 30:25, 11:8, 7 *)
let j_imm_mask32 = 0xFFFFF000l (* J-type: bits 31:12 *)
let opcode_mask16 = 0xE003 (* quadrant [1:0] + funct3 [15:13] *)
let cb_imm_mask16 = 0x1C7C (* c.beqz/c.bnez offset: bits 12:10, 6:2 *)
let cj_imm_mask16 = 0x1FFC (* c.j offset: bits 12:2 *)
let prologue_keep32 = 0x000FFFFFl (* addi sp,sp,-N minus its I-immediate *)
let prologue_keep16 = 0xEF83 (* c.addi16sp minus its immediate bits *)

let fully_plaintext = function
  | Clear -> true
  | Enc_all -> false
  | Enc32 m -> m = 0l
  | Enc16 m -> m = 0

let masked32 cov field =
  (* Does any encrypted bit intersect [field]? *)
  match cov with
  | Clear -> false
  | Enc_all -> true
  | Enc32 m -> Int32.logand m field <> 0l
  | Enc16 _ -> true (* width mismatch: treat as hidden *)

let masked16 cov field =
  match cov with
  | Clear -> false
  | Enc_all -> true
  | Enc16 m -> m land field <> 0
  | Enc32 _ -> true

let opcode_hidden parcel cov =
  match parcel with
  | Program.P32 _ -> masked32 cov Encode.Field.opcode
  | Program.P16 _ -> masked16 cov opcode_mask16

let offset_field parcel inst =
  (* The bits of [parcel] that hold a control-flow displacement, if any. *)
  match (parcel, inst) with
  | Program.P32 _, Some (Inst.Branch _) -> Some (`M32 b_imm_mask32)
  | Program.P32 _, Some (Inst.Jal _) -> Some (`M32 j_imm_mask32)
  | Program.P16 _, Some (Inst.Branch _) -> Some (`M16 cb_imm_mask16)
  | Program.P16 _, Some (Inst.Jal _) -> Some (`M16 cj_imm_mask16)
  | _ -> None

let field_hidden cov = function
  | `M32 m -> masked32 cov m
  | `M16 m -> masked16 cov m

let is_call = function Some (Inst.Jal (rd, _)) -> Reg.equal rd Reg.ra | _ -> false

let is_prologue = function
  | Some (Inst.I (Inst.Addi, rd, rs1, imm)) ->
    Reg.equal rd Reg.sp && Reg.equal rs1 Reg.sp && imm < 0
  | _ -> false

let prologue_hidden parcel cov =
  match parcel with
  | Program.P32 _ -> masked32 cov prologue_keep32
  | Program.P16 _ -> masked16 cov prologue_keep16

let frac num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let analyze (p : Program.t) coverage =
  if Array.length coverage <> Array.length p.Program.text then
    invalid_arg "Leakage.analyze: coverage length <> parcel count";
  let plaintext = ref 0 and opcode = ref 0 in
  let branches = ref 0 and branches_clear = ref 0 in
  let calls = ref 0 and calls_clear = ref 0 in
  let prologues = ref 0 and prologues_clear = ref 0 in
  Array.iteri
    (fun i parcel ->
      let cov = coverage.(i) in
      let inst = Program.decode_parcel parcel in
      if fully_plaintext cov then incr plaintext;
      let opc_visible = not (opcode_hidden parcel cov) in
      if opc_visible then incr opcode;
      (match offset_field parcel inst with
      | Some field ->
        incr branches;
        if opc_visible && not (field_hidden cov field) then incr branches_clear
      | None -> ());
      if is_call inst then begin
        incr calls;
        match offset_field parcel inst with
        | Some field when opc_visible && not (field_hidden cov field) -> incr calls_clear
        | _ -> ()
      end;
      if is_prologue inst then begin
        incr prologues;
        if not (prologue_hidden parcel cov) then incr prologues_clear
      end)
    p.Program.text;
  let parcels = Array.length p.Program.text in
  { parcels;
    plaintext_parcels = !plaintext;
    plaintext_fraction = frac !plaintext parcels;
    opcode_visible = !opcode;
    opcode_visible_fraction = frac !opcode parcels;
    branch_sites = !branches;
    branch_offsets_plaintext = !branches_clear;
    call_sites = !calls;
    call_edges_plaintext = !calls_clear;
    prologues = !prologues;
    prologues_plaintext = !prologues_clear }

let report_to_json r =
  let module J = Eric_telemetry.Json in
  let int v = J.Num (float_of_int v) in
  J.Obj
    [ ("parcels", int r.parcels);
      ("plaintext_parcels", int r.plaintext_parcels);
      ("plaintext_fraction", J.Num r.plaintext_fraction);
      ("opcode_visible", int r.opcode_visible);
      ("opcode_visible_fraction", J.Num r.opcode_visible_fraction);
      ("branch_sites", int r.branch_sites);
      ("branch_offsets_plaintext", int r.branch_offsets_plaintext);
      ("call_sites", int r.call_sites);
      ("call_edges_plaintext", int r.call_edges_plaintext);
      ("prologues", int r.prologues);
      ("prologues_plaintext", int r.prologues_plaintext) ]

(* ------------------------------------------------------------------ *)
(* Attacker hierarchy: recovered-structure scoring                      *)
(* ------------------------------------------------------------------ *)

module Iset = Set.Make (Int)

module Eset = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type attacker = Linear | Recursive

let attacker_to_string = function Linear -> "linear" | Recursive -> "recursive"

let attacker_of_string = function
  | "linear" -> Some Linear
  | "recursive" -> Some Recursive
  | _ -> None

type truth = {
  t_code : Iset.t;
  t_functions : Iset.t;
  t_branch_targets : Iset.t;
  t_call_edges : Eset.t;
  t_indirect : Iset.t;
}

(* Assembler convention: labels starting with '.' are local (block
   labels), everything else names a function entry. *)
let is_local_symbol name = String.length name > 0 && name.[0] = '.'

let truth_of_cfg (p : Program.t) (cfg : Mc_cfg.t) =
  let code = ref Iset.empty and targets = ref Iset.empty in
  let edges = ref Eset.empty and indirect = ref Iset.empty in
  Array.iter
    (fun (n : Mc_cfg.node) ->
      (match n.Mc_cfg.n_inst with
      | Some _ -> code := Iset.add n.Mc_cfg.n_offset !code
      | None -> ());
      match Mc_cfg.flow_of n with
      | Mc_cfg.Jump t | Mc_cfg.Cond t ->
        if Mc_cfg.node_at cfg t <> None then targets := Iset.add t !targets
      | Mc_cfg.Call t ->
        if Mc_cfg.node_at cfg t <> None then begin
          targets := Iset.add t !targets;
          edges := Eset.add (n.Mc_cfg.n_offset, t) !edges
        end
      | Mc_cfg.Return | Mc_cfg.Indirect | Mc_cfg.Indirect_call ->
        indirect := Iset.add n.Mc_cfg.n_offset !indirect
      | Mc_cfg.Next -> ())
    cfg.Mc_cfg.nodes;
  let functions =
    List.fold_left
      (fun acc (name, off) ->
        if is_local_symbol name || Mc_cfg.node_at cfg off = None then acc
        else Iset.add off acc)
      (Iset.singleton p.Program.entry_offset)
      p.Program.symbols
  in
  { t_code = !code;
    t_functions = functions;
    t_branch_targets = !targets;
    t_call_edges = !edges;
    t_indirect = !indirect }

let truth_of (p : Program.t) = truth_of_cfg p (Mc_cfg.build p)

type structure = {
  s_attacker : attacker;
  code_found : int;
  code_total : int;
  functions_found : int;
  functions_total : int;
  branch_targets_found : int;
  branch_targets_total : int;
  call_edges_found : int;
  call_edges_total : int;
  indirect_resolved : int;
  indirect_total : int;
  structure_score : float;
}

type recovered = {
  mutable r_code : Iset.t;
  mutable r_functions : Iset.t;
  mutable r_targets : Iset.t;
  mutable r_edges : Eset.t;
  mutable r_resolved : Iset.t;
}

(* Can the attacker read this parcel's control-flow displacement?  The
   same condition the linear report uses for branch_offsets_plaintext:
   opcode bits and the offset field both ship in the clear. *)
let flow_visible parcel inst cov =
  match offset_field parcel inst with
  | Some field -> (not (opcode_hidden parcel cov)) && not (field_hidden cov field)
  | None -> false

(* What a linear sweep classifies without following any edge: legible
   parcels are code, legible displacements give targets and call edges
   (a revealed call target is a known function entry), visible
   [addi sp,sp,-N] prologues mark function starts. *)
let scan_linear (p : Program.t) (cfg : Mc_cfg.t) coverage =
  let r =
    { r_code = Iset.empty;
      r_functions = Iset.empty;
      r_targets = Iset.empty;
      r_edges = Eset.empty;
      r_resolved = Iset.empty }
  in
  Array.iteri
    (fun i (n : Mc_cfg.node) ->
      let cov = coverage.(i) in
      let parcel = p.Program.text.(i) in
      let inst = n.Mc_cfg.n_inst in
      let full = fully_plaintext cov && inst <> None in
      let flow_vis = flow_visible parcel inst cov in
      if full || flow_vis then r.r_code <- Iset.add n.Mc_cfg.n_offset r.r_code;
      if flow_vis then begin
        match Mc_cfg.flow_of n with
        | Mc_cfg.Jump t | Mc_cfg.Cond t ->
          if Mc_cfg.node_at cfg t <> None then r.r_targets <- Iset.add t r.r_targets
        | Mc_cfg.Call t ->
          if Mc_cfg.node_at cfg t <> None then begin
            r.r_targets <- Iset.add t r.r_targets;
            r.r_functions <- Iset.add t r.r_functions;
            r.r_edges <- Eset.add (n.Mc_cfg.n_offset, t) r.r_edges
          end
        | _ -> ()
      end;
      if is_prologue inst && not (prologue_hidden parcel cov) then
        r.r_functions <- Iset.add n.Mc_cfg.n_offset r.r_functions)
    cfg.Mc_cfg.nodes;
  r

(* Recursive descent: start from the entry offset (plaintext in the
   package header), follow every legible edge, link returns back to the
   fallthrough of discovered call sites, and run the value-set analysis
   over the legible parcels to resolve computed [jalr] targets.  The
   linear sweep runs first as the fallback classification of parcels the
   traversal never reaches, so every component is a superset of the
   linear attacker's. *)
let scan_recursive (p : Program.t) (cfg : Mc_cfg.t) coverage =
  let r = scan_linear p cfg coverage in
  let visited = Array.make (Array.length cfg.Mc_cfg.nodes) false in
  let queue = Queue.create () in
  let callers : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let push off =
    match Mc_cfg.node_at cfg off with
    | Some n when not visited.(n.Mc_cfg.n_index) -> Queue.add n queue
    | _ -> ()
  in
  r.r_functions <- Iset.add p.Program.entry_offset r.r_functions;
  push p.Program.entry_offset;
  let step (n : Mc_cfg.node) =
    if not visited.(n.Mc_cfg.n_index) then begin
      visited.(n.Mc_cfg.n_index) <- true;
      let cov = coverage.(n.Mc_cfg.n_index) in
      let parcel = p.Program.text.(n.Mc_cfg.n_index) in
      let inst = n.Mc_cfg.n_inst in
      let full = fully_plaintext cov && inst <> None in
      let flow_vis = flow_visible parcel inst cov in
      if full || flow_vis then begin
        r.r_code <- Iset.add n.Mc_cfg.n_offset r.r_code;
        let fallthrough () = Option.iter push (Mc_cfg.fallthrough cfg n) in
        match Mc_cfg.flow_of n with
        | Mc_cfg.Next -> if full then fallthrough ()
        | Mc_cfg.Jump t ->
          if Mc_cfg.node_at cfg t <> None then r.r_targets <- Iset.add t r.r_targets;
          push t
        | Mc_cfg.Cond t ->
          if Mc_cfg.node_at cfg t <> None then r.r_targets <- Iset.add t r.r_targets;
          push t;
          fallthrough ()
        | Mc_cfg.Call t ->
          if Mc_cfg.node_at cfg t <> None then begin
            r.r_targets <- Iset.add t r.r_targets;
            r.r_functions <- Iset.add t r.r_functions;
            r.r_edges <- Eset.add (n.Mc_cfg.n_offset, t) r.r_edges;
            Hashtbl.replace callers t ()
          end;
          push t;
          fallthrough ()
        | Mc_cfg.Return | Mc_cfg.Indirect -> ()
        | Mc_cfg.Indirect_call -> if full then fallthrough ()
      end
      (* An opaque parcel ends the traversal: the attacker cannot even
         frame what follows it with confidence. *)
    end
  in
  let drain () =
    while not (Queue.is_empty queue) do
      step (Queue.take queue)
    done
  in
  drain ();
  (* Value-set rounds: resolving a computed jump may expose new code,
     which may in turn make more sites resolvable. *)
  let visible i = fully_plaintext coverage.(i) in
  let continue = ref true and rounds = ref 0 in
  while !continue && !rounds < 3 do
    incr rounds;
    continue := false;
    let entries = Iset.elements r.r_functions in
    let res = Mc_dataflow.analyze ~visible cfg ~entries in
    List.iter
      (fun { Mc_dataflow.site_offset; targets } ->
        match Mc_cfg.node_at cfg site_offset with
        | Some n when visited.(n.Mc_cfg.n_index) && targets <> [] ->
          if not (Iset.mem site_offset r.r_resolved) then begin
            r.r_resolved <- Iset.add site_offset r.r_resolved;
            List.iter
              (fun t ->
                r.r_targets <- Iset.add t r.r_targets;
                push t)
              targets;
            continue := true
          end
        | _ -> ())
      res.Mc_dataflow.resolutions;
    if !continue then drain ()
  done;
  (* Return linking: a visited [ret] inside a function with a discovered
     call site resumes at that call's fallthrough — resolved. *)
  Array.iter
    (fun (n : Mc_cfg.node) ->
      if visited.(n.Mc_cfg.n_index) && Mc_cfg.flow_of n = Mc_cfg.Return then
        match Iset.find_last_opt (fun f -> f <= n.Mc_cfg.n_offset) r.r_functions with
        | Some entry when Hashtbl.mem callers entry ->
          r.r_resolved <- Iset.add n.Mc_cfg.n_offset r.r_resolved
        | _ -> ())
    cfg.Mc_cfg.nodes;
  r

let score_against attacker truth r =
  let icard = Iset.cardinal in
  let inter a b = icard (Iset.inter a b) in
  let code_found = inter r.r_code truth.t_code in
  let functions_found = inter r.r_functions truth.t_functions in
  let branch_targets_found = inter r.r_targets truth.t_branch_targets in
  let call_edges_found = Eset.cardinal (Eset.inter r.r_edges truth.t_call_edges) in
  let indirect_resolved = inter r.r_resolved truth.t_indirect in
  let code_total = icard truth.t_code in
  let functions_total = icard truth.t_functions in
  let branch_targets_total = icard truth.t_branch_targets in
  let call_edges_total = Eset.cardinal truth.t_call_edges in
  let indirect_total = icard truth.t_indirect in
  let comp found total = if total = 0 then None else Some (frac found total) in
  let comps =
    List.filter_map Fun.id
      [ comp code_found code_total;
        comp functions_found functions_total;
        comp branch_targets_found branch_targets_total;
        comp call_edges_found call_edges_total;
        comp indirect_resolved indirect_total ]
  in
  let structure_score =
    match comps with
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  { s_attacker = attacker;
    code_found;
    code_total;
    functions_found;
    functions_total;
    branch_targets_found;
    branch_targets_total;
    call_edges_found;
    call_edges_total;
    indirect_resolved;
    indirect_total;
    structure_score }

let recover attacker (p : Program.t) coverage =
  if Array.length coverage <> Array.length p.Program.text then
    invalid_arg "Leakage.recover: coverage length <> parcel count";
  Eric_telemetry.Span.with_ ~cat:"lint" ~name:"lint.attacker" @@ fun () ->
  let cfg = Mc_cfg.build p in
  let truth = truth_of_cfg p cfg in
  let r =
    match attacker with
    | Linear -> scan_linear p cfg coverage
    | Recursive -> scan_recursive p cfg coverage
  in
  score_against attacker truth r

(* Jaccard scoring against a caller-supplied truth.  Used to grade
   obfuscating transforms: on a plain image the attacker reads every
   byte, so recall against any truth is 1.0 and the honest number is
   instead how much planted decoy structure it swallowed alongside the
   real program — per component, found = |R ∩ T| and total = |R ∪ T|,
   which penalises every recovered fact outside the (real-only) truth. *)
let jaccard_against attacker truth r =
  let comp_i rec_ tru =
    (Iset.cardinal (Iset.inter rec_ tru), Iset.cardinal (Iset.union rec_ tru))
  in
  let code_found, code_total = comp_i r.r_code truth.t_code in
  let functions_found, functions_total = comp_i r.r_functions truth.t_functions in
  let branch_targets_found, branch_targets_total =
    comp_i r.r_targets truth.t_branch_targets
  in
  let call_edges_found =
    Eset.cardinal (Eset.inter r.r_edges truth.t_call_edges)
  in
  let call_edges_total = Eset.cardinal (Eset.union r.r_edges truth.t_call_edges) in
  let indirect_resolved, indirect_total = comp_i r.r_resolved truth.t_indirect in
  let comp found total = if total = 0 then None else Some (frac found total) in
  let comps =
    List.filter_map Fun.id
      [ comp code_found code_total;
        comp functions_found functions_total;
        comp branch_targets_found branch_targets_total;
        comp call_edges_found call_edges_total;
        comp indirect_resolved indirect_total ]
  in
  let structure_score =
    match comps with
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  { s_attacker = attacker;
    code_found;
    code_total;
    functions_found;
    functions_total;
    branch_targets_found;
    branch_targets_total;
    call_edges_found;
    call_edges_total;
    indirect_resolved;
    indirect_total;
    structure_score }

let recover_against attacker ~truth (p : Program.t) coverage =
  if Array.length coverage <> Array.length p.Program.text then
    invalid_arg "Leakage.recover_against: coverage length <> parcel count";
  Eric_telemetry.Span.with_ ~cat:"lint" ~name:"lint.attacker" @@ fun () ->
  let cfg = Mc_cfg.build p in
  let r =
    match attacker with
    | Linear -> scan_linear p cfg coverage
    | Recursive -> scan_recursive p cfg coverage
  in
  jaccard_against attacker truth r

let structure_to_json s =
  let module J = Eric_telemetry.Json in
  let int v = J.Num (float_of_int v) in
  J.Obj
    [ ("attacker", J.Str (attacker_to_string s.s_attacker));
      ("code_found", int s.code_found);
      ("code_total", int s.code_total);
      ("functions_found", int s.functions_found);
      ("functions_total", int s.functions_total);
      ("branch_targets_found", int s.branch_targets_found);
      ("branch_targets_total", int s.branch_targets_total);
      ("call_edges_found", int s.call_edges_found);
      ("call_edges_total", int s.call_edges_total);
      ("indirect_resolved", int s.indirect_resolved);
      ("indirect_total", int s.indirect_total);
      ("score", J.Num s.structure_score) ]

let advisory = 0.25

let lint ?(max_leakage = 1.0) p coverage =
  let r = analyze p coverage in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  if r.parcels > 0 && r.plaintext_parcels = r.parcels then
    emit
      (Diag.errorf ~check:"leak.policy.empty"
         "policy encrypts nothing: all %d parcels ship plaintext" r.parcels)
  else begin
    let graded ~check ~what fraction detail =
      if fraction > max_leakage then
        emit
          (Diag.errorf ~check "%s: %.0f%% %s exceeds --max-leakage %.0f%%" what
             (100. *. fraction) detail (100. *. max_leakage))
      else if fraction > advisory then
        emit (Diag.warningf ~check "%s: %.0f%% %s" what (100. *. fraction) detail)
    in
    graded ~check:"leak.text.plaintext" ~what:"plaintext parcels" r.plaintext_fraction
      "of the text section is fully legible";
    graded ~check:"leak.opcode.visible" ~what:"opcode bits" r.opcode_visible_fraction
      "of opcodes are legible (opcode histogram recoverable)";
    graded ~check:"leak.cfg.branch-offsets" ~what:"branch offsets"
      (frac r.branch_offsets_plaintext r.branch_sites)
      "of branch/jump displacements are legible (CFG recoverable)";
    if r.call_edges_plaintext > 0 then begin
      let f = frac r.call_edges_plaintext r.call_sites in
      if f > max_leakage then
        emit
          (Diag.errorf ~check:"leak.call.edges"
             "%d of %d call edges legible; exceeds --max-leakage %.0f%%"
             r.call_edges_plaintext r.call_sites (100. *. max_leakage))
      else
        emit
          (Diag.warningf ~check:"leak.call.edges" "%d of %d call edges legible to a linear sweep"
             r.call_edges_plaintext r.call_sites)
    end;
    if r.prologues_plaintext > 0 then begin
      let f = frac r.prologues_plaintext r.prologues in
      if f > max_leakage then
        emit
          (Diag.errorf ~check:"leak.func.prologues"
             "%d of %d function prologues legible; exceeds --max-leakage %.0f%%"
             r.prologues_plaintext r.prologues (100. *. max_leakage))
      else
        emit
          (Diag.warningf ~check:"leak.func.prologues"
             "%d of %d function prologues legible (function boundaries recoverable)"
             r.prologues_plaintext r.prologues)
    end
  end;
  (r, Diag.sort !diags)

let structure_diags ?(max_leakage = 1.0) s =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let f = s.structure_score in
  let who = attacker_to_string s.s_attacker in
  if f > max_leakage then
    emit
      (Diag.errorf ~check:"leak.struct.recovered"
         "%s attacker recovers %.0f%% of program structure; exceeds --max-leakage %.0f%%" who
         (100. *. f) (100. *. max_leakage))
  else if f > advisory then
    emit
      (Diag.warningf ~check:"leak.struct.recovered"
         "%s attacker recovers %.0f%% of program structure (code %d/%d, functions %d/%d, \
          branch targets %d/%d, call edges %d/%d)"
         who (100. *. f) s.code_found s.code_total s.functions_found s.functions_total
         s.branch_targets_found s.branch_targets_total s.call_edges_found s.call_edges_total);
  if s.indirect_resolved > 0 then
    emit
      (Diag.notef ~check:"leak.struct.indirect"
         "%d of %d indirect control transfers resolved statically (%s attacker)"
         s.indirect_resolved s.indirect_total who);
  Diag.sort !diags
