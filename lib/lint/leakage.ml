open Eric_rv

type coverage = Clear | Enc_all | Enc32 of int32 | Enc16 of int

type report = {
  parcels : int;
  plaintext_parcels : int;
  plaintext_fraction : float;
  opcode_visible : int;
  opcode_visible_fraction : float;
  branch_sites : int;
  branch_offsets_plaintext : int;
  call_sites : int;
  call_edges_plaintext : int;
  prologues : int;
  prologues_plaintext : int;
}

(* Bit masks on the plaintext encodings, from the ISA formats. *)
let b_imm_mask32 = 0xFE000F80l (* B-type: bits 31, 30:25, 11:8, 7 *)
let j_imm_mask32 = 0xFFFFF000l (* J-type: bits 31:12 *)
let opcode_mask16 = 0xE003 (* quadrant [1:0] + funct3 [15:13] *)
let cb_imm_mask16 = 0x1C7C (* c.beqz/c.bnez offset: bits 12:10, 6:2 *)
let cj_imm_mask16 = 0x1FFC (* c.j offset: bits 12:2 *)
let prologue_keep32 = 0x000FFFFFl (* addi sp,sp,-N minus its I-immediate *)
let prologue_keep16 = 0xEF83 (* c.addi16sp minus its immediate bits *)

let fully_plaintext = function
  | Clear -> true
  | Enc_all -> false
  | Enc32 m -> m = 0l
  | Enc16 m -> m = 0

let masked32 cov field =
  (* Does any encrypted bit intersect [field]? *)
  match cov with
  | Clear -> false
  | Enc_all -> true
  | Enc32 m -> Int32.logand m field <> 0l
  | Enc16 _ -> true (* width mismatch: treat as hidden *)

let masked16 cov field =
  match cov with
  | Clear -> false
  | Enc_all -> true
  | Enc16 m -> m land field <> 0
  | Enc32 _ -> true

let opcode_hidden parcel cov =
  match parcel with
  | Program.P32 _ -> masked32 cov Encode.Field.opcode
  | Program.P16 _ -> masked16 cov opcode_mask16

let offset_field parcel inst =
  (* The bits of [parcel] that hold a control-flow displacement, if any. *)
  match (parcel, inst) with
  | Program.P32 _, Some (Inst.Branch _) -> Some (`M32 b_imm_mask32)
  | Program.P32 _, Some (Inst.Jal _) -> Some (`M32 j_imm_mask32)
  | Program.P16 _, Some (Inst.Branch _) -> Some (`M16 cb_imm_mask16)
  | Program.P16 _, Some (Inst.Jal _) -> Some (`M16 cj_imm_mask16)
  | _ -> None

let field_hidden cov = function
  | `M32 m -> masked32 cov m
  | `M16 m -> masked16 cov m

let is_call = function Some (Inst.Jal (rd, _)) -> Reg.equal rd Reg.ra | _ -> false

let is_prologue = function
  | Some (Inst.I (Inst.Addi, rd, rs1, imm)) ->
    Reg.equal rd Reg.sp && Reg.equal rs1 Reg.sp && imm < 0
  | _ -> false

let prologue_hidden parcel cov =
  match parcel with
  | Program.P32 _ -> masked32 cov prologue_keep32
  | Program.P16 _ -> masked16 cov prologue_keep16

let frac num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let analyze (p : Program.t) coverage =
  if Array.length coverage <> Array.length p.Program.text then
    invalid_arg "Leakage.analyze: coverage length <> parcel count";
  let plaintext = ref 0 and opcode = ref 0 in
  let branches = ref 0 and branches_clear = ref 0 in
  let calls = ref 0 and calls_clear = ref 0 in
  let prologues = ref 0 and prologues_clear = ref 0 in
  Array.iteri
    (fun i parcel ->
      let cov = coverage.(i) in
      let inst = Program.decode_parcel parcel in
      if fully_plaintext cov then incr plaintext;
      let opc_visible = not (opcode_hidden parcel cov) in
      if opc_visible then incr opcode;
      (match offset_field parcel inst with
      | Some field ->
        incr branches;
        if opc_visible && not (field_hidden cov field) then incr branches_clear
      | None -> ());
      if is_call inst then begin
        incr calls;
        match offset_field parcel inst with
        | Some field when opc_visible && not (field_hidden cov field) -> incr calls_clear
        | _ -> ()
      end;
      if is_prologue inst then begin
        incr prologues;
        if not (prologue_hidden parcel cov) then incr prologues_clear
      end)
    p.Program.text;
  let parcels = Array.length p.Program.text in
  { parcels;
    plaintext_parcels = !plaintext;
    plaintext_fraction = frac !plaintext parcels;
    opcode_visible = !opcode;
    opcode_visible_fraction = frac !opcode parcels;
    branch_sites = !branches;
    branch_offsets_plaintext = !branches_clear;
    call_sites = !calls;
    call_edges_plaintext = !calls_clear;
    prologues = !prologues;
    prologues_plaintext = !prologues_clear }

let report_to_json r =
  let module J = Eric_telemetry.Json in
  let int v = J.Num (float_of_int v) in
  J.Obj
    [ ("parcels", int r.parcels);
      ("plaintext_parcels", int r.plaintext_parcels);
      ("plaintext_fraction", J.Num r.plaintext_fraction);
      ("opcode_visible", int r.opcode_visible);
      ("opcode_visible_fraction", J.Num r.opcode_visible_fraction);
      ("branch_sites", int r.branch_sites);
      ("branch_offsets_plaintext", int r.branch_offsets_plaintext);
      ("call_sites", int r.call_sites);
      ("call_edges_plaintext", int r.call_edges_plaintext);
      ("prologues", int r.prologues);
      ("prologues_plaintext", int r.prologues_plaintext) ]

let advisory = 0.25

let lint ?(max_leakage = 1.0) p coverage =
  let r = analyze p coverage in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  if r.parcels > 0 && r.plaintext_parcels = r.parcels then
    emit
      (Diag.errorf ~check:"leak.policy.empty"
         "policy encrypts nothing: all %d parcels ship plaintext" r.parcels)
  else begin
    let graded ~check ~what fraction detail =
      if fraction > max_leakage then
        emit
          (Diag.errorf ~check "%s: %.0f%% %s exceeds --max-leakage %.0f%%" what
             (100. *. fraction) detail (100. *. max_leakage))
      else if fraction > advisory then
        emit (Diag.warningf ~check "%s: %.0f%% %s" what (100. *. fraction) detail)
    in
    graded ~check:"leak.text.plaintext" ~what:"plaintext parcels" r.plaintext_fraction
      "of the text section is fully legible";
    graded ~check:"leak.opcode.visible" ~what:"opcode bits" r.opcode_visible_fraction
      "of opcodes are legible (opcode histogram recoverable)";
    graded ~check:"leak.cfg.branch-offsets" ~what:"branch offsets"
      (frac r.branch_offsets_plaintext r.branch_sites)
      "of branch/jump displacements are legible (CFG recoverable)";
    if r.call_edges_plaintext > 0 then begin
      let f = frac r.call_edges_plaintext r.call_sites in
      if f > max_leakage then
        emit
          (Diag.errorf ~check:"leak.call.edges"
             "%d of %d call edges legible; exceeds --max-leakage %.0f%%"
             r.call_edges_plaintext r.call_sites (100. *. max_leakage))
      else
        emit
          (Diag.warningf ~check:"leak.call.edges" "%d of %d call edges legible to a linear sweep"
             r.call_edges_plaintext r.call_sites)
    end;
    if r.prologues_plaintext > 0 then begin
      let f = frac r.prologues_plaintext r.prologues in
      if f > max_leakage then
        emit
          (Diag.errorf ~check:"leak.func.prologues"
             "%d of %d function prologues legible; exceeds --max-leakage %.0f%%"
             r.prologues_plaintext r.prologues (100. *. max_leakage))
      else
        emit
          (Diag.warningf ~check:"leak.func.prologues"
             "%d of %d function prologues legible (function boundaries recoverable)"
             r.prologues_plaintext r.prologues)
    end
  end;
  (r, Diag.sort !diags)
