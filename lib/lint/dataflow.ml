type direction = Forward | Backward

module type LATTICE = sig
  type t

  val bottom : t
  val join : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

type graph = {
  node_count : int;
  succs : int -> int list;
  preds : int -> int list;
}

let graph_of_edges ~node_count edges =
  let succs = Array.make node_count [] and preds = Array.make node_count [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= node_count || b < 0 || b >= node_count then
        invalid_arg
          (Printf.sprintf "Dataflow.graph_of_edges: edge (%d,%d) outside [0,%d)" a b node_count);
      succs.(a) <- b :: succs.(a);
      preds.(b) <- a :: preds.(b))
    edges;
  { node_count; succs = (fun n -> List.rev succs.(n)); preds = (fun n -> List.rev preds.(n)) }

module Bitset = struct
  type t = int

  let bottom = 0
  let join = ( lor )
  let equal = Int.equal
  let pp fmt m = Format.fprintf fmt "0x%x" m
end

module Flat (V : sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end) =
struct
  type t = Bot | Known of V.t | Top

  let bottom = Bot

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Top, _ | _, Top -> Top
    | Known u, Known v -> if V.equal u v then a else Top

  let equal a b =
    match (a, b) with
    | Bot, Bot | Top, Top -> true
    | Known u, Known v -> V.equal u v
    | _ -> false

  let pp fmt = function
    | Bot -> Format.pp_print_string fmt "⊥"
    | Top -> Format.pp_print_string fmt "⊤"
    | Known v -> V.pp fmt v

  let known v = Known v
  let get = function Known v -> Some v | Bot | Top -> None
end

module Make (L : LATTICE) = struct
  type result = {
    input : L.t array;
    output : L.t array;
    iterations : int;
  }

  let solve ?(direction = Forward) ?(boundary = []) ~graph ~transfer () =
    let n = graph.node_count in
    let into, from =
      (* Edges feeding a node's input, and the nodes its output feeds. *)
      match direction with
      | Forward -> (graph.preds, graph.succs)
      | Backward -> (graph.succs, graph.preds)
    in
    let boundary_of = Array.make n L.bottom in
    List.iter
      (fun (i, v) ->
        if i < 0 || i >= n then invalid_arg "Dataflow.solve: boundary node out of range";
        boundary_of.(i) <- L.join boundary_of.(i) v)
      boundary;
    let input = Array.make n L.bottom in
    let output = Array.make n L.bottom in
    let on_queue = Array.make n false in
    let queue = Queue.create () in
    let push i =
      if not on_queue.(i) then begin
        on_queue.(i) <- true;
        Queue.add i queue
      end
    in
    (* Seed every node once; reverse order in a backward analysis so the
       first sweep already visits most nodes after their inputs. *)
    (match direction with
    | Forward -> for i = 0 to n - 1 do push i done
    | Backward -> for i = n - 1 downto 0 do push i done);
    let iterations = ref 0 in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      on_queue.(i) <- false;
      incr iterations;
      let in_ =
        List.fold_left (fun acc p -> L.join acc output.(p)) boundary_of.(i) (into i)
      in
      input.(i) <- in_;
      let out = transfer i in_ in
      if not (L.equal out output.(i)) then begin
        output.(i) <- out;
        List.iter push (from i)
      end
    done;
    Eric_telemetry.Registry.inc "lint.dataflow.solves";
    Eric_telemetry.Registry.inc ~by:(Int64.of_int n) "lint.dataflow.blocks_solved";
    Eric_telemetry.Registry.inc ~by:(Int64.of_int !iterations) "lint.dataflow.iterations";
    { input; output; iterations = !iterations }
end
