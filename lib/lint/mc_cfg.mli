(** Control-flow reconstruction over a decoded RV64GC text section — the
    substrate of the machine-code verifier and of the recursive-descent
    attack model.

    The text is cut at parcel boundaries (the framing an attacker must
    also discover); each parcel becomes a {!node} with its decoded
    instruction, and {!flow_of} classifies how control leaves it.  Branch
    and jump displacements are byte offsets relative to the instruction,
    exactly as {!Eric_rv.Inst} carries them, so target arithmetic here is
    plain [offset + displacement]. *)

type node = {
  n_index : int;  (** parcel index *)
  n_offset : int;  (** byte offset of the parcel *)
  n_size : int;  (** 2 or 4 *)
  n_inst : Eric_rv.Inst.t option;  (** [None] = undecodable parcel *)
}

type t = {
  nodes : node array;
  index_of_offset : (int, int) Hashtbl.t;  (** parcel boundary -> index *)
  text_size : int;
}

val build : Eric_rv.Program.t -> t

val node_at : t -> int -> node option
(** The node starting at a byte offset; [None] when the offset is not a
    parcel boundary. *)

type flow =
  | Next  (** falls through to the next parcel *)
  | Jump of int  (** unconditional jump to an absolute byte offset *)
  | Cond of int  (** conditional branch: target, plus fallthrough *)
  | Call of int  (** [jal] with a link register: target, resumes after *)
  | Return  (** [jalr x0, ra, 0] *)
  | Indirect  (** [jalr x0] tail-jump: leaves, target not statically known *)
  | Indirect_call
      (** [jalr] with a link register ([c.jalr] in compressed form):
          target unknown, but control {e resumes at the next parcel} —
          2 bytes later for the compressed encoding *)

val flow_of : node -> flow
(** Classification of the node's instruction.  Undecodable parcels and
    [ecall]/[ebreak] report [Next]; the verifier refines [ecall] exits with
    its own constant tracking. *)

val targets_of_flow : flow -> int list
(** The absolute byte offsets a flow names (empty for
    [Next]/[Return]/[Indirect]/[Indirect_call]). *)

val falls_through : flow -> bool
(** Whether control can continue at the next parcel boundary:
    [Next], [Cond], [Call] and [Indirect_call] do; [Jump], [Return] and
    [Indirect] never do. *)

val fallthrough : t -> node -> int option
(** The in-section fallthrough offset — [n_offset + n_size], honouring
    the parcel's real 2- or 4-byte width — or [None] when the flow does
    not fall through or the next boundary is past the section end. *)

val succ_offsets : t -> node -> int list
(** Every in-section, parcel-aligned successor offset: the fallthrough
    (first, when present) plus the named targets.  Misaligned or
    out-of-section targets are omitted (the verifier flags them). *)

val call_sites : t -> (int * int) list
(** [(site offset, target offset)] for every [jal ra, _] — the call edges
    a linear-sweep attacker recovers from plaintext. *)

(** {1 Basic blocks}

    Maximal straight-line parcel runs: a block ends at the first
    control-transfer parcel, and starts at offset 0, at any branch/jump
    target, or right after a control transfer (again [n_size]-exact, so a
    compressed terminator is followed 2 bytes later, not 4).  This is the
    node space the {!Dataflow} solver instances for machine code run
    over. *)

type block = {
  bb_index : int;
  bb_first : int;  (** first member node index *)
  bb_last : int;  (** last member node index (inclusive) *)
  bb_succs : int list;
      (** successor block indices: the fallthrough and/or branch targets
          of the last member.  [Call] blocks list only the fallthrough —
          callee entries are boundary nodes of an interprocedural
          analysis, not intra-CFG successors. *)
}

type blocks = { blocks : block array; block_of_node : int array }

val basic_blocks : t -> blocks
