(** Control-flow reconstruction over a decoded RV64GC text section — the
    substrate of the machine-code verifier.

    The text is cut at parcel boundaries (the framing an attacker must
    also discover); each parcel becomes a {!node} with its decoded
    instruction, and {!flow_of} classifies how control leaves it.  Branch
    and jump displacements are byte offsets relative to the instruction,
    exactly as {!Eric_rv.Inst} carries them, so target arithmetic here is
    plain [offset + displacement]. *)

type node = {
  n_index : int;  (** parcel index *)
  n_offset : int;  (** byte offset of the parcel *)
  n_size : int;  (** 2 or 4 *)
  n_inst : Eric_rv.Inst.t option;  (** [None] = undecodable parcel *)
}

type t = {
  nodes : node array;
  index_of_offset : (int, int) Hashtbl.t;  (** parcel boundary -> index *)
  text_size : int;
}

val build : Eric_rv.Program.t -> t

val node_at : t -> int -> node option
(** The node starting at a byte offset; [None] when the offset is not a
    parcel boundary. *)

type flow =
  | Next  (** falls through to the next parcel *)
  | Jump of int  (** unconditional jump to an absolute byte offset *)
  | Cond of int  (** conditional branch: target, plus fallthrough *)
  | Call of int  (** [jal] with a link register: target, resumes after *)
  | Return  (** [jalr x0, ra, 0] *)
  | Indirect  (** [jalr] whose target is not statically known *)

val flow_of : node -> flow
(** Classification of the node's instruction.  Undecodable parcels and
    [ecall]/[ebreak] report [Next]; the verifier refines [ecall] exits with
    its own constant tracking. *)

val targets_of_flow : flow -> int list
(** The absolute byte offsets a flow names (empty for
    [Next]/[Return]/[Indirect]). *)

val call_sites : t -> (int * int) list
(** [(site offset, target offset)] for every [jal ra, _] — the call edges
    a linear-sweep attacker recovers from plaintext. *)
