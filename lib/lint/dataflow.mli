(** Generic worklist dataflow solver — the fixpoint engine every static
    analysis in the linter runs on.

    An analysis supplies a join-semilattice of abstract facts
    ({!module-type:LATTICE}), a {!graph} of numbered nodes (machine-code
    basic blocks, IR blocks, pipeline values — the solver does not care),
    a monotone transfer function, and a {!direction}.  The solver iterates
    to the least fixpoint of

    {v in(n)  = boundary(n) ⊔ ⊔ {out(p) | p predecessor of n}
   out(n) = transfer n (in n) v}

    (successors instead of predecessors when the direction is
    {!Backward}), i.e. the meet-over-paths solution for distributive
    transfer functions and a sound over-approximation otherwise.

    Termination is guaranteed when [transfer] is monotone and the lattice
    has finite height on the values the program generates — both are
    checked as qcheck properties for every lattice instance shipped in
    this repository.  Each solve bumps the [lint.dataflow.solves],
    [lint.dataflow.blocks_solved] and [lint.dataflow.iterations]
    telemetry counters. *)

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val bottom : t
  (** Identity of {!join}: the "no information / unreached" element. *)

  val join : t -> t -> t
  (** Least upper bound.  Must be commutative, associative and
      idempotent with [bottom] as identity (qcheck-enforced). *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

type graph = {
  node_count : int;
  succs : int -> int list;
  preds : int -> int list;
}
(** Nodes are [0 .. node_count-1]; edge lists may mention a node more
    than once (duplicates are harmless — join is idempotent). *)

val graph_of_edges : node_count:int -> (int * int) list -> graph
(** Build both adjacency directions from an edge list.  Edges naming a
    node outside [0 .. node_count-1] are rejected with
    [Invalid_argument]. *)

(** {1 Stock lattices}

    Shared by several analyses and exercised by the lattice-law tests. *)

module Bitset : sig
  include LATTICE with type t = int
  (** Finite sets as bit masks: [join = lor], [bottom = 0].  Used by the
      machine-code liveness analysis (bit [r] = register [r] live). *)
end

module Flat (V : sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end) : sig
  type t = Bot | Known of V.t | Top

  include LATTICE with type t := t

  val known : V.t -> t
  val get : t -> V.t option
  (** [Some v] only for [Known v]. *)
end
(** The three-level constant-propagation lattice over an arbitrary value
    type: unequal known values join to [Top]. *)

(** {1 The solver} *)

module Make (L : LATTICE) : sig
  type result = {
    input : L.t array;
    (** [input.(n)]: fact at the analysis entry of node [n] — before the
        node's effect in a {!Forward} analysis, after it (the "out" set,
        e.g. live-out) in a {!Backward} one. *)
    output : L.t array;  (** [transfer n input.(n)] at the fixpoint. *)
    iterations : int;  (** transfer applications until convergence *)
  }

  val solve :
    ?direction:direction ->
    ?boundary:(int * L.t) list ->
    graph:graph ->
    transfer:(int -> L.t -> L.t) ->
    unit ->
    result
  (** Least-fixpoint solve.  [boundary] seeds facts that hold regardless
      of incoming edges (typically the entry node in a forward analysis);
      all other inputs start at [L.bottom], so nodes unreachable from any
      boundary or edge keep [bottom].  [direction] defaults to
      [Forward]. *)
end
