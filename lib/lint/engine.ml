type format = Table | Jsonl

let format_of_string = function
  | "table" -> Some Table
  | "jsonl" -> Some Jsonl
  | _ -> None

let format_name = function Table -> "table" | Jsonl -> "jsonl"

let filter ?(checks = []) diags =
  match checks with
  | [] -> diags
  | prefixes ->
    List.filter
      (fun (d : Diag.t) ->
        List.exists (fun p -> String.starts_with ~prefix:p d.Diag.check) prefixes)
      diags

let render format fmt diags =
  match format with
  | Table -> Diag.pp_table fmt diags
  | Jsonl -> Format.fprintf fmt "%s" (Diag.to_jsonl diags)

let worst = Diag.max_severity

let fails ?(fail_on = Diag.Error) diags =
  match worst diags with
  | None -> false
  | Some w -> Diag.severity_rank w >= Diag.severity_rank fail_on

let exit_code ?fail_on diags = if fails ?fail_on diags then 1 else 0
