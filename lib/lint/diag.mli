(** The unified diagnostics currency of the lint subsystem.

    Every checker — the IR verifier in [Eric_cc.Ir_verify], the
    machine-code verifier in {!Mc_verify}, the encryption-policy leakage
    lint in {!Leakage} — speaks this one type, so renderers, severity
    gates, telemetry and tests treat all three families uniformly.

    Creating a diagnostic increments the [lint.diagnostics] counter
    family, labelled by severity and check id, so [--telemetry] runs show
    findings alongside the pipeline metrics. *)

type severity = Note | Warning | Error

val severity_name : severity -> string
(** ["note"], ["warning"], ["error"]. *)

val severity_rank : severity -> int
(** [Note] = 0, [Warning] = 1, [Error] = 2. *)

type location =
  | Ir_loc of { func : string; block : int; index : int option }
      (** IR position: function, block label, instruction index within the
          block ([None] = the terminator). *)
  | Mc_loc of { offset : int }  (** byte offset into the text section *)
  | Parcel_loc of { index : int; offset : int }
      (** parcel index + byte offset (leakage lint) *)
  | No_loc

type t = {
  severity : severity;
  check : string;  (** check id, e.g. ["mc.cfg.target-misaligned"] *)
  loc : location;
  message : string;
}

val make : ?loc:location -> severity -> check:string -> string -> t
(** Build a diagnostic and record it in telemetry. *)

val errorf :
  ?loc:location -> check:string -> ('a, unit, string, t) format4 -> 'a

val warningf :
  ?loc:location -> check:string -> ('a, unit, string, t) format4 -> 'a

val notef : ?loc:location -> check:string -> ('a, unit, string, t) format4 -> 'a

val pp_location : Format.formatter -> location -> unit

val pp : Format.formatter -> t -> unit
(** One line: [error[mc.decode.invalid] text+0x1a2: message]. *)

val to_string : t -> string

val sort : t list -> t list
(** Most severe first; ties broken by location (text order), then check. *)

val counts : t list -> int * int * int
(** (errors, warnings, notes). *)

val max_severity : t list -> severity option

val to_json : t -> Eric_telemetry.Json.t
(** Object with [severity], [check], [message] and location fields
    ([func]/[block]/[index], [offset], or [parcel]); see
    docs/static-analysis.md for the schema. *)

val to_jsonl : t list -> string
(** One {!to_json} object per line. *)

val pp_table : Format.formatter -> t list -> unit
(** Aligned severity / check / location / message columns plus a summary
    line; empty input prints only the summary. *)
