(** Encryption-policy leakage lint: predict what a linear-sweep attacker
    recovers from the plaintext bits an encryption policy leaves behind.

    The module is deliberately ignorant of [Eric.Config] — callers (the
    [Eric.Policy_lint] adapter) translate a concrete policy into one
    {!coverage} value per text parcel, and this module scores the result
    against the attack model of [Eric.Analysis]: linear-sweep decoding,
    opcode histograms, branch-offset CFG recovery, [jal ra] call-graph
    recovery, and [addi sp, sp, -N] prologue scanning. *)

type coverage =
  | Clear  (** parcel ships fully plaintext *)
  | Enc_all  (** every bit of the parcel is encrypted *)
  | Enc32 of int32  (** mask of encrypted bits of a 32-bit encoding *)
  | Enc16 of int  (** mask of encrypted bits of a 16-bit parcel *)

type report = {
  parcels : int;
  plaintext_parcels : int;  (** parcels with no encrypted bit at all *)
  plaintext_fraction : float;
  opcode_visible : int;  (** parcels whose opcode/quadrant bits are plaintext *)
  opcode_visible_fraction : float;
  branch_sites : int;  (** branch/jump parcels in the (plaintext) program *)
  branch_offsets_plaintext : int;  (** of those, offset field fully legible *)
  call_sites : int;  (** [jal ra] parcels *)
  call_edges_plaintext : int;  (** call sites an attacker reads the target of *)
  prologues : int;  (** [addi sp, sp, -N] parcels *)
  prologues_plaintext : int;  (** prologues recognisable despite the policy *)
}

val analyze : Eric_rv.Program.t -> coverage array -> report
(** Score a coverage assignment.  Raises [Invalid_argument] when the
    coverage array's length differs from the program's parcel count. *)

val report_to_json : report -> Eric_telemetry.Json.t

val lint : ?max_leakage:float -> Eric_rv.Program.t -> coverage array -> report * Diag.t list
(** {!analyze} plus diagnostics: a metric above [max_leakage]
    (default [1.0], i.e. never) escalates to an error; above the fixed
    advisory threshold of 0.25 it warns.  A policy that encrypts nothing
    is always [leak.policy.empty] at error severity. *)

(** {1 Attacker hierarchy}

    Beyond the per-parcel leakage counters, the lint can simulate a
    concrete attacker and score the program structure it recovers
    against the compiler's ground truth (symbols, decoded CFG).  The
    {!Recursive} attacker strictly dominates {!Linear}: it runs the
    linear sweep as its fallback classification, then additionally
    follows legible control-flow edges from the (plaintext) entry point,
    links returns to discovered call sites, and resolves computed [jalr]
    targets with the {!Mc_dataflow} value-set analysis restricted to
    legible parcels. *)

module Iset : Set.S with type elt = int

module Eset : Set.S with type elt = int * int

type attacker = Linear | Recursive

val attacker_to_string : attacker -> string
val attacker_of_string : string -> attacker option

(** Compiler ground truth, derived from the plaintext image: decodable
    parcel offsets, function entries (non-local symbols plus the entry
    point), branch/jump targets, [jal ra] call edges, and indirect
    control-transfer sites ([ret]/[jalr]). *)
type truth = {
  t_code : Iset.t;
  t_functions : Iset.t;
  t_branch_targets : Iset.t;
  t_call_edges : Eset.t;
  t_indirect : Iset.t;
}

val truth_of : Eric_rv.Program.t -> truth

(** Recovered-structure scorecard: per-component found/total counts and
    their mean recall in [0,1] (components with an empty ground truth are
    skipped).  For the same program and coverage, every [Recursive]
    component is a superset of the [Linear] one, so
    [structure_score Recursive >= structure_score Linear]. *)
type structure = {
  s_attacker : attacker;
  code_found : int;
  code_total : int;
  functions_found : int;
  functions_total : int;
  branch_targets_found : int;
  branch_targets_total : int;
  call_edges_found : int;
  call_edges_total : int;
  indirect_resolved : int;
  indirect_total : int;
  structure_score : float;
}

val recover : attacker -> Eric_rv.Program.t -> coverage array -> structure
(** Run the attacker against a coverage assignment.  Raises
    [Invalid_argument] on a coverage/parcel length mismatch. *)

val recover_against :
  attacker -> truth:truth -> Eric_rv.Program.t -> coverage array -> structure
(** Like {!recover}, but graded against a caller-supplied ground truth
    with Jaccard component scores: found = |recovered ∩ truth|, total =
    |recovered ∪ truth|.  This is the honest metric for obfuscated
    images — on a plain image plain recall is trivially 1.0, whereas the
    Jaccard score drops for every planted decoy fact the attacker
    mistakes for real structure (truth should be pre-restricted to the
    real program, e.g. via [Eric_cc.Truth.restrict]).  Raises
    [Invalid_argument] on a coverage/parcel length mismatch. *)

val structure_to_json : structure -> Eric_telemetry.Json.t

val structure_diags : ?max_leakage:float -> structure -> Diag.t list
(** [leak.struct.recovered] warns above the advisory threshold and
    errors above [max_leakage]; [leak.struct.indirect] notes statically
    resolved indirect transfers. *)
