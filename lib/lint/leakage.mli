(** Encryption-policy leakage lint: predict what a linear-sweep attacker
    recovers from the plaintext bits an encryption policy leaves behind.

    The module is deliberately ignorant of [Eric.Config] — callers (the
    [Eric.Policy_lint] adapter) translate a concrete policy into one
    {!coverage} value per text parcel, and this module scores the result
    against the attack model of [Eric.Analysis]: linear-sweep decoding,
    opcode histograms, branch-offset CFG recovery, [jal ra] call-graph
    recovery, and [addi sp, sp, -N] prologue scanning. *)

type coverage =
  | Clear  (** parcel ships fully plaintext *)
  | Enc_all  (** every bit of the parcel is encrypted *)
  | Enc32 of int32  (** mask of encrypted bits of a 32-bit encoding *)
  | Enc16 of int  (** mask of encrypted bits of a 16-bit parcel *)

type report = {
  parcels : int;
  plaintext_parcels : int;  (** parcels with no encrypted bit at all *)
  plaintext_fraction : float;
  opcode_visible : int;  (** parcels whose opcode/quadrant bits are plaintext *)
  opcode_visible_fraction : float;
  branch_sites : int;  (** branch/jump parcels in the (plaintext) program *)
  branch_offsets_plaintext : int;  (** of those, offset field fully legible *)
  call_sites : int;  (** [jal ra] parcels *)
  call_edges_plaintext : int;  (** call sites an attacker reads the target of *)
  prologues : int;  (** [addi sp, sp, -N] parcels *)
  prologues_plaintext : int;  (** prologues recognisable despite the policy *)
}

val analyze : Eric_rv.Program.t -> coverage array -> report
(** Score a coverage assignment.  Raises [Invalid_argument] when the
    coverage array's length differs from the program's parcel count. *)

val report_to_json : report -> Eric_telemetry.Json.t

val lint : ?max_leakage:float -> Eric_rv.Program.t -> coverage array -> report * Diag.t list
(** {!analyze} plus diagnostics: a metric above [max_leakage]
    (default [1.0], i.e. never) escalates to an error; above the fixed
    advisory threshold of 0.25 it warns.  A policy that encrypts nothing
    is always [leak.policy.empty] at error severity. *)
