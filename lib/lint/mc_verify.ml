open Eric_rv

let mc_loc offset = Diag.Mc_loc { offset }

(* Register index sets as 32-bit masks (one bit per x-register). *)
let bit r = 1 lsl Reg.to_int r
let callee_saved_mask = List.fold_left (fun m i -> m lor bit (Reg.s i)) 0 [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]

let caller_saved_watch_mask =
  (* Registers whose value does not survive a call and whose read after
     one is therefore a bug: t0-t6 and a1-a7.  a0 carries the return
     value and ra is re-defined by the call itself. *)
  let ts = List.fold_left (fun m i -> m lor bit (Reg.t_ i)) 0 [ 0; 1; 2; 3; 4; 5; 6 ] in
  let as_ = List.fold_left (fun m i -> m lor bit (Reg.a i)) 0 [ 1; 2; 3; 4; 5; 6; 7 ] in
  ts lor as_

(* ------------------------------------------------------------------ *)
(* Constant tracking (enough to follow expand_li into sp adjustments    *)
(* and a7 into ecall numbers)                                           *)
(* ------------------------------------------------------------------ *)

type state = { delta : int; consts : int64 option array (* per register *) }

let fresh_state () = { delta = 0; consts = Array.make 32 None }
let copy_state s = { s with consts = Array.copy s.consts }

let const_of s r = if Reg.equal r Reg.x0 then Some 0L else s.consts.(Reg.to_int r)
let set_const s r v = if not (Reg.equal r Reg.x0) then s.consts.(Reg.to_int r) <- v

let sext32 v = Int64.of_int32 (Int64.to_int32 v)

(* Apply a non-sp-writing instruction to the constant map. *)
let apply_consts s (inst : Inst.t) =
  match inst with
  | Inst.I (Addi, rd, rs1, imm) ->
    set_const s rd
      (Option.map (fun v -> Int64.add v (Int64.of_int imm)) (const_of s rs1))
  | Inst.I (Addiw, rd, rs1, imm) ->
    set_const s rd
      (Option.map (fun v -> sext32 (Int64.add v (Int64.of_int imm))) (const_of s rs1))
  | Inst.U (Lui, rd, imm) -> set_const s rd (Some (Int64.of_int (imm lsl 12)))
  | Inst.Shift (Slli, rd, rs1, sh) ->
    set_const s rd (Option.map (fun v -> Int64.shift_left v sh) (const_of s rs1))
  | Inst.R (Add, rd, rs1, rs2) -> (
    match (const_of s rs1, const_of s rs2) with
    | Some a, Some b -> set_const s rd (Some (Int64.add a b))
    | _ -> set_const s rd None)
  | Inst.Ecall -> set_const s (Reg.a 0) None
  | _ -> (
    match Inst.defines inst with Some rd -> set_const s rd None | None -> ())

let clobber_caller_saved s =
  set_const s Reg.ra None;
  for i = 0 to 6 do set_const s (Reg.t_ i) None done;
  for i = 0 to 7 do set_const s (Reg.a i) None done

(* ------------------------------------------------------------------ *)
(* Global structural checks                                             *)
(* ------------------------------------------------------------------ *)

let decode_checks (cfg : Mc_cfg.t) =
  Array.fold_right
    (fun (n : Mc_cfg.node) acc ->
      match n.Mc_cfg.n_inst with
      | Some _ -> acc
      | None ->
        Diag.errorf ~loc:(mc_loc n.Mc_cfg.n_offset) ~check:"mc.decode.invalid"
          "%d-byte parcel does not decode as RV64GC" n.Mc_cfg.n_size
        :: acc)
    cfg.Mc_cfg.nodes []

let target_checks (cfg : Mc_cfg.t) =
  Array.fold_right
    (fun (n : Mc_cfg.node) acc ->
      List.fold_right
        (fun target acc ->
          if target < 0 || target >= cfg.Mc_cfg.text_size then
            Diag.errorf ~loc:(mc_loc n.Mc_cfg.n_offset) ~check:"mc.cfg.target-out-of-section"
              "target +0x%x lies outside the %d-byte text section" target cfg.Mc_cfg.text_size
            :: acc
          else if Mc_cfg.node_at cfg target = None then
            Diag.errorf ~loc:(mc_loc n.Mc_cfg.n_offset) ~check:"mc.cfg.target-misaligned"
              "target +0x%x is not a parcel boundary" target
            :: acc
          else acc)
        (Mc_cfg.targets_of_flow (Mc_cfg.flow_of n))
        acc)
    cfg.Mc_cfg.nodes []

(* ------------------------------------------------------------------ *)
(* Per-function walk: reachability, stack discipline, saved registers   *)
(* ------------------------------------------------------------------ *)

type region = {
  r_start : int;  (** byte offset of the function's first parcel *)
  r_visited : (int, int) Hashtbl.t;  (** node index -> sp delta at entry *)
  mutable r_untracked : bool;
  mutable r_saved : int;  (** mask of callee-saved regs (and ra) stored *)
  mutable r_callee_defs : (int * Reg.t) list;  (** offset, reg *)
  mutable r_call_offsets : int list;
  mutable r_diags : Diag.t list;
}

let is_exit_ecall st (inst : Inst.t) =
  inst = Inst.Ecall && const_of st (Reg.a 7) = Some 93L

let walk_region (cfg : Mc_cfg.t) ~start ~register_call =
  let region =
    { r_start = start; r_visited = Hashtbl.create 64; r_untracked = false; r_saved = 0;
      r_callee_defs = []; r_call_offsets = []; r_diags = [] }
  in
  let emit d = region.r_diags <- d :: region.r_diags in
  let inconsistent_reported = Hashtbl.create 4 in
  let work = Queue.create () in
  (match Mc_cfg.node_at cfg start with
  | Some n ->
    Hashtbl.replace region.r_visited n.Mc_cfg.n_index 0;
    Queue.add (n.Mc_cfg.n_index, fresh_state ()) work
  | None -> () (* target checks already flagged the bad region start *));
  while not (Queue.is_empty work) do
    let idx, st = Queue.pop work in
    let node = cfg.Mc_cfg.nodes.(idx) in
    let offset = node.Mc_cfg.n_offset in
    match node.Mc_cfg.n_inst with
    | None -> () (* decode check already flagged it; cannot follow flow *)
    | Some inst ->
      (* Stack-pointer effects before generic constant tracking. *)
      let st =
        match inst with
        | Inst.I (Addi, rd, rs1, imm) when Reg.equal rd Reg.sp && Reg.equal rs1 Reg.sp ->
          { st with delta = st.delta + imm }
        | Inst.R (Add, rd, rs1, rs2) when Reg.equal rd Reg.sp -> (
          let other =
            if Reg.equal rs1 Reg.sp then Some rs2
            else if Reg.equal rs2 Reg.sp then Some rs1
            else None
          in
          match Option.map (const_of st) other with
          | Some (Some v) -> { st with delta = st.delta + Int64.to_int v }
          | _ ->
            if not region.r_untracked then begin
              region.r_untracked <- true;
              emit
                (Diag.notef ~loc:(mc_loc offset) ~check:"mc.stack.untracked"
                   "sp modified by an untracked value; stack checks skipped for this function")
            end;
            st)
        | _ when Inst.defines inst = Some Reg.sp ->
          if not region.r_untracked then begin
            region.r_untracked <- true;
            emit
              (Diag.notef ~loc:(mc_loc offset) ~check:"mc.stack.untracked"
                 "sp modified by an untracked value; stack checks skipped for this function")
          end;
          st
        | _ -> st
      in
      (* Saved-register bookkeeping: an sd of a callee-saved register (or
         ra) to an sp-derived address counts as its prologue save. *)
      (match inst with
      | Inst.Store (Sd, src, base, _)
        when (Reg.equal base Reg.sp || Reg.equal base (Reg.t_ 6))
             && (bit src land callee_saved_mask <> 0 || Reg.equal src Reg.ra) ->
        region.r_saved <- region.r_saved lor bit src
      | _ -> ());
      (match Inst.defines inst with
      | Some rd when bit rd land callee_saved_mask <> 0 ->
        region.r_callee_defs <- (offset, rd) :: region.r_callee_defs
      | _ -> ());
      let exit_ecall = is_exit_ecall st inst in
      apply_consts st inst;
      let flow = Mc_cfg.flow_of node in
      (* Successors carry whether they are a fallthrough edge: falling
         past the last parcel is an error, while a jump target past the
         section was already flagged by the global target checks. *)
      let successors =
        match flow with
        | Mc_cfg.Return ->
          if (not region.r_untracked) && st.delta <> 0 then
            emit
              (Diag.errorf ~loc:(mc_loc offset) ~check:"mc.stack.unbalanced"
                 "returns with sp offset %+d (prologue/epilogue adjustments do not balance)"
                 st.delta);
          []
        | Mc_cfg.Indirect ->
          emit
            (Diag.notef ~loc:(mc_loc offset) ~check:"mc.jalr.indirect"
               "indirect jump: target not statically checkable");
          []
        | Mc_cfg.Jump target -> [ (`Jump, target) ]
        | Mc_cfg.Cond target -> [ (`Fall, offset + node.Mc_cfg.n_size); (`Jump, target) ]
        | Mc_cfg.Call target ->
          register_call target;
          region.r_call_offsets <- offset :: region.r_call_offsets;
          clobber_caller_saved st;
          [ (`Fall, offset + node.Mc_cfg.n_size) ]
        | Mc_cfg.Next ->
          if exit_ecall || inst = Inst.Ebreak then []
          else [ (`Fall, offset + node.Mc_cfg.n_size) ]
      in
      List.iter
        (fun (kind, succ) ->
          if succ >= cfg.Mc_cfg.text_size || succ < 0 then begin
            if kind = `Fall then
              emit
                (Diag.errorf ~loc:(mc_loc offset) ~check:"mc.cfg.fallthrough-end"
                   "control reaches the end of the text section without a terminator")
            (* jump targets out of the section were flagged globally *)
          end
          else
            match Mc_cfg.node_at cfg succ with
            | None -> () (* only jump targets can miss a boundary; flagged globally *)
            | Some next -> (
              match Hashtbl.find_opt region.r_visited next.Mc_cfg.n_index with
              | Some seen_delta ->
                if
                  (not region.r_untracked)
                  && seen_delta <> st.delta
                  && not (Hashtbl.mem inconsistent_reported next.Mc_cfg.n_index)
                then begin
                  Hashtbl.replace inconsistent_reported next.Mc_cfg.n_index ();
                  emit
                    (Diag.errorf ~loc:(mc_loc succ) ~check:"mc.stack.inconsistent"
                       "reached with sp offset %+d from one path and %+d from another"
                       seen_delta st.delta)
                end
              | None ->
                Hashtbl.replace region.r_visited next.Mc_cfg.n_index st.delta;
                Queue.add (next.Mc_cfg.n_index, copy_state st) work))
        successors
  done;
  region

let saved_checks ~is_entry region =
  if is_entry then []
  else begin
    let clobbers =
      List.filter_map
        (fun (offset, r) ->
          if bit r land region.r_saved = 0 then
            Some
              (Diag.errorf ~loc:(mc_loc offset) ~check:"mc.reg.callee-clobbered"
                 "callee-saved %s written without a prologue save" (Reg.abi_name r))
          else None)
        (List.sort_uniq compare region.r_callee_defs)
    in
    let ra_check =
      match List.rev region.r_call_offsets with
      | first_call :: _ when bit Reg.ra land region.r_saved = 0 ->
        [ Diag.errorf ~loc:(mc_loc first_call) ~check:"mc.reg.callee-clobbered"
            "function makes a call but never saves ra" ]
      | _ -> []
    in
    clobbers @ ra_check
  end

(* ------------------------------------------------------------------ *)
(* Liveness: caller-saved values read across a call                     *)
(* ------------------------------------------------------------------ *)

let liveness_checks (cfg : Mc_cfg.t) region =
  let members = Hashtbl.fold (fun idx _ acc -> idx :: acc) region.r_visited [] in
  let members = List.sort compare members in
  let member idx = Hashtbl.mem region.r_visited idx in
  let use_def idx =
    let node = cfg.Mc_cfg.nodes.(idx) in
    match node.Mc_cfg.n_inst with
    | None -> (0, 0)
    | Some inst -> (
      match Mc_cfg.flow_of node with
      | Mc_cfg.Call _ ->
        (* The callee's arity is unknown, so claim no uses (arguments are
           re-materialised before each call site anyway) and define every
           caller-saved register: the call clobbers them all, which also
           keeps one stale value from being flagged at several calls. *)
        (0, caller_saved_watch_mask lor bit (Reg.a 0) lor bit Reg.ra)
      | _ when inst = Inst.Ecall ->
        (* Without constant a7 here we cannot tell exit from write; claim
           only the registers every relevant syscall reads (a0, a7) so a
           write's a1/a2 — always materialised right before the ecall —
           are not reported live across an earlier call. *)
        (bit (Reg.a 0) lor bit (Reg.a 7), bit (Reg.a 0))
      | _ ->
        ( List.fold_left (fun m r -> m lor bit r) 0 (Inst.uses inst),
          match Inst.defines inst with Some r -> bit r | None -> 0 ))
  in
  let succs idx =
    let node = cfg.Mc_cfg.nodes.(idx) in
    let offsets =
      match Mc_cfg.flow_of node with
      | Mc_cfg.Return | Mc_cfg.Indirect -> []
      | Mc_cfg.Jump t -> [ t ]
      | Mc_cfg.Cond t -> [ node.Mc_cfg.n_offset + node.Mc_cfg.n_size; t ]
      | Mc_cfg.Call _ | Mc_cfg.Next -> [ node.Mc_cfg.n_offset + node.Mc_cfg.n_size ]
    in
    List.filter_map
      (fun o ->
        match Mc_cfg.node_at cfg o with
        | Some n when member n.Mc_cfg.n_index -> Some n.Mc_cfg.n_index
        | _ -> None)
      offsets
  in
  let live_out = Hashtbl.create 64 in
  let get tbl idx = Option.value (Hashtbl.find_opt tbl idx) ~default:0 in
  let live_in idx =
    let uses, defs = use_def idx in
    uses lor (get live_out idx land lnot defs)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun idx ->
        let out = List.fold_left (fun acc s -> acc lor live_in s) 0 (succs idx) in
        if out <> get live_out idx then begin
          Hashtbl.replace live_out idx out;
          changed := true
        end)
      (List.rev members)
  done;
  List.filter_map
    (fun idx ->
      let node = cfg.Mc_cfg.nodes.(idx) in
      match Mc_cfg.flow_of node with
      | Mc_cfg.Call _ ->
        let across = get live_out idx land caller_saved_watch_mask in
        if across <> 0 then begin
          let regs =
            List.filter_map
              (fun i -> if across land (1 lsl i) <> 0 then Some (Reg.abi_name (Reg.of_int i)) else None)
              (List.init 32 Fun.id)
          in
          Some
            (Diag.errorf ~loc:(mc_loc node.Mc_cfg.n_offset)
               ~check:"mc.reg.caller-live-across-call"
               "caller-saved %s read after this call clobbers it" (String.concat ", " regs))
        end
        else None
      | _ -> None)
    members

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let verify (p : Program.t) =
  Eric_telemetry.Span.with_ ~cat:"lint" ~name:"lint.mc_verify" @@ fun () ->
  let cfg = Mc_cfg.build p in
  Eric_telemetry.Registry.inc ~by:(Int64.of_int (Array.length cfg.Mc_cfg.nodes))
    "lint.parcels_verified";
  let entry = p.Program.entry_offset in
  let entry_diag =
    if Mc_cfg.node_at cfg entry = None then
      [ Diag.errorf ~loc:(mc_loc entry) ~check:"mc.entry.misaligned"
          "entry offset is not a parcel boundary" ]
    else []
  in
  (* Discover function starts: the entry point plus every call target,
     found to a fixpoint as regions are walked. *)
  let starts = Hashtbl.create 16 in
  let pending = Queue.create () in
  let register_call target =
    if target >= 0 && target < cfg.Mc_cfg.text_size && not (Hashtbl.mem starts target) then begin
      Hashtbl.replace starts target ();
      Queue.add target pending
    end
  in
  register_call entry;
  let region_diags = ref [] in
  while not (Queue.is_empty pending) do
    let start = Queue.pop pending in
    let region = walk_region cfg ~start ~register_call in
    let is_entry = start = entry in
    region_diags :=
      !region_diags
      @ List.rev region.r_diags
      @ saved_checks ~is_entry region
      @ liveness_checks cfg region
  done;
  Diag.sort (entry_diag @ decode_checks cfg @ target_checks cfg @ !region_diags)
