open Eric_rv

let mc_loc offset = Diag.Mc_loc { offset }

(* Register index sets as 32-bit masks (one bit per x-register). *)
let bit r = 1 lsl Reg.to_int r
let callee_saved_mask = List.fold_left (fun m i -> m lor bit (Reg.s i)) 0 [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]

let caller_saved_watch_mask =
  (* Registers whose value does not survive a call and whose read after
     one is therefore a bug: t0-t6 and a1-a7.  a0 carries the return
     value and ra is re-defined by the call itself. *)
  let ts = List.fold_left (fun m i -> m lor bit (Reg.t_ i)) 0 [ 0; 1; 2; 3; 4; 5; 6 ] in
  let as_ = List.fold_left (fun m i -> m lor bit (Reg.a i)) 0 [ 1; 2; 3; 4; 5; 6; 7 ] in
  ts lor as_

(* ------------------------------------------------------------------ *)
(* Constant tracking (enough to follow expand_li into sp adjustments    *)
(* and a7 into ecall numbers)                                           *)
(* ------------------------------------------------------------------ *)

let const_of consts r = if Reg.equal r Reg.x0 then Some 0L else consts.(Reg.to_int r)
let set_const consts r v = if not (Reg.equal r Reg.x0) then consts.(Reg.to_int r) <- v

let sext32 v = Int64.of_int32 (Int64.to_int32 v)

(* Apply an instruction to a mutable constant map. *)
let apply_consts consts (inst : Inst.t) =
  match inst with
  | Inst.I (Addi, rd, rs1, imm) ->
    set_const consts rd
      (Option.map (fun v -> Int64.add v (Int64.of_int imm)) (const_of consts rs1))
  | Inst.I (Addiw, rd, rs1, imm) ->
    set_const consts rd
      (Option.map (fun v -> sext32 (Int64.add v (Int64.of_int imm))) (const_of consts rs1))
  | Inst.U (Lui, rd, imm) -> set_const consts rd (Some (Int64.of_int (imm lsl 12)))
  | Inst.Shift (Slli, rd, rs1, sh) ->
    set_const consts rd (Option.map (fun v -> Int64.shift_left v sh) (const_of consts rs1))
  | Inst.R (Add, rd, rs1, rs2) -> (
    match (const_of consts rs1, const_of consts rs2) with
    | Some a, Some b -> set_const consts rd (Some (Int64.add a b))
    | _ -> set_const consts rd None)
  | Inst.Ecall -> set_const consts (Reg.a 0) None
  | _ -> (
    match Inst.defines inst with Some rd -> set_const consts rd None | None -> ())

let clobber_caller_saved consts =
  set_const consts Reg.ra None;
  for i = 0 to 6 do set_const consts (Reg.t_ i) None done;
  for i = 0 to 7 do set_const consts (Reg.a i) None done

let is_exit_ecall consts (inst : Inst.t) =
  inst = Inst.Ecall && const_of consts (Reg.a 7) = Some 93L

(* ------------------------------------------------------------------ *)
(* Global structural checks                                             *)
(* ------------------------------------------------------------------ *)

let decode_checks (cfg : Mc_cfg.t) =
  Array.fold_right
    (fun (n : Mc_cfg.node) acc ->
      match n.Mc_cfg.n_inst with
      | Some _ -> acc
      | None ->
        Diag.errorf ~loc:(mc_loc n.Mc_cfg.n_offset) ~check:"mc.decode.invalid"
          "%d-byte parcel does not decode as RV64GC" n.Mc_cfg.n_size
        :: acc)
    cfg.Mc_cfg.nodes []

let target_checks (cfg : Mc_cfg.t) =
  Array.fold_right
    (fun (n : Mc_cfg.node) acc ->
      List.fold_right
        (fun target acc ->
          if target < 0 || target >= cfg.Mc_cfg.text_size then
            Diag.errorf ~loc:(mc_loc n.Mc_cfg.n_offset) ~check:"mc.cfg.target-out-of-section"
              "target +0x%x lies outside the %d-byte text section" target cfg.Mc_cfg.text_size
            :: acc
          else if Mc_cfg.node_at cfg target = None then
            Diag.errorf ~loc:(mc_loc n.Mc_cfg.n_offset) ~check:"mc.cfg.target-misaligned"
              "target +0x%x is not a parcel boundary" target
            :: acc
          else acc)
        (Mc_cfg.targets_of_flow (Mc_cfg.flow_of n))
        acc)
    cfg.Mc_cfg.nodes []

(* ------------------------------------------------------------------ *)
(* Region discovery: reachable body + intra-region edges per function   *)
(* ------------------------------------------------------------------ *)

(* One discovery walk per function start.  The walk only builds the
   region's shape — member nodes, intra-region edges, call sites,
   prologue saves — and flags flow that leaves the section; the stack
   and liveness *fixpoints* run afterwards on the {!Dataflow} solver
   over this subgraph.  Constant tracking here exists solely to tell an
   [exit] ecall (no fallthrough) from any other; it is first-visit-wins
   on purpose, like the framing an attacker discovers. *)
type region = {
  r_start : int;  (** byte offset of the function's first parcel *)
  r_members : int list;  (** node indices, in discovery order *)
  r_edges : (int * int) list;  (** intra-region edges between node indices *)
  mutable r_saved : int;  (** mask of callee-saved regs (and ra) stored *)
  mutable r_callee_defs : (int * Reg.t) list;  (** offset, reg *)
  mutable r_call_offsets : int list;
  mutable r_diags : Diag.t list;
}

let walk_region (cfg : Mc_cfg.t) ~start ~register_call =
  let visited = Hashtbl.create 64 in
  let members = ref [] and edges = ref [] in
  let region =
    { r_start = start; r_members = []; r_edges = []; r_saved = 0;
      r_callee_defs = []; r_call_offsets = []; r_diags = [] }
  in
  let emit d = region.r_diags <- d :: region.r_diags in
  let work = Queue.create () in
  (match Mc_cfg.node_at cfg start with
  | Some n ->
    Hashtbl.replace visited n.Mc_cfg.n_index ();
    members := [ n.Mc_cfg.n_index ];
    Queue.add (n.Mc_cfg.n_index, Array.make 32 None) work
  | None -> () (* target checks already flagged the bad region start *));
  while not (Queue.is_empty work) do
    let idx, consts = Queue.pop work in
    let node = cfg.Mc_cfg.nodes.(idx) in
    let offset = node.Mc_cfg.n_offset in
    match node.Mc_cfg.n_inst with
    | None -> () (* decode check already flagged it; cannot follow flow *)
    | Some inst ->
      (* Saved-register bookkeeping: an sd of a callee-saved register (or
         ra) to an sp-derived address counts as its prologue save. *)
      (match inst with
      | Inst.Store (Sd, src, base, _)
        when (Reg.equal base Reg.sp || Reg.equal base (Reg.t_ 6))
             && (bit src land callee_saved_mask <> 0 || Reg.equal src Reg.ra) ->
        region.r_saved <- region.r_saved lor bit src
      | _ -> ());
      (match Inst.defines inst with
      | Some rd when bit rd land callee_saved_mask <> 0 ->
        region.r_callee_defs <- (offset, rd) :: region.r_callee_defs
      | _ -> ());
      let exit_ecall = is_exit_ecall consts inst in
      apply_consts consts inst;
      let flow = Mc_cfg.flow_of node in
      (* Successors carry whether they are a fallthrough edge: falling
         past the last parcel is an error, while a jump target past the
         section was already flagged by the global target checks. *)
      let successors =
        match flow with
        | Mc_cfg.Return -> []
        | Mc_cfg.Indirect ->
          emit
            (Diag.notef ~loc:(mc_loc offset) ~check:"mc.jalr.indirect"
               "indirect jump: target not statically checkable");
          []
        | Mc_cfg.Indirect_call ->
          emit
            (Diag.notef ~loc:(mc_loc offset) ~check:"mc.jalr.indirect"
               "indirect call: target not statically checkable");
          region.r_call_offsets <- offset :: region.r_call_offsets;
          clobber_caller_saved consts;
          [ (`Fall, offset + node.Mc_cfg.n_size) ]
        | Mc_cfg.Jump target -> [ (`Jump, target) ]
        | Mc_cfg.Cond target -> [ (`Fall, offset + node.Mc_cfg.n_size); (`Jump, target) ]
        | Mc_cfg.Call target ->
          register_call target;
          region.r_call_offsets <- offset :: region.r_call_offsets;
          clobber_caller_saved consts;
          [ (`Fall, offset + node.Mc_cfg.n_size) ]
        | Mc_cfg.Next ->
          if exit_ecall || inst = Inst.Ebreak then []
          else [ (`Fall, offset + node.Mc_cfg.n_size) ]
      in
      List.iter
        (fun (kind, succ) ->
          if succ >= cfg.Mc_cfg.text_size || succ < 0 then begin
            if kind = `Fall then
              emit
                (Diag.errorf ~loc:(mc_loc offset) ~check:"mc.cfg.fallthrough-end"
                   "control reaches the end of the text section without a terminator")
            (* jump targets out of the section were flagged globally *)
          end
          else
            match Mc_cfg.node_at cfg succ with
            | None -> () (* only jump targets can miss a boundary; flagged globally *)
            | Some next ->
              edges := (idx, next.Mc_cfg.n_index) :: !edges;
              if not (Hashtbl.mem visited next.Mc_cfg.n_index) then begin
                Hashtbl.replace visited next.Mc_cfg.n_index ();
                members := next.Mc_cfg.n_index :: !members;
                Queue.add (next.Mc_cfg.n_index, Array.copy consts) work
              end)
        successors
  done;
  { region with r_members = List.rev !members; r_edges = List.rev !edges }

(* ------------------------------------------------------------------ *)
(* Stack discipline as a forward dataflow over the region subgraph      *)
(* ------------------------------------------------------------------ *)

(* sp offset from function entry x constant map, as a product lattice:
   join keeps a delta only when every path agrees, a constant only when
   every path computed the same value. *)
module Sp_state = struct
  type delta = Delta of int | Unknown

  type t = Unreached | St of { delta : delta; consts : int64 option array }

  let bottom = Unreached

  let join_delta a b =
    match (a, b) with Delta x, Delta y when x = y -> a | _ -> Unknown

  let join a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | St a, St b ->
      St
        { delta = join_delta a.delta b.delta;
          consts =
            Array.init 32 (fun i ->
                match (a.consts.(i), b.consts.(i)) with
                | Some x, Some y when Int64.equal x y -> Some x
                | _ -> None) }

  let equal a b =
    match (a, b) with
    | Unreached, Unreached -> true
    | St a, St b -> a.delta = b.delta && a.consts = b.consts
    | _ -> false

  let pp fmt = function
    | Unreached -> Format.pp_print_string fmt "unreached"
    | St { delta; _ } -> (
      match delta with
      | Delta d -> Format.fprintf fmt "sp%+d" d
      | Unknown -> Format.pp_print_string fmt "sp?")

  let entry () = St { delta = Delta 0; consts = Array.make 32 None }
end

(* The sp effect of one instruction, given the incoming constant map:
   [`Adjust] for tracked adjustments, [`Untracked] for writes the
   verifier cannot follow, [`None] otherwise. *)
let sp_effect consts (inst : Inst.t) =
  match inst with
  | Inst.I (Addi, rd, rs1, imm) when Reg.equal rd Reg.sp && Reg.equal rs1 Reg.sp ->
    `Adjust imm
  | Inst.R (Add, rd, rs1, rs2) when Reg.equal rd Reg.sp -> (
    let other =
      if Reg.equal rs1 Reg.sp then Some rs2
      else if Reg.equal rs2 Reg.sp then Some rs1
      else None
    in
    match Option.map (const_of consts) other with
    | Some (Some v) -> `Adjust (Int64.to_int v)
    | _ -> `Untracked)
  | _ when Inst.defines inst = Some Reg.sp -> `Untracked
  | _ -> `None

let sp_transfer (cfg : Mc_cfg.t) idx (st : Sp_state.t) =
  match st with
  | Sp_state.Unreached -> st
  | Sp_state.St { delta; consts } -> (
    match cfg.Mc_cfg.nodes.(idx).Mc_cfg.n_inst with
    | None -> st
    | Some inst ->
      let delta =
        match (sp_effect consts inst, delta) with
        | `Adjust imm, Sp_state.Delta d -> Sp_state.Delta (d + imm)
        | `Adjust _, Sp_state.Unknown | `Untracked, _ -> Sp_state.Unknown
        | `None, d -> d
      in
      let consts = Array.copy consts in
      apply_consts consts inst;
      (match Mc_cfg.flow_of cfg.Mc_cfg.nodes.(idx) with
      | Mc_cfg.Call _ | Mc_cfg.Indirect_call -> clobber_caller_saved consts
      | _ -> ());
      Sp_state.St { delta; consts })

module Sp_solver = Dataflow.Make (Sp_state)

let stack_checks (cfg : Mc_cfg.t) (region : region) =
  match region.r_members with
  | [] -> []
  | members ->
    let members = Array.of_list members in
    let local = Hashtbl.create (Array.length members) in
    Array.iteri (fun i idx -> Hashtbl.replace local idx i) members;
    let edges =
      List.map (fun (a, b) -> (Hashtbl.find local a, Hashtbl.find local b)) region.r_edges
    in
    let graph = Dataflow.graph_of_edges ~node_count:(Array.length members) edges in
    let transfer i st = sp_transfer cfg members.(i) st in
    let solved =
      Sp_solver.solve ~boundary:[ (0, Sp_state.entry ()) ] ~graph ~transfer ()
    in
    let offset_of i = cfg.Mc_cfg.nodes.(members.(i)).Mc_cfg.n_offset in
    (* An untracked sp write anywhere in the region voids its stack
       checks: report the first such site as a note and stop there. *)
    let untracked =
      let sites = ref [] in
      Array.iteri
        (fun i idx ->
          match (solved.Sp_solver.input.(i), cfg.Mc_cfg.nodes.(idx).Mc_cfg.n_inst) with
          | Sp_state.St { consts; _ }, Some inst ->
            if sp_effect consts inst = `Untracked then sites := offset_of i :: !sites
          | _ -> ())
        members;
      List.sort compare !sites
    in
    match untracked with
    | first :: _ ->
      [ Diag.notef ~loc:(mc_loc first) ~check:"mc.stack.untracked"
          "sp modified by an untracked value; stack checks skipped for this function" ]
    | [] ->
      let delta_out i =
        match solved.Sp_solver.output.(i) with
        | Sp_state.St { delta = Sp_state.Delta d; _ } -> Some d
        | _ -> None
      in
      let incoming = Array.make (Array.length members) [] in
      List.iter (fun (a, b) -> incoming.(b) <- a :: incoming.(b)) edges;
      let diags = ref [] in
      Array.iteri
        (fun i idx ->
          let node = cfg.Mc_cfg.nodes.(idx) in
          (* Joins reached with disagreeing sp offsets. *)
          let seen =
            let boundary = if i = 0 then [ 0 ] else [] in
            boundary @ List.filter_map delta_out (List.rev incoming.(i))
          in
          (match List.sort_uniq compare seen with
          | d1 :: d2 :: _ ->
            diags :=
              Diag.errorf ~loc:(mc_loc node.Mc_cfg.n_offset) ~check:"mc.stack.inconsistent"
                "reached with sp offset %+d from one path and %+d from another" d1 d2
              :: !diags
          | _ -> ());
          (* Returns with a non-zero frame still open. *)
          match (Mc_cfg.flow_of node, solved.Sp_solver.input.(i)) with
          | Mc_cfg.Return, Sp_state.St { delta = Sp_state.Delta d; _ } when d <> 0 ->
            diags :=
              Diag.errorf ~loc:(mc_loc node.Mc_cfg.n_offset) ~check:"mc.stack.unbalanced"
                "returns with sp offset %+d (prologue/epilogue adjustments do not balance)" d
              :: !diags
          | _ -> ())
        members;
      List.rev !diags

(* ------------------------------------------------------------------ *)
(* Saved-register and liveness checks                                   *)
(* ------------------------------------------------------------------ *)

let saved_checks ~is_entry region =
  if is_entry then []
  else begin
    let clobbers =
      List.filter_map
        (fun (offset, r) ->
          if bit r land region.r_saved = 0 then
            Some
              (Diag.errorf ~loc:(mc_loc offset) ~check:"mc.reg.callee-clobbered"
                 "callee-saved %s written without a prologue save" (Reg.abi_name r))
          else None)
        (List.sort_uniq compare region.r_callee_defs)
    in
    let ra_check =
      match List.rev region.r_call_offsets with
      | first_call :: _ when bit Reg.ra land region.r_saved = 0 ->
        [ Diag.errorf ~loc:(mc_loc first_call) ~check:"mc.reg.callee-clobbered"
            "function makes a call but never saves ra" ]
      | _ -> []
    in
    clobbers @ ra_check
  end

(* Backward liveness over the region subgraph: live-out of every call
   must not contain a caller-saved register.  [Dataflow.Bitset] facts,
   bit r = register r live. *)
module Live_solver = Dataflow.Make (Dataflow.Bitset)

let use_def (cfg : Mc_cfg.t) idx =
  let node = cfg.Mc_cfg.nodes.(idx) in
  match node.Mc_cfg.n_inst with
  | None -> (0, 0)
  | Some inst -> (
    match Mc_cfg.flow_of node with
    | Mc_cfg.Call _ ->
      (* The callee's arity is unknown, so claim no uses (arguments are
         re-materialised before each call site anyway) and define every
         caller-saved register: the call clobbers them all, which also
         keeps one stale value from being flagged at several calls. *)
      (0, caller_saved_watch_mask lor bit (Reg.a 0) lor bit Reg.ra)
    | Mc_cfg.Indirect_call ->
      (* Same clobber story, but the target register itself is read. *)
      ( List.fold_left (fun m r -> m lor bit r) 0 (Inst.uses inst),
        caller_saved_watch_mask lor bit (Reg.a 0) lor bit Reg.ra )
    | _ when inst = Inst.Ecall ->
      (* Without constant a7 here we cannot tell exit from write; claim
         only the registers every relevant syscall reads (a0, a7) so a
         write's a1/a2 — always materialised right before the ecall —
         are not reported live across an earlier call. *)
      (bit (Reg.a 0) lor bit (Reg.a 7), bit (Reg.a 0))
    | _ ->
      ( List.fold_left (fun m r -> m lor bit r) 0 (Inst.uses inst),
        match Inst.defines inst with Some r -> bit r | None -> 0 ))

let liveness_checks (cfg : Mc_cfg.t) (region : region) =
  match region.r_members with
  | [] -> []
  | members ->
    let members = Array.of_list members in
    let local = Hashtbl.create (Array.length members) in
    Array.iteri (fun i idx -> Hashtbl.replace local idx i) members;
    let edges =
      List.map (fun (a, b) -> (Hashtbl.find local a, Hashtbl.find local b)) region.r_edges
    in
    let graph = Dataflow.graph_of_edges ~node_count:(Array.length members) edges in
    let transfer i out =
      let uses, defs = use_def cfg members.(i) in
      uses lor (out land lnot defs)
    in
    let solved = Live_solver.solve ~direction:Dataflow.Backward ~graph ~transfer () in
    List.filter_map
      (fun (idx : int) ->
        let i = Hashtbl.find local idx in
        let node = cfg.Mc_cfg.nodes.(idx) in
        match Mc_cfg.flow_of node with
        | Mc_cfg.Call _ | Mc_cfg.Indirect_call ->
          (* In a backward solve, [input] is the join over successors —
             the live-out set at this call. *)
          let across = solved.Live_solver.input.(i) land caller_saved_watch_mask in
          if across <> 0 then begin
            let regs =
              List.filter_map
                (fun b ->
                  if across land (1 lsl b) <> 0 then Some (Reg.abi_name (Reg.of_int b))
                  else None)
                (List.init 32 Fun.id)
            in
            Some
              (Diag.errorf ~loc:(mc_loc node.Mc_cfg.n_offset)
                 ~check:"mc.reg.caller-live-across-call"
                 "caller-saved %s read after this call clobbers it" (String.concat ", " regs))
          end
          else None
        | _ -> None)
      (List.sort compare (Array.to_list members))

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let verify (p : Program.t) =
  Eric_telemetry.Span.with_ ~cat:"lint" ~name:"lint.mc_verify" @@ fun () ->
  let cfg = Mc_cfg.build p in
  Eric_telemetry.Registry.inc ~by:(Int64.of_int (Array.length cfg.Mc_cfg.nodes))
    "lint.parcels_verified";
  let entry = p.Program.entry_offset in
  let entry_diag =
    if Mc_cfg.node_at cfg entry = None then
      [ Diag.errorf ~loc:(mc_loc entry) ~check:"mc.entry.misaligned"
          "entry offset is not a parcel boundary" ]
    else []
  in
  (* Discover function starts: the entry point plus every call target,
     found to a fixpoint as regions are walked. *)
  let starts = Hashtbl.create 16 in
  let pending = Queue.create () in
  let register_call target =
    if target >= 0 && target < cfg.Mc_cfg.text_size && not (Hashtbl.mem starts target) then begin
      Hashtbl.replace starts target ();
      Queue.add target pending
    end
  in
  register_call entry;
  let region_diags = ref [] in
  while not (Queue.is_empty pending) do
    let start = Queue.pop pending in
    let region = walk_region cfg ~start ~register_call in
    let is_entry = start = entry in
    region_diags :=
      !region_diags
      @ List.rev region.r_diags
      @ stack_checks cfg region
      @ saved_checks ~is_entry region
      @ liveness_checks cfg region
  done;
  Diag.sort (entry_diag @ decode_checks cfg @ target_checks cfg @ !region_diags)
