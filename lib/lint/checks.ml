type family = Ir | Machine | Leakage | Taint

let family_name = function
  | Ir -> "ir"
  | Machine -> "machine-code"
  | Leakage -> "leakage"
  | Taint -> "taint"

type info = {
  id : string;
  family : family;
  severity : Diag.severity;
  summary : string;
}

let all =
  [ (* IR verifier (Eric_cc.Ir_verify) *)
    { id = "ir.cfg.empty"; family = Ir; severity = Diag.Error;
      summary = "function has no basic blocks" };
    { id = "ir.cfg.duplicate-label"; family = Ir; severity = Diag.Error;
      summary = "two blocks in one function share a label" };
    { id = "ir.cfg.unresolved-label"; family = Ir; severity = Diag.Error;
      summary = "a terminator targets a label with no block" };
    { id = "ir.cfg.unreachable-block"; family = Ir; severity = Diag.Note;
      summary = "block unreachable from the entry (expected pre-optimisation)" };
    { id = "ir.temp.out-of-range"; family = Ir; severity = Diag.Error;
      summary = "temp id is negative or >= f_temp_count" };
    { id = "ir.temp.undef"; family = Ir; severity = Diag.Error;
      summary = "temp used but never defined anywhere in the function" };
    { id = "ir.temp.maybe-undef"; family = Ir; severity = Diag.Warning;
      summary = "temp used on a path where no definition dominates the use" };
    { id = "ir.slot.unresolved"; family = Ir; severity = Diag.Error;
      summary = "Addr_local names a frame slot the function does not declare" };
    { id = "ir.call.unknown"; family = Ir; severity = Diag.Error;
      summary = "call target is not a function of the program" };
    { id = "ir.call.arity"; family = Ir; severity = Diag.Error;
      summary = "call argument count disagrees with the callee's parameters" };
    (* Machine-code verifier (Mc_verify) *)
    { id = "mc.decode.invalid"; family = Machine; severity = Diag.Error;
      summary = "text parcel is not a valid RV64GC encoding" };
    { id = "mc.entry.misaligned"; family = Machine; severity = Diag.Error;
      summary = "entry offset does not land on a parcel boundary" };
    { id = "mc.cfg.target-out-of-section"; family = Machine; severity = Diag.Error;
      summary = "branch/jump target lies outside the text section" };
    { id = "mc.cfg.target-misaligned"; family = Machine; severity = Diag.Error;
      summary = "branch/jump target is not a parcel boundary (mid-instruction)" };
    { id = "mc.cfg.fallthrough-end"; family = Machine; severity = Diag.Error;
      summary = "control can fall off the end of the text section" };
    { id = "mc.stack.unbalanced"; family = Machine; severity = Diag.Error;
      summary = "sp adjustment does not return to zero at a return site" };
    { id = "mc.stack.inconsistent"; family = Machine; severity = Diag.Error;
      summary = "two paths reach the same instruction with different sp offsets" };
    { id = "mc.stack.untracked"; family = Machine; severity = Diag.Note;
      summary = "sp modified by a value the verifier cannot track; stack checks skipped" };
    { id = "mc.reg.callee-clobbered"; family = Machine; severity = Diag.Error;
      summary = "callee-saved register written without a prologue save" };
    { id = "mc.reg.caller-live-across-call"; family = Machine; severity = Diag.Error;
      summary = "caller-saved register read after a call that clobbers it" };
    { id = "mc.jalr.indirect"; family = Machine; severity = Diag.Note;
      summary = "indirect jump: target not statically checkable" };
    (* Encryption-policy leakage lint (Leakage / Eric.Policy_lint) *)
    { id = "leak.policy.empty"; family = Leakage; severity = Diag.Error;
      summary = "policy selects zero parcels: the package ships plaintext" };
    { id = "leak.text.plaintext"; family = Leakage; severity = Diag.Warning;
      summary = "fraction of parcels left fully plaintext exceeds threshold" };
    { id = "leak.opcode.visible"; family = Leakage; severity = Diag.Warning;
      summary = "opcode bits plaintext: opcode histogram recoverable by linear sweep" };
    { id = "leak.cfg.branch-offsets"; family = Leakage; severity = Diag.Warning;
      summary = "branch/jump offsets plaintext: CFG recoverable by linear sweep" };
    { id = "leak.call.edges"; family = Leakage; severity = Diag.Warning;
      summary = "jal ra sites with plaintext offsets: call graph recoverable" };
    { id = "leak.func.prologues"; family = Leakage; severity = Diag.Warning;
      summary = "addi sp,sp,-N prologues plaintext: function boundaries recoverable" };
    { id = "leak.struct.recovered"; family = Leakage; severity = Diag.Warning;
      summary = "attacker recovers program structure above threshold (--attacker model)" };
    { id = "leak.struct.indirect"; family = Leakage; severity = Diag.Note;
      summary = "indirect control transfers statically resolved by the recursive attacker" };
    (* Secret-taint obligation (Taint / Eric.Pipeline_taint) *)
    { id = "taint.key.plaintext-field"; family = Taint; severity = Diag.Error;
      summary = "KMU-derived key material reaches a plaintext package field" };
    { id = "taint.key.telemetry"; family = Taint; severity = Diag.Error;
      summary = "KMU-derived key material reaches telemetry output" } ]

let find id = List.find_opt (fun i -> i.id = id) all

let pp_catalogue fmt () =
  let wid = List.fold_left (fun acc i -> max acc (String.length i.id)) 0 all in
  List.iter
    (fun i ->
      Format.fprintf fmt "%-*s  %-12s  %-7s  %s@." wid i.id (family_name i.family)
        (Diag.severity_name i.severity) i.summary)
    all
