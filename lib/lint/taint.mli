(** Secret-taint propagation over a declared pipeline model.

    Callers describe a pipeline as named values and edges: [Copy] and
    [Derive] edges propagate taint (key material derived from key
    material is key material), [Sanitize] edges stop it (XOR against a
    keystream yields ciphertext that is useless without the secret).
    Taint starts at [Source] nodes; a tainted [Sink] is a violated
    obligation, reported with its check id and a witness path.

    The fixpoint is the boolean-lattice instance of {!Dataflow}:
    solving forward from the sources is reachability along propagating
    edges. *)

module Lattice : sig
  type t = Clean | Tainted

  include Dataflow.LATTICE with type t := t
end

type kind = Copy | Derive | Sanitize

type role =
  | Source  (** origin of secret material *)
  | Sink of string  (** must stay clean; payload is the check id *)
  | Internal

type spec = {
  nodes : (string * role) list;
  edges : (string * kind * string) list;  (** (from, kind, to) *)
}

type finding = {
  sink : string;
  check : string;
  path : string list;  (** witness, source first, sink last *)
}

type result = {
  tainted : string list;
  findings : finding list;
}

val analyze : spec -> result
(** Raises [Invalid_argument] on duplicate node names or edges naming
    undeclared nodes. *)

val diags : result -> Diag.t list
(** One error per finding, under the sink's check id. *)
