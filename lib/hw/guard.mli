(** Cycle model of the runtime integrity guard.

    The HDE validates a package's signature exactly once, at load time:
    a bit flip in DRAM *after* validation executes silently unless it
    happens to trap (the fault-injection campaign measures that residual
    exposure at roughly half).  The guard closes this post-validation
    window with hardware the HDE already has — the shared SHA core and
    the DMA path — by keeping per-granule reference digests of the
    resident image, computed once while the load streams through, and
    re-checking them while the program runs.

    Two mechanisms, selectable per device:

    - {b periodic scrub}: a background pass re-hashes every resident
      granule against its reference digest on a configurable cycle
      interval.  Granules legitimately written by the program since the
      last pass (data/bss) are re-enrolled instead of checked; text is
      never legitimately written, so any text mismatch faults.  Cost is
      one granule hash + compare per granule per pass, so the overhead
      rate is [scrub_pass_cycles / interval] — the knob the
      coverage-vs-overhead sweep turns.
    - {b re-validate on fetch}: the I-side fill path re-hashes the
      granule containing the missed line before the core may execute
      from it, amortizing the check into the existing L1I miss penalty.
      Cheap (pay only on misses) but I-side only: data corruption is
      not covered.

    [Fetch_and_scrub] combines both.  This module is the pure cost/
    configuration model; the functional runtime (digest state, dirty
    tracking, the fault itself) lives in [Eric_sim.Integrity], and the
    detection coverage it buys is measured by [Eric_verif.Inject]. *)

type mechanism =
  | Off
  | Scrub of { interval_cycles : int }
      (** full re-hash pass every [interval_cycles] cycles *)
  | Fetch_check  (** granule digest check on every I-cache miss *)
  | Fetch_and_scrub of { interval_cycles : int }

type config = {
  mechanism : mechanism;
  granule_bytes : int;  (** digest granule; default 64 = one SHA block *)
  hash_granule_cycles : int;
      (** re-hash one granule on the shared SHA core (default 65,
          matching {!Hde.config.sha_block_cycles}) *)
  compare_cycles : int;  (** digest compare + fault sequencing *)
}

val disabled : config
(** [mechanism = Off]; every cost function returns 0. *)

val default : mechanism -> config
(** Default granule/cycle parameters around the given mechanism. *)

val scrub : interval_cycles:int -> config
val fetch_check : config
val fetch_and_scrub : interval_cycles:int -> config

val validate : config -> (config, string) result
(** Positive granule size and interval, non-negative cycle costs. *)

val enabled : config -> bool
val scrubs : config -> bool
val fetch_checked : config -> bool

val scrub_interval : config -> int option
(** [Some interval] for the scrubbing mechanisms. *)

val granules : config -> bytes:int -> int
(** Granules covering [bytes] (ceiling division). *)

val enroll_cycles : config -> resident_bytes:int -> int
(** One-time cost, at load, of computing the reference digests over the
    resident image.  0 when disabled. *)

val scrub_pass_cycles : config -> resident_bytes:int -> int
(** Cost of one full scrub pass (hash + compare per granule).  0 unless
    the mechanism scrubs. *)

val fetch_check_cycles : config -> int
(** Extra cycles added to one I-cache miss (hash + compare of the
    granule being filled).  0 unless the mechanism fetch-checks. *)

val overhead_rate : config -> resident_bytes:int -> float
(** Steady-state scrub bandwidth: [scrub_pass_cycles / interval], the
    fraction of all cycles the shared SHA core spends re-hashing.  0 for
    non-scrubbing mechanisms (fetch-check cost depends on the miss rate,
    which only the simulator knows). *)

val mechanism_name : mechanism -> string
(** Stable spelling: ["off"], ["scrub:N"], ["fetch"], ["fetch+scrub:N"]. *)

val mechanism_of_string : string -> (mechanism, string) result
(** Inverse of {!mechanism_name}. *)

val pp_mechanism : Format.formatter -> mechanism -> unit
