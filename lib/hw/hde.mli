(** Cycle model of the Hardware Decryption Engine's load path.

    The HDE sits between the program source and main memory (outside the
    Rocket core, as the paper stresses): incoming encrypted words stream
    through the Decryption Unit (XOR against the Key Management Unit's
    keystream) and the Signature Generator (SHA-256 over the decrypted
    stream) before the Validation Unit authorises execution.  In the
    default configuration — matched to the Table-II area budget, which has
    a single compact SHA-256 core shared by the Signature Generator and
    the keystream generation — the stages serialise, so load time is the
    sum of the per-stage costs plus small fixed latencies:

    - DMA into memory: 8 B/cycle;
    - Signature SHA-256 core: one 64-byte block per ~65 cycles (1
      round/cycle + scheduling) — every byte of the image is hashed;
    - keystream generation (SHA-256-CTR in the KMU): one 32-byte block per
      ~65 cycles — only bytes that are actually encrypted need stream;
    - XOR datapath: 4 B/cycle (also only for encrypted bytes);
    - fixed costs: PUF key readout + key derivation at boot, validation
      compare at the end.

    A plain (baseline) load is just the DMA term.  The model is what makes
    the Fig-7 shape emerge: overhead scales with the static image size and
    the encrypted fraction, independent of how long the program then runs. *)

type config = {
  dma_bytes_per_cycle : int;
  sha_block_cycles : int;  (** cycles per 64-byte signature block *)
  keystream_block_cycles : int;  (** cycles per 32-byte keystream block *)
  xor_bytes_per_cycle : int;
  key_setup_cycles : int;  (** PUF readout + majority voting + derivation *)
  validation_cycles : int;  (** final signature compare + authorisation *)
  pipelined : bool;
      (** [false] (the default, matching the Table-II area budget): the HDE
          has a *single* SHA-256 core shared by the Signature Generator and
          the Key Management Unit's keystream generation, so the hash and
          keystream stages serialise and the load time is the *sum* of the
          stages.  [true] models a larger HDE with independent cores, where
          load time is bounded by the slowest stage. *)
  guard : Guard.config;
      (** runtime integrity guard (default {!Guard.disabled}).  When
          enabled, the load path additionally enrolls per-granule
          reference digests of the resident image
          ({!Guard.enroll_cycles}); the runtime checks are charged by
          the simulator as the program runs. *)
}

val default_config : config

type breakdown = {
  dma_cycles : int64;
  hash_cycles : int64;
  keystream_cycles : int64;
  xor_cycles : int64;
  guard_cycles : int64;
      (** guard reference-digest enrollment over the resident bytes;
          0 when the guard is disabled.  Serialises with the other
          stages on the shared SHA core; overlaps when [pipelined]. *)
  fixed_cycles : int64;
  total_cycles : int64;  (** max of the pipelined stages + fixed *)
}

val load_encrypted :
  config -> image_bytes:int -> hashed_bytes:int -> encrypted_bytes:int -> breakdown
(** Cycles to ingest an encrypted package.  [image_bytes] covers everything
    DMA'd (header + text + map + data + signature); [hashed_bytes] is what
    the Signature Generator digests; [encrypted_bytes] is what needs
    keystream + XOR. *)

val load_plain : config -> image_bytes:int -> int64
(** Baseline: DMA only. *)

val reconstruction_cycles : config -> reads:int -> attempts:int -> int
(** Key-setup cost of fuzzy-extractor boot instead of plain majority
    voting: [reads] PUF challenge reads per attempt at one read per
    sequencing cycle, plus a per-attempt helper-tag check (two
    HMAC-SHA-256 passes on the shared SHA core).  Replaces the majority
    part of [key_setup_cycles] when a target boots from helper data. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
