type config = {
  dma_bytes_per_cycle : int;
  sha_block_cycles : int;
  keystream_block_cycles : int;
  xor_bytes_per_cycle : int;
  key_setup_cycles : int;
  validation_cycles : int;
  pipelined : bool;
  guard : Guard.config;
}

let default_config =
  {
    dma_bytes_per_cycle = 8;
    sha_block_cycles = 65;
    keystream_block_cycles = 65;
    xor_bytes_per_cycle = 4;
    key_setup_cycles = 600;
    (* 32 chains x 15 majority votes takes ~500 cycles of challenge
       sequencing, plus one SHA block for the derivation *)
    validation_cycles = 40;
    pipelined = false;
    guard = Guard.disabled;
  }

type breakdown = {
  dma_cycles : int64;
  hash_cycles : int64;
  keystream_cycles : int64;
  xor_cycles : int64;
  guard_cycles : int64;
  fixed_cycles : int64;
  total_cycles : int64;
}

let ceil_div a b = (a + b - 1) / b

let load_encrypted cfg ~image_bytes ~hashed_bytes ~encrypted_bytes =
  if image_bytes < 0 || hashed_bytes < 0 || encrypted_bytes < 0 then
    invalid_arg "Hde.load_encrypted: negative byte count";
  let dma = ceil_div image_bytes cfg.dma_bytes_per_cycle in
  (* SHA-256 pads to whole blocks; one extra block covers the padding. *)
  let hash = (ceil_div hashed_bytes 64 + 1) * cfg.sha_block_cycles in
  let keystream = ceil_div encrypted_bytes 32 * cfg.keystream_block_cycles in
  let xor = ceil_div encrypted_bytes cfg.xor_bytes_per_cycle in
  (* Guard enrollment digests the plaintext resident footprint as it
     lands in memory — the same bytes the Signature Generator hashes.
     With the single shared SHA core it serialises with the other
     stages; a pipelined HDE gives the guard its own digest engine, so
     enrollment overlaps and only bounds the load from below. *)
  let guard = Guard.enroll_cycles cfg.guard ~resident_bytes:hashed_bytes in
  let fixed = cfg.key_setup_cycles + cfg.validation_cycles in
  let stage_cycles =
    if cfg.pipelined then max (max (max dma hash) (max keystream xor)) guard
    else dma + hash + keystream + xor + guard
  in
  let b =
    {
      dma_cycles = Int64.of_int dma;
      hash_cycles = Int64.of_int hash;
      keystream_cycles = Int64.of_int keystream;
      xor_cycles = Int64.of_int xor;
      guard_cycles = Int64.of_int guard;
      fixed_cycles = Int64.of_int fixed;
      total_cycles = Int64.of_int (stage_cycles + fixed);
    }
  in
  if Eric_telemetry.Control.is_enabled () then begin
    Eric_telemetry.Registry.inc "hde.loads_total";
    let stage name v = Eric_telemetry.Registry.set ~labels:[ ("stage", name) ] "hde.load_cycles" (Int64.to_float v) in
    stage "dma" b.dma_cycles;
    stage "hash" b.hash_cycles;
    stage "keystream" b.keystream_cycles;
    stage "xor" b.xor_cycles;
    stage "guard" b.guard_cycles;
    stage "fixed" b.fixed_cycles;
    stage "total" b.total_cycles;
    Eric_telemetry.Registry.observe "hde.load_cycles_hist" (Int64.to_float b.total_cycles)
  end;
  b

let reconstruction_cycles cfg ~reads ~attempts =
  if reads < 0 then invalid_arg "Hde.reconstruction_cycles: negative read count";
  if attempts < 1 then invalid_arg "Hde.reconstruction_cycles: attempts must be positive";
  (* Challenge sequencing runs at the same one-read-per-cycle rate the
     majority-vote key setup is budgeted at; each attempt ends with a tag
     check — two HMAC-SHA-256 passes over the short helper prefix, six
     compression blocks between them. *)
  (reads * attempts) + (attempts * 6 * cfg.sha_block_cycles)

let load_plain cfg ~image_bytes =
  if image_bytes < 0 then invalid_arg "Hde.load_plain: negative byte count";
  Int64.of_int (ceil_div image_bytes cfg.dma_bytes_per_cycle)

let pp_breakdown fmt b =
  Format.fprintf fmt
    "total %Ld cycles (dma %Ld, hash %Ld, keystream %Ld, xor %Ld, guard %Ld, fixed %Ld)"
    b.total_cycles b.dma_cycles b.hash_cycles b.keystream_cycles b.xor_cycles b.guard_cycles
    b.fixed_cycles
