type mechanism =
  | Off
  | Scrub of { interval_cycles : int }
  | Fetch_check
  | Fetch_and_scrub of { interval_cycles : int }

type config = {
  mechanism : mechanism;
  granule_bytes : int;
  hash_granule_cycles : int;
  compare_cycles : int;
}

let default mechanism =
  { mechanism; granule_bytes = 64; hash_granule_cycles = 65; compare_cycles = 4 }

let disabled = default Off
let scrub ~interval_cycles = default (Scrub { interval_cycles })
let fetch_check = default Fetch_check
let fetch_and_scrub ~interval_cycles = default (Fetch_and_scrub { interval_cycles })

let scrub_interval cfg =
  match cfg.mechanism with
  | Scrub { interval_cycles } | Fetch_and_scrub { interval_cycles } -> Some interval_cycles
  | Off | Fetch_check -> None

let validate cfg =
  if cfg.granule_bytes <= 0 then Error "guard granule_bytes must be positive"
  else if cfg.hash_granule_cycles < 0 || cfg.compare_cycles < 0 then
    Error "guard cycle costs must be non-negative"
  else
    match scrub_interval cfg with
    | Some i when i <= 0 -> Error "guard scrub interval must be positive"
    | Some _ | None -> Ok cfg

let enabled cfg = cfg.mechanism <> Off
let scrubs cfg = scrub_interval cfg <> None

let fetch_checked cfg =
  match cfg.mechanism with
  | Fetch_check | Fetch_and_scrub _ -> true
  | Off | Scrub _ -> false

let ceil_div a b = (a + b - 1) / b

let granules cfg ~bytes =
  if bytes < 0 then invalid_arg "Guard.granules: negative byte count";
  ceil_div bytes cfg.granule_bytes

let enroll_cycles cfg ~resident_bytes =
  if enabled cfg then granules cfg ~bytes:resident_bytes * cfg.hash_granule_cycles else 0

let scrub_pass_cycles cfg ~resident_bytes =
  if scrubs cfg then
    granules cfg ~bytes:resident_bytes * (cfg.hash_granule_cycles + cfg.compare_cycles)
  else 0

let fetch_check_cycles cfg =
  if fetch_checked cfg then cfg.hash_granule_cycles + cfg.compare_cycles else 0

let overhead_rate cfg ~resident_bytes =
  match scrub_interval cfg with
  | None -> 0.0
  | Some interval ->
    float_of_int (scrub_pass_cycles cfg ~resident_bytes) /. float_of_int interval

let mechanism_name = function
  | Off -> "off"
  | Scrub { interval_cycles } -> Printf.sprintf "scrub:%d" interval_cycles
  | Fetch_check -> "fetch"
  | Fetch_and_scrub { interval_cycles } -> Printf.sprintf "fetch+scrub:%d" interval_cycles

let mechanism_of_string s =
  let interval_of prefix rest =
    match int_of_string_opt rest with
    | Some i when i > 0 -> Ok i
    | Some _ | None ->
      Error (Printf.sprintf "%s wants a positive cycle interval, got %S" prefix rest)
  in
  match String.split_on_char ':' s with
  | [ "off" ] -> Ok Off
  | [ "fetch" ] -> Ok Fetch_check
  | [ "scrub"; n ] ->
    Result.map (fun interval_cycles -> Scrub { interval_cycles }) (interval_of "scrub" n)
  | [ "fetch+scrub"; n ] ->
    Result.map
      (fun interval_cycles -> Fetch_and_scrub { interval_cycles })
      (interval_of "fetch+scrub" n)
  | _ ->
    Error
      (Printf.sprintf
         "unknown guard mechanism %S (expected off | scrub:CYCLES | fetch | fetch+scrub:CYCLES)"
         s)

let pp_mechanism fmt m = Format.pp_print_string fmt (mechanism_name m)
