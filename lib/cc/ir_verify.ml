open Ir
module Diag = Eric_lint.Diag
module Iset = Set.Make (Int)

let loc ~func ~block ?index () = Diag.Ir_loc { func; block; index }

(* ------------------------------------------------------------------ *)
(* CFG integrity                                                        *)
(* ------------------------------------------------------------------ *)

let cfg_checks (f : func) =
  let fn = f.f_name in
  match f.f_blocks with
  | [] -> [ Diag.errorf ~check:"ir.cfg.empty" "function %s has no basic blocks" fn ]
  | entry :: _ ->
    let labels = Hashtbl.create 16 in
    let dups =
      List.filter_map
        (fun b ->
          if Hashtbl.mem labels b.b_label then
            Some
              (Diag.errorf ~loc:(loc ~func:fn ~block:b.b_label ()) ~check:"ir.cfg.duplicate-label"
                 "label L%d defined by more than one block" b.b_label)
          else begin
            Hashtbl.replace labels b.b_label b;
            None
          end)
        f.f_blocks
    in
    let unresolved =
      List.concat_map
        (fun b ->
          List.filter_map
            (fun target ->
              if Hashtbl.mem labels target then None
              else
                Some
                  (Diag.errorf ~loc:(loc ~func:fn ~block:b.b_label ())
                     ~check:"ir.cfg.unresolved-label" "terminator targets L%d, which no block defines"
                     target))
            (successors b.term))
        f.f_blocks
    in
    let reachable = Hashtbl.create 16 in
    let rec visit l =
      if not (Hashtbl.mem reachable l) then begin
        Hashtbl.replace reachable l ();
        match Hashtbl.find_opt labels l with
        | Some b -> List.iter visit (successors b.term)
        | None -> ()
      end
    in
    visit entry.b_label;
    let unreachable =
      List.filter_map
        (fun b ->
          if Hashtbl.mem reachable b.b_label then None
          else
            Some
              (Diag.notef ~loc:(loc ~func:fn ~block:b.b_label ()) ~check:"ir.cfg.unreachable-block"
                 "block L%d is unreachable from the entry" b.b_label))
        f.f_blocks
    in
    dups @ unresolved @ unreachable

(* ------------------------------------------------------------------ *)
(* Temps, slots, calls                                                  *)
(* ------------------------------------------------------------------ *)

let instr_temps i = (match def_of i with Some d -> [ d ] | None -> []) @ uses_of i

let local_checks (p : program) (f : func) =
  let fn = f.f_name in
  let slot_ids = List.map fst f.f_slots in
  let sig_of = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace sig_of g.f_name (List.length g.f_params)) p.p_funcs;
  let check_temp ~loc t =
    if t < 0 || t >= f.f_temp_count then
      Some
        (Diag.errorf ~loc ~check:"ir.temp.out-of-range" "t%d outside [0, %d)" t f.f_temp_count)
    else None
  in
  let param_diags =
    List.filter_map (fun t -> check_temp ~loc:(loc ~func:fn ~block:(-1) ()) t) f.f_params
  in
  let block_diags =
    List.concat_map
      (fun b ->
        let body_diags =
          List.concat (List.mapi
            (fun i instr ->
              let at = loc ~func:fn ~block:b.b_label ~index:i () in
              let temp_diags = List.filter_map (check_temp ~loc:at) (instr_temps instr) in
              let extra =
                match instr with
                | Addr_local (_, slot) when not (List.mem slot slot_ids) ->
                  [ Diag.errorf ~loc:at ~check:"ir.slot.unresolved"
                      "&slot%d: function declares no such frame slot" slot ]
                | Call (_, callee, args) -> (
                  match Hashtbl.find_opt sig_of callee with
                  | None ->
                    [ Diag.errorf ~loc:at ~check:"ir.call.unknown"
                        "call to %s, which is not a function of the program" callee ]
                  | Some arity when arity <> List.length args ->
                    [ Diag.errorf ~loc:at ~check:"ir.call.arity"
                        "%s takes %d argument%s, called with %d" callee arity
                        (if arity = 1 then "" else "s")
                        (List.length args) ]
                  | Some _ -> [])
                | _ -> []
              in
              temp_diags @ extra)
            b.body)
        in
        let term_diags =
          List.filter_map (check_temp ~loc:(loc ~func:fn ~block:b.b_label ())) (term_uses b.term)
        in
        body_diags @ term_diags)
      f.f_blocks
  in
  param_diags @ block_diags

(* ------------------------------------------------------------------ *)
(* Def-before-use dataflow                                              *)
(* ------------------------------------------------------------------ *)

(* Forward must-define analysis: a temp is definitely assigned at a point
   when every path from the entry writes it first.  Reads of temps that
   are written somewhere but not on every incoming path are warnings
   (MiniC, like C, allows reading an uninitialised local); reads of temps
   no instruction ever writes are errors.  The fixpoint itself is the
   {!Ir_dataflow.Must_define} instance of the shared worklist solver. *)
let dataflow_checks (f : func) =
  match f.f_blocks with
  | [] -> []
  | entry :: _ ->
    let fn = f.f_name in
    let defined_anywhere =
      List.fold_left
        (fun acc b ->
          List.fold_left
            (fun acc i -> match def_of i with Some d -> Iset.add d acc | None -> acc)
            acc b.body)
        (Iset.of_list f.f_params) f.f_blocks
    in
    let fg, solved = Ir_dataflow.must_define f in
    let in_of i =
      match solved.Ir_dataflow.Must_solver.input.(i) with
      | Ir_dataflow.Must_define.Defined s ->
        Iset.of_list (Ir_dataflow.Iset.elements s)
      | Ir_dataflow.Must_define.All -> defined_anywhere (* unreachable: unconstrained *)
    in
    (* Use-checks cover only reachable blocks: lowering's dead join blocks
       (already noted by [ir.cfg.unreachable-block]) have no incoming path
       to constrain what is defined, so checking them would be noise. *)
    let labels = Hashtbl.create 16 in
    List.iter (fun b -> Hashtbl.replace labels b.b_label b) f.f_blocks;
    let reachable = Hashtbl.create 16 in
    let rec visit l =
      if not (Hashtbl.mem reachable l) then begin
        Hashtbl.replace reachable l ();
        match Hashtbl.find_opt labels l with
        | Some b -> List.iter visit (successors b.term)
        | None -> ()
      end
    in
    visit entry.b_label;
    let diags = ref [] in
    let reported = Hashtbl.create 8 in
    let check_use ~loc_ t defined =
      if not (Iset.mem t defined) && not (Hashtbl.mem reported t) then begin
        Hashtbl.replace reported t ();
        if Iset.mem t defined_anywhere then
          diags :=
            Diag.warningf ~loc:loc_ ~check:"ir.temp.maybe-undef"
              "t%d may be read before any assignment on some path" t
            :: !diags
        else
          diags :=
            Diag.errorf ~loc:loc_ ~check:"ir.temp.undef" "t%d is read but never assigned" t
            :: !diags
      end
    in
    Array.iteri
      (fun i b ->
        if Hashtbl.mem reachable b.b_label then begin
          let defined = ref (in_of i) in
          List.iteri
            (fun j instr ->
              let at = loc ~func:fn ~block:b.b_label ~index:j () in
              List.iter (fun t -> check_use ~loc_:at t !defined) (uses_of instr);
              match def_of instr with
              | Some d -> defined := Iset.add d !defined
              | None -> ())
            b.body;
          List.iter
            (fun t -> check_use ~loc_:(loc ~func:fn ~block:b.b_label ()) t !defined)
            (term_uses b.term)
        end)
      fg.Ir_dataflow.fg_blocks;
    List.rev !diags

let verify_func p f = Diag.sort (cfg_checks f @ local_checks p f @ dataflow_checks f)

let verify (p : program) =
  Eric_telemetry.Span.with_ ~cat:"lint" ~name:"lint.ir_verify" @@ fun () ->
  List.concat_map (verify_func p) p.p_funcs

let errors ds = List.filter (fun d -> d.Diag.severity = Diag.Error) ds
