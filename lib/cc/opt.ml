open Ir

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let eval_binop op a b =
  let open Int64 in
  let bool_ c = if c then 1L else 0L in
  match op with
  | Add -> Some (add a b)
  | Sub -> Some (sub a b)
  | Mul -> Some (mul a b)
  | Div -> if b = 0L then None else Some (div a b)
  | Rem -> if b = 0L then None else Some (rem a b)
  | And -> Some (logand a b)
  | Or -> Some (logor a b)
  | Xor -> Some (logxor a b)
  | Shl -> Some (shift_left a (to_int (logand b 63L)))
  | Shr -> Some (shift_right a (to_int (logand b 63L)))
  | Slt -> Some (bool_ (compare a b < 0))
  | Sle -> Some (bool_ (compare a b <= 0))
  | Sgt -> Some (bool_ (compare a b > 0))
  | Sge -> Some (bool_ (compare a b >= 0))
  | Seq -> Some (bool_ (equal a b))
  | Sne -> Some (bool_ (not (equal a b)))

(* Algebraic identities that rewrite a Bin into a Move. *)
let identity op x y =
  match (op, x, y) with
  | Add, v, Imm 0L | Add, Imm 0L, v -> Some v
  | Sub, v, Imm 0L -> Some v
  | Mul, v, Imm 1L | Mul, Imm 1L, v -> Some v
  | Mul, _, Imm 0L | Mul, Imm 0L, _ -> Some (Imm 0L)
  | Div, v, Imm 1L -> Some v
  | And, v, Imm -1L | And, Imm -1L, v -> Some v
  | And, _, Imm 0L | And, Imm 0L, _ -> Some (Imm 0L)
  | Or, v, Imm 0L | Or, Imm 0L, v -> Some v
  | Xor, v, Imm 0L | Xor, Imm 0L, v -> Some v
  | (Shl | Shr), v, Imm 0L -> Some v
  | _ -> None

let power_of_two v =
  if Int64.compare v 1L > 0 && Int64.logand v (Int64.sub v 1L) = 0L then begin
    let rec log2 v acc = if v = 1L then acc else log2 (Int64.shift_right_logical v 1) (acc + 1) in
    Some (log2 v 0)
  end
  else None

(* Strength reduction: multiplication by a power of two becomes a shift
   (the in-order core's shifter is single-cycle; its multiplier is not). *)
let strength_reduce instr =
  match instr with
  | Bin (Mul, d, v, Imm c) | Bin (Mul, d, Imm c, v) -> (
    match power_of_two c with
    | Some k -> Some (Bin (Shl, d, v, Imm (Int64.of_int k)))
    | None -> None)
  | _ -> None

let const_fold (f : func) =
  let changed = ref false in
  List.iter
    (fun b ->
      b.body <-
        List.map
          (fun i ->
            match i with
            | Bin (op, d, Imm a, Imm bv) -> (
              match eval_binop op a bv with
              | Some r ->
                changed := true;
                Move (d, Imm r)
              | None -> i)
            | Bin (op, d, x, y) -> (
              match identity op x y with
              | Some v ->
                changed := true;
                Move (d, v)
              | None -> (
                match strength_reduce i with
                | Some i' ->
                  changed := true;
                  i'
                | None -> i))
            | _ -> i)
          b.body)
    f.f_blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Block-local copy propagation                                        *)
(* ------------------------------------------------------------------ *)

let copy_prop (f : func) =
  let changed = ref false in
  let prop_block b =
    let env : (temp, value) Hashtbl.t = Hashtbl.create 16 in
    let resolve v =
      match v with
      | Temp t -> (
        match Hashtbl.find_opt env t with
        | Some v' ->
          changed := true;
          v'
        | None -> v)
      | Imm _ -> v
    in
    let kill d =
      Hashtbl.remove env d;
      (* Any mapping whose value is the redefined temp is now stale. *)
      let stale =
        Hashtbl.fold (fun k v acc -> if v = Temp d then k :: acc else acc) env []
      in
      List.iter (Hashtbl.remove env) stale
    in
    b.body <-
      List.map
        (fun i ->
          let i' =
            match i with
            | Move (d, v) -> Move (d, resolve v)
            | Bin (op, d, a, bv) -> Bin (op, d, resolve a, resolve bv)
            | Load (w, d, a) -> Load (w, d, resolve a)
            | Store (w, a, s) -> Store (w, resolve a, resolve s)
            | Call (d, name, args) -> Call (d, name, List.map resolve args)
            | Write (a, n) -> Write (resolve a, resolve n)
            | Exit v -> Exit (resolve v)
            | Addr_global _ | Addr_local _ | Counter _ -> i
          in
          (match def_of i' with
          | Some d ->
            kill d;
            (match i' with Move (d, v) when v <> Temp d -> Hashtbl.replace env d v | _ -> ())
          | None -> ());
          i')
        b.body;
    b.term <-
      (match b.term with
      | Ret (Some v) -> Ret (Some (resolve v))
      | Br (v, a, bl) -> Br (resolve v, a, bl)
      | (Ret None | Jmp _) as t -> t)
  in
  List.iter prop_block f.f_blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Block-local common-subexpression elimination                        *)
(* ------------------------------------------------------------------ *)

type cse_key =
  | K_bin of binop * value * value
  | K_addr_global of string
  | K_addr_local of int

let commutative = function
  | Add | Mul | And | Or | Xor | Seq | Sne -> true
  | Sub | Div | Rem | Shl | Shr | Slt | Sle | Sgt | Sge -> false

let cse_key_of = function
  | Bin (op, _, a, b) ->
    let a, b = if commutative op && compare a b > 0 then (b, a) else (a, b) in
    Some (K_bin (op, a, b))
  | Addr_global (_, sym) -> Some (K_addr_global sym)
  | Addr_local (_, slot) -> Some (K_addr_local slot)
  | Move _ | Load _ | Store _ | Call _ | Write _ | Exit _ | Counter _ -> None

let key_mentions t = function
  | K_bin (_, a, b) -> a = Temp t || b = Temp t
  | K_addr_global _ | K_addr_local _ -> false

let cse (f : func) =
  let changed = ref false in
  let run_block b =
    let available : (cse_key, temp) Hashtbl.t = Hashtbl.create 16 in
    let kill d =
      let stale =
        Hashtbl.fold
          (fun k v acc -> if v = d || key_mentions d k then k :: acc else acc)
          available []
      in
      List.iter (Hashtbl.remove available) stale
    in
    b.body <-
      List.map
        (fun i ->
          let i' =
            match cse_key_of i with
            | Some key -> (
              match (Hashtbl.find_opt available key, def_of i) with
              | Some prev, Some d ->
                changed := true;
                Move (d, Temp prev)
              | _ -> i)
            | None -> i
          in
          (match def_of i' with
          | Some d -> (
            kill d;
            (* Register the original computation (not the rewritten Move) —
               unless it reads its own destination (d = d + 1): that key
               names the *old* d and must not satisfy later lookups. *)
            match (i', cse_key_of i) with
            | Move _, _ -> ()
            | _, Some key when not (key_mentions d key) -> Hashtbl.replace available key d
            | _, Some _ | _, None -> ())
          | None -> ());
          i')
        b.body
  in
  List.iter run_block f.f_blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Dead code elimination                                               *)
(* ------------------------------------------------------------------ *)

module Iset = Set.Make (Int)

let dce (f : func) =
  let changed = ref false in
  let rec sweep () =
    let used = ref Iset.empty in
    List.iter
      (fun b ->
        List.iter (fun i -> List.iter (fun t -> used := Iset.add t !used) (uses_of i)) b.body;
        List.iter (fun t -> used := Iset.add t !used) (term_uses b.term))
      f.f_blocks;
    let removed = ref false in
    List.iter
      (fun b ->
        let keep i =
          if has_side_effect i then true
          else
            match def_of i with
            | Some d when not (Iset.mem d !used) ->
              removed := true;
              false
            | Some _ | None -> true
        in
        b.body <- List.filter keep b.body)
      f.f_blocks;
    if !removed then begin
      changed := true;
      sweep ()
    end
  in
  sweep ();
  !changed

(* ------------------------------------------------------------------ *)
(* CFG simplification                                                  *)
(* ------------------------------------------------------------------ *)

let simplify_cfg (f : func) =
  let changed = ref false in
  (* Fold constant branches. *)
  List.iter
    (fun b ->
      match b.term with
      | Br (Imm v, l1, l2) ->
        changed := true;
        b.term <- Jmp (if v <> 0L then l1 else l2)
      | Br (_, l1, l2) when l1 = l2 ->
        changed := true;
        b.term <- Jmp l1
      | _ -> ())
    f.f_blocks;
  (* Thread jumps through empty forwarding blocks (never the entry). *)
  let entry_label = match f.f_blocks with b :: _ -> b.b_label | [] -> -1 in
  let forward = Hashtbl.create 8 in
  List.iter
    (fun b ->
      match (b.body, b.term) with
      | [], Jmp target when b.b_label <> entry_label && target <> b.b_label ->
        Hashtbl.replace forward b.b_label target
      | _ -> ())
    f.f_blocks;
  let rec chase seen l =
    match Hashtbl.find_opt forward l with
    | Some next when not (List.mem next seen) -> chase (l :: seen) next
    | _ -> l
  in
  let redirect l =
    let l' = chase [] l in
    if l' <> l then changed := true;
    l'
  in
  List.iter
    (fun b ->
      b.term <-
        (match b.term with
        | Jmp l -> Jmp (redirect l)
        | Br (v, a, bl) -> Br (v, redirect a, redirect bl)
        | Ret _ as t -> t))
    f.f_blocks;
  (* Drop unreachable blocks. *)
  let by_label = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace by_label b.b_label b) f.f_blocks;
  let reachable = Hashtbl.create 16 in
  let rec visit l =
    if not (Hashtbl.mem reachable l) then begin
      Hashtbl.replace reachable l ();
      match Hashtbl.find_opt by_label l with
      | Some b -> List.iter visit (successors b.term)
      | None -> ()
    end
  in
  visit entry_label;
  let before = List.length f.f_blocks in
  f.f_blocks <- List.filter (fun b -> Hashtbl.mem reachable b.b_label) f.f_blocks;
  if List.length f.f_blocks <> before then changed := true;
  !changed

let reachable_functions (p : program) ~entry =
  let by_name = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace by_name f.f_name f) p.p_funcs;
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      match Hashtbl.find_opt by_name name with
      | None -> () (* intrinsic *)
      | Some f ->
        List.iter
          (fun b ->
            List.iter (function Call (_, callee, _) -> visit callee | _ -> ()) b.body)
          f.f_blocks
    end
  in
  visit entry;
  List.filter (fun f -> Hashtbl.mem seen f.f_name) p.p_funcs

let run ?(check = fun (_ : func) -> ()) (p : program) =
  let timed name pass f = Eric_telemetry.Span.with_ ~cat:"cc" ~name (fun () -> pass f) in
  let pass_pipeline f =
    let c1 = timed "cc.opt.const_fold" const_fold f in
    let c2 = timed "cc.opt.copy_prop" copy_prop f in
    let c3 = timed "cc.opt.cse" cse f in
    let c4 = timed "cc.opt.dce" dce f in
    let c5 = timed "cc.opt.simplify_cfg" simplify_cfg f in
    c1 || c2 || c3 || c4 || c5
  in
  List.iter
    (fun f ->
      let budget = ref 10 in
      let continue_ = ref true in
      while !continue_ && !budget > 0 do
        continue_ := pass_pipeline f;
        check f;
        decr budget
      done)
    p.p_funcs
