type transform = {
  t_tag : string;
  t_apply : Ir.program -> Ir.program;
}

type options = {
  optimize : bool;
  compress : bool;
  include_prelude : bool;
  verify_ir : bool;
  transform : transform option;
}

let default_options =
  { optimize = true;
    compress = true;
    include_prelude = true;
    verify_ir = true;
    transform = None }

let prelude =
  {|
// MiniC runtime: console output over the __write intrinsic.

void print_char(int c) {
  char b[1];
  b[0] = c;
  __write(b, 1);
}

void print_str(char *s) {
  int n = 0;
  while (s[n] != 0) { n = n + 1; }
  __write(s, n);
}

void print_int(int x) {
  char buf[24];
  int i = 24;
  int neg = 0;
  int v = x;
  if (v < 0) { neg = 1; } else { v = 0 - v; }
  if (v == 0) { i = i - 1; buf[i] = '0'; }
  while (v != 0) {
    i = i - 1;
    buf[i] = '0' - (v % 10);
    v = v / 10;
  }
  if (neg) { i = i - 1; buf[i] = '-'; }
  __write(buf + i, 24 - i);
}

void println_int(int x) {
  print_int(x);
  print_char(10);
}

void println_str(char *s) {
  print_str(s);
  print_char(10);
}

void exit(int code) {
  __exit(code);
}

// String and memory helpers (linker GC drops whatever a program never
// calls, so carrying them costs nothing).

int strlen(char *s) {
  int n = 0;
  while (s[n] != 0) { n++; }
  return n;
}

int strcmp(char *a, char *b) {
  int i = 0;
  while (a[i] != 0 && a[i] == b[i]) { i++; }
  return a[i] - b[i];
}

void strcpy(char *dst, char *src) {
  int i = 0;
  while (src[i] != 0) {
    dst[i] = src[i];
    i++;
  }
  dst[i] = 0;
}

void memcpy(char *dst, char *src, int n) {
  for (int i = 0; i < n; i++) { dst[i] = src[i]; }
}

void memset(char *dst, int value, int n) {
  for (int i = 0; i < n; i++) { dst[i] = value; }
}

int memcmp(char *a, char *b, int n) {
  for (int i = 0; i < n; i++) {
    if (a[i] != b[i]) { return a[i] - b[i]; }
  }
  return 0;
}
|}

let span name f = Eric_telemetry.Span.with_ ~cat:"cc" ~name f

(* Internal: carries error-severity verifier findings out of the pass
   pipeline to the driver's result type. *)
exception Ir_invalid of string * Eric_lint.Diag.t list

let fail_on_errors ~stage diags =
  match Ir_verify.errors diags with
  | [] -> ()
  | errs -> raise (Ir_invalid (stage, errs))

let ir_invalid_message stage errs =
  Format.asprintf "internal error: IR verification failed after %s:@\n%a" stage
    (Format.pp_print_list ~pp_sep:Format.pp_print_newline Eric_lint.Diag.pp)
    errs

let compile_to_ir ?(options = default_options) source =
  let full = if options.include_prelude then prelude ^ source else source in
  let ( let* ) = Result.bind in
  let* ast = Parser.parse full in
  let* tast = span "cc.typecheck" (fun () -> Typecheck.check ast) in
  try
    let ir = span "cc.lower" (fun () -> Lower.lower tast) in
    if options.verify_ir then fail_on_errors ~stage:"lowering" (Ir_verify.verify ir);
    if options.optimize then begin
      let check =
        if options.verify_ir then fun f ->
          fail_on_errors ~stage:"optimisation" (Ir_verify.verify_func ir f)
        else fun _ -> ()
      in
      span "cc.opt" (fun () -> Opt.run ~check ir);
      if options.verify_ir then fail_on_errors ~stage:"optimisation" (Ir_verify.verify ir)
    end;
    (* Transforms (e.g. the lib/obf obfuscation pipeline) run after the
       optimiser has converged and are never followed by another Opt.run,
       so opaque predicates and encoded arithmetic survive to codegen. *)
    let ir =
      match options.transform with
      | None -> ir
      | Some t ->
        let ir = t.t_apply ir in
        if options.verify_ir then
          fail_on_errors ~stage:("transform " ^ t.t_tag) (Ir_verify.verify ir);
        ir
    in
    Ok ir
  with Ir_invalid (stage, errs) -> Error (ir_invalid_message stage errs)

let gen_input ir =
  let ir = { ir with Ir.p_funcs = Opt.reachable_functions ir ~entry:"main" } in
  span "cc.codegen" (fun () -> Codegen.gen_program ir)

let compile_to_assembly ?(options = default_options) source =
  let ( let* ) = Result.bind in
  let* ir = compile_to_ir ~options source in
  if not (List.exists (fun f -> f.Ir.f_name = "main") ir.Ir.p_funcs) then
    Error "program has no main function"
  else Ok (Format.asprintf "%a" Eric_rv.Assemble.pp_input (gen_input ir))

let compile ?(options = default_options) source =
  span "cc.compile" (fun () ->
      let ( let* ) = Result.bind in
      let* ir = compile_to_ir ~options source in
      if not (List.exists (fun f -> f.Ir.f_name = "main") ir.Ir.p_funcs) then
        Error "program has no main function"
      else
        (* Linker-style GC happens in gen_input: functions main never reaches
           (e.g. unused runtime-prelude helpers) are dropped. *)
        let input = gen_input ir in
        span "cc.assemble" (fun () ->
            Eric_rv.Assemble.assemble ~compress:options.compress input))

let compile_exn ?options source =
  match compile ?options source with
  | Ok image -> image
  | Error msg -> failwith ("compile error: " ^ msg)
