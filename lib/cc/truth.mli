(** Compiler ground truth for attacker scoring, exported with symbol
    names attached.  The structural facts themselves (code parcels,
    function entries, branch targets, call edges, indirect sites) are
    {!Eric_lint.Leakage.truth_of} applied to the compiled image; this
    module pairs them with the function symbol table the compiler
    emitted and serialises the bundle for bench records and external
    tooling. *)

type t = {
  functions : (string * int) list;
      (** function symbols sorted by text offset; locals ([.L*]) excluded *)
  truth : Eric_lint.Leakage.truth;
}

val of_image : Eric_rv.Program.t -> t

val restrict : keep:(int -> bool) -> t -> t
(** Drop every structural fact at a text offset [keep] rejects; a call
    edge survives only if both endpoints do.  Obfuscating transforms use
    this to subtract their own decoy code from the ground truth, so an
    attacker is graded against what the original program actually
    contains rather than against the planted noise. *)

val to_json : t -> Eric_telemetry.Json.t
