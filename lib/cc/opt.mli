(** IR optimisation passes (the compiler's -O1): constant folding with
    algebraic identities, block-local copy propagation, global dead-code
    elimination, and CFG simplification (constant branches, unreachable
    blocks, jump threading).  [run] iterates the pipeline to a fixpoint. *)

val const_fold : Ir.func -> bool
(** Each pass returns [true] when it changed the function. *)

val copy_prop : Ir.func -> bool

val cse : Ir.func -> bool
(** Block-local common-subexpression elimination over pure instructions
    (arithmetic and address materialisation); typical win: repeated
    array-address computations inside a loop body. *)

val dce : Ir.func -> bool
val simplify_cfg : Ir.func -> bool

val run : ?check:(Ir.func -> unit) -> Ir.program -> unit
(** Mutates the program in place.  [check] is invoked on each function
    after every pass-pipeline iteration (the {!Driver} hooks the IR
    verifier in here); it may raise to abort the compilation. *)

val reachable_functions : Ir.program -> entry:string -> Ir.func list
(** The functions transitively callable from [entry], in original order —
    the linker-GC view that lets the runtime prelude carry helpers without
    bloating programs that never call them. *)
