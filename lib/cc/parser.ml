open Lexer

exception Parse_error of string * Ast.pos

type state = { mutable toks : loc_token list }

let current st = match st.toks with t :: _ -> t | [] -> assert false

let error st msg = raise (Parse_error (msg, (current st).pos))

let advance st = match st.toks with _ :: rest when rest <> [] -> st.toks <- rest | _ -> ()

let accept st tok =
  if (current st).tok = tok then begin
    advance st;
    true
  end
  else false

let expect st tok =
  if not (accept st tok) then
    error st (Printf.sprintf "expected %s, found %s" (token_name tok) (token_name (current st).tok))

let expect_ident st =
  match (current st).tok with
  | IDENT name ->
    advance st;
    name
  | t -> error st (Printf.sprintf "expected identifier, found %s" (token_name t))

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let parse_base_type st =
  match (current st).tok with
  | KW_INT -> advance st; Some Ast.T_int
  | KW_CHAR -> advance st; Some Ast.T_char
  | KW_VOID -> advance st; Some Ast.T_void
  | _ -> None

let parse_type st =
  match parse_base_type st with
  | None -> None
  | Some base ->
    let ty = ref base in
    while accept st STAR do
      ty := Ast.T_ptr !ty
    done;
    Some !ty

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let binop_of_token = function
  | PLUS -> Some Ast.Add | MINUS -> Some Ast.Sub | STAR -> Some Ast.Mul | SLASH -> Some Ast.Div
  | PERCENT -> Some Ast.Rem | SHL -> Some Ast.Shl | SHR -> Some Ast.Shr
  | AMP -> Some Ast.Band | PIPE -> Some Ast.Bor | CARET -> Some Ast.Bxor
  | LT -> Some Ast.Lt | LE -> Some Ast.Le | GT -> Some Ast.Gt | GE -> Some Ast.Ge
  | EQEQ -> Some Ast.Eq | NEQ -> Some Ast.Ne | ANDAND -> Some Ast.Land | OROR -> Some Ast.Lor
  | _ -> None

let precedence = function
  | Ast.Lor -> 1
  | Ast.Land -> 2
  | Ast.Bor -> 3
  | Ast.Bxor -> 4
  | Ast.Band -> 5
  | Ast.Eq | Ast.Ne -> 6
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 7
  | Ast.Shl | Ast.Shr -> 8
  | Ast.Add | Ast.Sub -> 9
  | Ast.Mul | Ast.Div | Ast.Rem -> 10

let compound_ops =
  [ (PLUSEQ, Ast.Add); (MINUSEQ, Ast.Sub); (STAREQ, Ast.Mul); (SLASHEQ, Ast.Div);
    (PERCENTEQ, Ast.Rem); (AMPEQ, Ast.Band); (PIPEEQ, Ast.Bor); (CARETEQ, Ast.Bxor);
    (SHLEQ, Ast.Shl); (SHREQ, Ast.Shr) ]

let check_lvalue (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Var _ | Ast.Index _ | Ast.Unop (Ast.Deref, _) -> ()
  | _ -> raise (Parse_error ("left side is not assignable", e.Ast.epos))

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_ternary st in
  if accept st ASSIGN then begin
    let rhs = parse_assign st in
    check_lvalue lhs;
    { Ast.e = Ast.Assign (lhs, rhs); epos = lhs.Ast.epos }
  end
  else
    match List.assoc_opt (current st).tok compound_ops with
    | Some op ->
      advance st;
      let rhs = parse_assign st in
      check_lvalue lhs;
      { Ast.e = Ast.Compound (op, lhs, rhs); epos = lhs.Ast.epos }
    | None -> lhs

and parse_ternary st =
  let cond = parse_binary st 1 in
  if accept st QUESTION then begin
    let then_ = parse_expr st in
    expect st COLON;
    let else_ = parse_assign st in
    { Ast.e = Ast.Ternary (cond, then_, else_); epos = cond.Ast.epos }
  end
  else cond

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (current st).tok with
    | Some op when precedence op >= min_prec ->
      advance st;
      let rhs = parse_binary st (precedence op + 1) in
      lhs := { Ast.e = Ast.Binop (op, !lhs, rhs); epos = (!lhs).Ast.epos }
    | Some _ | None -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let pos = (current st).pos in
  match (current st).tok with
  | MINUS ->
    advance st;
    { Ast.e = Ast.Unop (Ast.Neg, parse_unary st); epos = pos }
  | BANG ->
    advance st;
    { Ast.e = Ast.Unop (Ast.Lognot, parse_unary st); epos = pos }
  | TILDE ->
    advance st;
    { Ast.e = Ast.Unop (Ast.Bitnot, parse_unary st); epos = pos }
  | STAR ->
    advance st;
    { Ast.e = Ast.Unop (Ast.Deref, parse_unary st); epos = pos }
  | AMP ->
    advance st;
    { Ast.e = Ast.Unop (Ast.Addrof, parse_unary st); epos = pos }
  | PLUSPLUS ->
    advance st;
    let lv = parse_unary st in
    check_lvalue lv;
    { Ast.e = Ast.Incr { pre = true; up = true; lvalue = lv }; epos = pos }
  | MINUSMINUS ->
    advance st;
    let lv = parse_unary st in
    check_lvalue lv;
    { Ast.e = Ast.Incr { pre = true; up = false; lvalue = lv }; epos = pos }
  | KW_SIZEOF -> (
    advance st;
    expect st LPAREN;
    match parse_type st with
    | Some ty ->
      expect st RPAREN;
      { Ast.e = Ast.Sizeof ty; epos = pos }
    | None -> error st "sizeof expects a type")
  | _ -> parse_postfix st

and parse_postfix st =
  let base = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    if accept st LBRACKET then begin
      let idx = parse_expr st in
      expect st RBRACKET;
      base := { Ast.e = Ast.Index (!base, idx); epos = (!base).Ast.epos }
    end
    else if accept st PLUSPLUS then begin
      check_lvalue !base;
      base := { Ast.e = Ast.Incr { pre = false; up = true; lvalue = !base }; epos = (!base).Ast.epos }
    end
    else if accept st MINUSMINUS then begin
      check_lvalue !base;
      base := { Ast.e = Ast.Incr { pre = false; up = false; lvalue = !base }; epos = (!base).Ast.epos }
    end
    else continue_ := false
  done;
  !base

and parse_primary st =
  let pos = (current st).pos in
  match (current st).tok with
  | INT_LIT v ->
    advance st;
    { Ast.e = Ast.Int_lit v; epos = pos }
  | STR_LIT s ->
    advance st;
    { Ast.e = Ast.Str_lit s; epos = pos }
  | IDENT name ->
    advance st;
    if accept st LPAREN then begin
      let args = ref [] in
      if not (accept st RPAREN) then begin
        let rec args_loop () =
          args := parse_expr st :: !args;
          if accept st COMMA then args_loop () else expect st RPAREN
        in
        args_loop ()
      end;
      { Ast.e = Ast.Call (name, List.rev !args); epos = pos }
    end
    else { Ast.e = Ast.Var name; epos = pos }
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN;
    e
  | t -> error st (Printf.sprintf "expected expression, found %s" (token_name t))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt st : Ast.stmt =
  let pos = (current st).pos in
  match (current st).tok with
  | LBRACE ->
    advance st;
    let body = ref [] in
    while not (accept st RBRACE) do
      body := parse_stmt st :: !body
    done;
    { Ast.s = Ast.S_block (List.rev !body); spos = pos }
  | KW_IF ->
    advance st;
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    let then_ = parse_stmt st in
    let else_ = if accept st KW_ELSE then Some (parse_stmt st) else None in
    { Ast.s = Ast.S_if (cond, then_, else_); spos = pos }
  | KW_WHILE ->
    advance st;
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    { Ast.s = Ast.S_while (cond, parse_stmt st); spos = pos }
  | KW_DO ->
    advance st;
    let body = parse_stmt st in
    expect st KW_WHILE;
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    expect st SEMI;
    { Ast.s = Ast.S_dowhile (body, cond); spos = pos }
  | KW_FOR ->
    advance st;
    expect st LPAREN;
    let init =
      if (current st).tok = SEMI then None
      else Some (parse_decl_or_expr_stmt st ~consume_semi:false)
    in
    expect st SEMI;
    let cond = if (current st).tok = SEMI then None else Some (parse_expr st) in
    expect st SEMI;
    let incr =
      if (current st).tok = RPAREN then None
      else Some { Ast.s = Ast.S_expr (parse_expr st); spos = (current st).pos }
    in
    expect st RPAREN;
    { Ast.s = Ast.S_for (init, cond, incr, parse_stmt st); spos = pos }
  | KW_RETURN ->
    advance st;
    let v = if (current st).tok = SEMI then None else Some (parse_expr st) in
    expect st SEMI;
    { Ast.s = Ast.S_return v; spos = pos }
  | KW_BREAK ->
    advance st;
    expect st SEMI;
    { Ast.s = Ast.S_break; spos = pos }
  | KW_CONTINUE ->
    advance st;
    expect st SEMI;
    { Ast.s = Ast.S_continue; spos = pos }
  | _ -> parse_decl_or_expr_stmt st ~consume_semi:true

and parse_decl_or_expr_stmt st ~consume_semi : Ast.stmt =
  let pos = (current st).pos in
  match parse_type st with
  | Some ty ->
    let name = expect_ident st in
    let array =
      if accept st LBRACKET then begin
        match (current st).tok with
        | INT_LIT n ->
          advance st;
          expect st RBRACKET;
          Some (Int64.to_int n)
        | t -> error st (Printf.sprintf "expected array length, found %s" (token_name t))
      end
      else None
    in
    let init = if accept st ASSIGN then Some (parse_expr st) else None in
    if consume_semi then expect st SEMI;
    { Ast.s = Ast.S_decl (ty, name, array, init); spos = pos }
  | None ->
    let e = parse_expr st in
    if consume_semi then expect st SEMI;
    { Ast.s = Ast.S_expr e; spos = pos }

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_global_init st =
  if accept st ASSIGN then begin
    match (current st).tok with
    | STR_LIT s ->
      advance st;
      Some (Ast.G_string s)
    | LBRACE ->
      advance st;
      let items = ref [] in
      let rec items_loop () =
        match (current st).tok with
        | INT_LIT v ->
          advance st;
          items := v :: !items;
          if accept st COMMA then items_loop () else expect st RBRACE
        | MINUS ->
          advance st;
          (match (current st).tok with
          | INT_LIT v ->
            advance st;
            items := Int64.neg v :: !items;
            if accept st COMMA then items_loop () else expect st RBRACE
          | t -> error st (Printf.sprintf "expected integer, found %s" (token_name t)))
        | t -> error st (Printf.sprintf "expected integer, found %s" (token_name t))
      in
      items_loop ();
      Some (Ast.G_array (List.rev !items))
    | INT_LIT v ->
      advance st;
      Some (Ast.G_scalar v)
    | MINUS ->
      advance st;
      (match (current st).tok with
      | INT_LIT v ->
        advance st;
        Some (Ast.G_scalar (Int64.neg v))
      | t -> error st (Printf.sprintf "expected integer, found %s" (token_name t)))
    | t -> error st (Printf.sprintf "expected global initialiser, found %s" (token_name t))
  end
  else None

let parse_decl st : Ast.decl =
  let pos = (current st).pos in
  match parse_type st with
  | None ->
    error st (Printf.sprintf "expected declaration, found %s" (token_name (current st).tok))
  | Some ty ->
    let name = expect_ident st in
    if accept st LPAREN then begin
      (* function *)
      let params = ref [] in
      if not (accept st RPAREN) then begin
        let rec params_loop () =
          match parse_type st with
          | None -> error st "expected parameter type"
          | Some pty ->
            let pname = expect_ident st in
            params := (pty, pname) :: !params;
            if accept st COMMA then params_loop () else expect st RPAREN
        in
        params_loop ()
      end;
      expect st LBRACE;
      let body = ref [] in
      while not (accept st RBRACE) do
        body := parse_stmt st :: !body
      done;
      Ast.D_func
        { f_ret = ty; f_name = name; f_params = List.rev !params; f_body = List.rev !body; f_pos = pos }
    end
    else begin
      let array =
        if accept st LBRACKET then begin
          match (current st).tok with
          | INT_LIT n ->
            advance st;
            expect st RBRACKET;
            Some (Int64.to_int n)
          | t -> error st (Printf.sprintf "expected array length, found %s" (token_name t))
        end
        else None
      in
      let init = parse_global_init st in
      expect st SEMI;
      Ast.D_global { g_ty = ty; g_name = name; g_array = array; g_init = init; g_pos = pos }
    end

let parse_program st =
  let decls = ref [] in
  while (current st).tok <> EOF do
    decls := parse_decl st :: !decls
  done;
  List.rev !decls

let parse_exn src =
  let toks = Eric_telemetry.Span.with_ ~cat:"cc" ~name:"cc.lex" (fun () -> Lexer.tokenize src) in
  let st = { toks } in
  Eric_telemetry.Span.with_ ~cat:"cc" ~name:"cc.parse" (fun () -> parse_program st)

let parse src =
  match parse_exn src with
  | prog -> Ok prog
  | exception Lexer.Lex_error (msg, pos) ->
    Error (Format.asprintf "%a: %s" Ast.pp_pos pos msg)
  | exception Parse_error (msg, pos) -> Error (Format.asprintf "%a: %s" Ast.pp_pos pos msg)
