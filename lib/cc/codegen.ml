open Eric_rv

(* Reserved scratch registers, excluded from the allocator's pools:
   t4/t5 hold reloaded spills and immediate operands, t6 addresses. *)
let scratch_a = Reg.t_ 4
let scratch_b = Reg.t_ 5
let scratch_addr = Reg.t_ 6

type ctx = {
  f : Ir.func;
  alloc : Regalloc.allocation;
  frame : int;
  slot_offsets : (int * int) list;  (** local array slot id -> sp offset *)
  spill_base : int;  (** sp offset of spill slot 0 *)
  mutable items : Assemble.item list;  (** reversed *)
}

let assignment ctx t =
  match Hashtbl.find_opt ctx.alloc.assign t with
  | Some a -> a
  | None -> Regalloc.Spill 0 (* unreferenced temp; any location works *)

let emit ctx item = ctx.items <- item :: ctx.items
let ins ctx i = emit ctx (Assemble.Ins i)

let fits12 v = v >= -2048 && v <= 2047

(* sp-relative access that tolerates frames larger than the 12-bit
   immediate (big local arrays). *)
let frame_addr ctx off k =
  if fits12 off then k Reg.sp off
  else begin
    emit ctx (Assemble.Li (scratch_addr, Int64.of_int off));
    ins ctx (Inst.R (Add, scratch_addr, Reg.sp, scratch_addr));
    k scratch_addr 0
  end

let load_spill ctx slot dst =
  frame_addr ctx (ctx.spill_base + (8 * slot)) (fun base off ->
      ins ctx (Inst.Load (Ld, dst, base, off)))

let store_spill ctx slot src =
  frame_addr ctx (ctx.spill_base + (8 * slot)) (fun base off ->
      ins ctx (Inst.Store (Sd, src, base, off)))

(* Bring a value into a register; [scratch] is used when the value is not
   already register-resident. *)
let use_value ctx v scratch =
  match v with
  | Ir.Imm 0L -> Reg.x0
  | Ir.Imm n ->
    emit ctx (Assemble.Li (scratch, n));
    scratch
  | Ir.Temp t -> (
    match assignment ctx t with
    | Regalloc.Reg r -> r
    | Regalloc.Spill slot ->
      load_spill ctx slot scratch;
      scratch)

(* Destination handling: run [k] with the register to compute into, then
   flush if the temp lives in a spill slot. *)
let def_temp ctx t k =
  match assignment ctx t with
  | Regalloc.Reg r -> k r
  | Regalloc.Spill slot ->
    k scratch_a;
    store_spill ctx slot scratch_a

let mv ctx dst src = if not (Reg.equal dst src) then ins ctx (Inst.I (Addi, dst, src, 0))

(* ------------------------------------------------------------------ *)
(* Binary operations                                                   *)
(* ------------------------------------------------------------------ *)

let imm_op : Ir.binop -> Inst.i_op option = function
  | Ir.Add -> Some Inst.Addi
  | Ir.And -> Some Inst.Andi
  | Ir.Or -> Some Inst.Ori
  | Ir.Xor -> Some Inst.Xori
  | Ir.Slt -> Some Inst.Slti
  | _ -> None

let reg_op : Ir.binop -> Inst.r_op option = function
  | Ir.Add -> Some Inst.Add
  | Ir.Sub -> Some Inst.Sub
  | Ir.Mul -> Some Inst.Mul
  | Ir.Div -> Some Inst.Div
  | Ir.Rem -> Some Inst.Rem
  | Ir.And -> Some Inst.And
  | Ir.Or -> Some Inst.Or
  | Ir.Xor -> Some Inst.Xor
  | Ir.Shl -> Some Inst.Sll
  | Ir.Shr -> Some Inst.Sra
  | Ir.Slt -> Some Inst.Slt
  | _ -> None

let gen_bin ctx op dst a b =
  let simple rop =
    let ra = use_value ctx a scratch_a in
    let rb = use_value ctx b scratch_b in
    ins ctx (Inst.R (rop, dst, ra, rb))
  in
  match op with
  | Ir.Add | Ir.And | Ir.Or | Ir.Xor | Ir.Slt -> (
    match (b, imm_op op) with
    | Ir.Imm n, Some iop when fits12 (Int64.to_int n) && Int64.equal (Int64.of_int (Int64.to_int n)) n ->
      let ra = use_value ctx a scratch_a in
      ins ctx (Inst.I (iop, dst, ra, Int64.to_int n))
    | _ -> simple (Option.get (reg_op op)))
  | Ir.Sub -> (
    match b with
    | Ir.Imm n when fits12 (Int64.to_int (Int64.neg n)) && Int64.equal (Int64.of_int (Int64.to_int n)) n ->
      let ra = use_value ctx a scratch_a in
      ins ctx (Inst.I (Addi, dst, ra, -(Int64.to_int n)))
    | _ -> simple Inst.Sub)
  | Ir.Shl | Ir.Shr -> (
    let shift_i : Inst.shift_op = if op = Ir.Shl then Slli else Srai in
    match b with
    | Ir.Imm n when Int64.compare n 0L >= 0 && Int64.compare n 63L <= 0 ->
      let ra = use_value ctx a scratch_a in
      ins ctx (Inst.Shift (shift_i, dst, ra, Int64.to_int n))
    | _ -> simple (if op = Ir.Shl then Inst.Sll else Inst.Sra))
  | Ir.Mul | Ir.Div | Ir.Rem -> simple (Option.get (reg_op op))
  | Ir.Sle ->
    (* a <= b  ==  !(b < a) *)
    let ra = use_value ctx a scratch_a in
    let rb = use_value ctx b scratch_b in
    ins ctx (Inst.R (Slt, dst, rb, ra));
    ins ctx (Inst.I (Xori, dst, dst, 1))
  | Ir.Sgt ->
    let ra = use_value ctx a scratch_a in
    let rb = use_value ctx b scratch_b in
    ins ctx (Inst.R (Slt, dst, rb, ra))
  | Ir.Sge ->
    let ra = use_value ctx a scratch_a in
    let rb = use_value ctx b scratch_b in
    ins ctx (Inst.R (Slt, dst, ra, rb));
    ins ctx (Inst.I (Xori, dst, dst, 1))
  | Ir.Seq ->
    let ra = use_value ctx a scratch_a in
    let rb = use_value ctx b scratch_b in
    if Reg.equal rb Reg.x0 then ins ctx (Inst.I (Sltiu, dst, ra, 1))
    else begin
      ins ctx (Inst.R (Xor, dst, ra, rb));
      ins ctx (Inst.I (Sltiu, dst, dst, 1))
    end
  | Ir.Sne ->
    let ra = use_value ctx a scratch_a in
    let rb = use_value ctx b scratch_b in
    if Reg.equal rb Reg.x0 then ins ctx (Inst.R (Sltu, dst, Reg.x0, ra))
    else begin
      ins ctx (Inst.R (Xor, dst, ra, rb));
      ins ctx (Inst.R (Sltu, dst, Reg.x0, dst))
    end

(* ------------------------------------------------------------------ *)
(* Instructions                                                        *)
(* ------------------------------------------------------------------ *)

let block_label fname l = Printf.sprintf ".L_%s_%d" fname l
let ret_label fname = Printf.sprintf ".L_%s_ret" fname

let gen_instr ctx (instr : Ir.instr) =
  match instr with
  | Ir.Move (d, v) ->
    def_temp ctx d (fun dst ->
        match v with
        | Ir.Imm n -> emit ctx (Assemble.Li (dst, n))
        | Ir.Temp _ ->
          let src = use_value ctx v scratch_a in
          mv ctx dst src)
  | Ir.Bin (op, d, a, b) -> def_temp ctx d (fun dst -> gen_bin ctx op dst a b)
  | Ir.Load (w, d, addr) ->
    def_temp ctx d (fun dst ->
        let ra = use_value ctx addr scratch_addr in
        ins ctx (Inst.Load ((match w with Ir.W8 -> Lbu | Ir.W64 -> Ld), dst, ra, 0)))
  | Ir.Store (w, addr, src) ->
    let rs = use_value ctx src scratch_a in
    let ra = use_value ctx addr scratch_addr in
    ins ctx (Inst.Store ((match w with Ir.W8 -> Sb | Ir.W64 -> Sd), rs, ra, 0))
  | Ir.Addr_global (d, sym) -> def_temp ctx d (fun dst -> emit ctx (Assemble.La (dst, sym)))
  | Ir.Addr_local (d, slot) ->
    def_temp ctx d (fun dst ->
        let off = List.assoc slot ctx.slot_offsets in
        if fits12 off then ins ctx (Inst.I (Addi, dst, Reg.sp, off))
        else begin
          emit ctx (Assemble.Li (dst, Int64.of_int off));
          ins ctx (Inst.R (Add, dst, Reg.sp, dst))
        end)
  | Ir.Call (dest, fname, args) ->
    List.iteri
      (fun i arg ->
        let dst = Reg.a i in
        match arg with
        | Ir.Imm n -> emit ctx (Assemble.Li (dst, n))
        | Ir.Temp _ ->
          let src = use_value ctx arg scratch_a in
          mv ctx dst src)
      args;
    emit ctx (Assemble.Jump (Reg.ra, fname));
    (match dest with
    | Some d ->
      def_temp ctx d (fun dst -> mv ctx dst (Reg.a 0))
    | None -> ())
  | Ir.Write (buf, len) ->
    (match buf with
    | Ir.Imm n -> emit ctx (Assemble.Li (Reg.a 1, n))
    | Ir.Temp _ -> mv ctx (Reg.a 1) (use_value ctx buf scratch_a));
    (match len with
    | Ir.Imm n -> emit ctx (Assemble.Li (Reg.a 2, n))
    | Ir.Temp _ -> mv ctx (Reg.a 2) (use_value ctx len scratch_b));
    emit ctx (Assemble.Li (Reg.a 0, 1L));
    emit ctx (Assemble.Li (Reg.a 7, 64L));
    ins ctx Inst.Ecall
  | Ir.Counter (d, kind) ->
    def_temp ctx d (fun dst ->
        ins ctx (Inst.Csrr (dst, match kind with Ir.C_cycles -> 0xC00 | Ir.C_instret -> 0xC02)))
  | Ir.Exit v ->
    (match v with
    | Ir.Imm n -> emit ctx (Assemble.Li (Reg.a 0, n))
    | Ir.Temp _ -> mv ctx (Reg.a 0) (use_value ctx v scratch_a));
    emit ctx (Assemble.Li (Reg.a 7, 93L));
    ins ctx Inst.Ecall

let gen_term ctx ~next_label (term : Ir.term) =
  let fname = ctx.f.Ir.f_name in
  match term with
  | Ir.Ret v ->
    (match v with
    | Some (Ir.Imm n) -> emit ctx (Assemble.Li (Reg.a 0, n))
    | Some (Ir.Temp _ as tv) -> mv ctx (Reg.a 0) (use_value ctx tv scratch_a)
    | None -> ());
    emit ctx (Assemble.Jump (Reg.x0, ret_label fname))
  | Ir.Jmp l ->
    if Some l <> next_label then emit ctx (Assemble.Jump (Reg.x0, block_label fname l))
  | Ir.Br (v, l1, l2) ->
    let r = use_value ctx v scratch_a in
    if Some l2 = next_label then
      emit ctx (Assemble.Branch (Bne, r, Reg.x0, block_label fname l1))
    else if Some l1 = next_label then
      emit ctx (Assemble.Branch (Beq, r, Reg.x0, block_label fname l2))
    else begin
      emit ctx (Assemble.Branch (Bne, r, Reg.x0, block_label fname l1));
      emit ctx (Assemble.Jump (Reg.x0, block_label fname l2))
    end

(* ------------------------------------------------------------------ *)
(* Frame layout and function emission                                  *)
(* ------------------------------------------------------------------ *)

let round16 v = (v + 15) / 16 * 16

let layout_frame (f : Ir.func) (alloc : Regalloc.allocation) =
  (* From sp upward: local array slots, spill slots, saved s-regs, ra. *)
  let slot_offsets = ref [] in
  let off = ref 0 in
  List.iter
    (fun (slot, size) ->
      slot_offsets := (slot, !off) :: !slot_offsets;
      off := !off + size)
    f.f_slots;
  let spill_base = !off in
  let save_area = 8 * (1 + List.length alloc.used_callee_saved) in
  let frame = round16 (spill_base + (8 * alloc.spill_slots) + save_area) in
  (frame, List.rev !slot_offsets, spill_base)

let frame_size f alloc =
  let frame, _, _ = layout_frame f alloc in
  frame

let adjust_sp ctx delta =
  if fits12 delta then ins ctx (Inst.I (Addi, Reg.sp, Reg.sp, delta))
  else begin
    emit ctx (Assemble.Li (scratch_addr, Int64.of_int delta));
    ins ctx (Inst.R (Add, Reg.sp, Reg.sp, scratch_addr))
  end

let save_restore ctx ~save =
  let frame = ctx.frame in
  let at i = frame - 8 - (8 * i) in
  let regs = Reg.ra :: ctx.alloc.used_callee_saved in
  List.iteri
    (fun i r ->
      frame_addr ctx (at i) (fun base off ->
          if save then ins ctx (Inst.Store (Sd, r, base, off))
          else ins ctx (Inst.Load (Ld, r, base, off))))
    regs

let gen_func (f : Ir.func) =
  let alloc =
    Eric_telemetry.Span.with_ ~cat:"cc" ~name:"cc.regalloc" (fun () -> Regalloc.allocate f)
  in
  let frame, slot_offsets, spill_base = layout_frame f alloc in
  let ctx = { f; alloc; frame; slot_offsets; spill_base; items = [] } in
  emit ctx (Assemble.Label f.f_name);
  adjust_sp ctx (-frame);
  save_restore ctx ~save:true;
  (* Move incoming arguments into their allocated homes. *)
  List.iteri
    (fun i p ->
      match assignment ctx p with
      | Regalloc.Reg r -> mv ctx r (Reg.a i)
      | Regalloc.Spill slot -> store_spill ctx slot (Reg.a i))
    f.f_params;
  let blocks = Array.of_list f.f_blocks in
  Array.iteri
    (fun i b ->
      emit ctx (Assemble.Label (block_label f.f_name b.Ir.b_label));
      List.iter (gen_instr ctx) b.Ir.body;
      let next_label =
        if i + 1 < Array.length blocks then Some blocks.(i + 1).Ir.b_label else None
      in
      gen_term ctx ~next_label b.Ir.term)
    blocks;
  emit ctx (Assemble.Label (ret_label f.f_name));
  save_restore ctx ~save:false;
  adjust_sp ctx frame;
  ins ctx (Inst.Jalr (Reg.x0, Reg.ra, 0));
  List.rev ctx.items

(* ------------------------------------------------------------------ *)
(* Whole program                                                       *)
(* ------------------------------------------------------------------ *)

let start_stub =
  [ Assemble.Label "_start";
    Assemble.Jump (Reg.ra, "main");
    (* exit(main()) *)
    Assemble.Li (Reg.a 7, 93L);
    Assemble.Ins Inst.Ecall ]

let pack_data entries =
  let buf = Buffer.create 256 in
  let symbols = ref [] in
  List.iter
    (fun (name, bytes) ->
      (* 8-byte alignment between entries keeps int globals naturally
         aligned regardless of neighbours. *)
      while Buffer.length buf mod 8 <> 0 do
        Buffer.add_char buf '\000'
      done;
      symbols := (name, Buffer.length buf) :: !symbols;
      Buffer.add_bytes buf bytes)
    entries;
  (Bytes.of_string (Buffer.contents buf), List.rev !symbols)

let gen_program (p : Ir.program) =
  let text = start_stub @ List.concat_map gen_func p.p_funcs in
  let data, data_symbols = pack_data p.p_data in
  { Assemble.text; data; data_symbols; bss_symbols = p.p_bss; entry = "_start" }
