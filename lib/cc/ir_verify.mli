(** IR well-formedness verifier, run by {!Driver} after lowering and after
    each optimisation-pass iteration (the [verify_ir] option).

    Checks, with their [Eric_lint] check ids:

    - CFG integrity: at least one block ([ir.cfg.empty]), unique labels
      ([ir.cfg.duplicate-label]), every terminator target resolves
      ([ir.cfg.unresolved-label]); unreachable blocks are a note only
      ([ir.cfg.unreachable-block]) because lowering legitimately creates
      dead join blocks that [Opt.simplify_cfg] later removes.
    - Temps: every id within [0, f_temp_count) ([ir.temp.out-of-range]);
      a temp read but never written anywhere is an error
      ([ir.temp.undef]); a read some path reaches before any write is a
      warning ([ir.temp.maybe-undef]) — legal MiniC can read an
      uninitialised local, so this mirrors a compiler's -Wmaybe-uninitialized,
      computed by forward must-define dataflow over the CFG.
    - Frame slots: [Addr_local] must name a declared slot
      ([ir.slot.unresolved]).
    - Calls: the callee must be a function of the program — intrinsics
      lower to dedicated instructions, never to [Call] —
      ([ir.call.unknown]) with matching argument count ([ir.call.arity]). *)

val verify_func : Ir.program -> Ir.func -> Eric_lint.Diag.t list
(** Diagnostics for one function ([Ir.program] supplies callee
    signatures); empty on well-formed IR. *)

val verify : Ir.program -> Eric_lint.Diag.t list
(** Every function, in program order, under a [lint.ir_verify] telemetry
    span. *)

val errors : Eric_lint.Diag.t list -> Eric_lint.Diag.t list
(** Just the error-severity subset (the ones {!Driver} turns into a
    compile failure). *)
