(** The compiler driver: MiniC source -> executable {!Eric_rv.Program.t}
    image (the role Clang plays in the paper's toolchain).

    Every compilation prepends the runtime prelude — [print_int],
    [print_char], [print_str], [println_int], [println_str] and [exit],
    written in MiniC over the [__write]/[__exit] intrinsics — so workloads
    can produce checkable output. *)

type transform = {
  t_tag : string;
      (** stable identity of the transform (passes, seed, ...); build
          caches fold it into their keys, so two transforms that can
          produce different code must never share a tag *)
  t_apply : Ir.program -> Ir.program;
      (** applied once, after the optimiser has converged; may mutate the
          argument's functions in place and/or return a program with
          added functions.  The optimiser never runs again afterwards. *)
}
(** A post-optimisation IR-to-IR rewrite hook (the lib/obf obfuscation
    pipeline plugs in here).  The driver stays ignorant of what the
    transform does; it only re-verifies the result when [verify_ir]. *)

type options = {
  optimize : bool;  (** run the IR pass pipeline (default true) *)
  compress : bool;  (** RVC compression (default true, as RV64GC implies) *)
  include_prelude : bool;  (** default true *)
  verify_ir : bool;
      (** run {!Ir_verify} after lowering, after each optimisation-pass
          iteration, and after the pipeline converges; error-severity
          findings abort the compilation as an internal-error [Error]
          (default true — verification is cheap relative to parsing) *)
  transform : transform option;  (** default [None] *)
}

val default_options : options

val prelude : string
(** The runtime's MiniC source. *)

val compile : ?options:options -> string -> (Eric_rv.Program.t, string) result
(** Source to image; errors are "line:col: message" diagnostics from the
    lexer/parser/typechecker, or assembler errors. *)

val compile_exn : ?options:options -> string -> Eric_rv.Program.t

val compile_to_ir : ?options:options -> string -> (Ir.program, string) result
(** Stop after lowering + optimisation; used by IR-level tests. *)

val compile_to_assembly : ?options:options -> string -> (string, string) result
(** The compiler's -S mode: assembly text that {!Eric_rv.Asm.assemble}
    turns into the same program [compile] would have produced. *)
