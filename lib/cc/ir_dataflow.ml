(* The IR-level instance of the linter's generic dataflow framework:
   Eric_lint.Dataflow knows nothing about Eric_cc (the dependency points
   the other way), so this module adapts an Ir.func's block CFG to the
   solver's graph shape and defines the lattices IR analyses run on. *)

module Dataflow = Eric_lint.Dataflow
module Iset = Set.Make (Int)

(* Must-define analysis lattice: which temps are written on *every* path.
   Join is set intersection, so the identity element ("no path constrains
   this yet") is the whole universe, [All]. *)
module Must_define = struct
  type t = All | Defined of Iset.t

  let bottom = All

  let join a b =
    match (a, b) with
    | All, x | x, All -> x
    | Defined u, Defined v -> Defined (Iset.inter u v)

  let equal a b =
    match (a, b) with
    | All, All -> true
    | Defined u, Defined v -> Iset.equal u v
    | _ -> false

  let pp fmt = function
    | All -> Format.pp_print_string fmt "all"
    | Defined s ->
      Format.fprintf fmt "{%s}"
        (String.concat "," (List.map string_of_int (Iset.elements s)))
end

type func_graph = {
  fg_graph : Dataflow.graph;
  fg_blocks : Ir.block array;  (** node index -> block *)
  fg_index : (Ir.label, int) Hashtbl.t;
}

let graph_of_func (f : Ir.func) =
  let fg_blocks = Array.of_list f.Ir.f_blocks in
  let fg_index = Hashtbl.create 16 in
  Array.iteri
    (fun i b ->
      if not (Hashtbl.mem fg_index b.Ir.b_label) then Hashtbl.replace fg_index b.Ir.b_label i)
    fg_blocks;
  let entry_label =
    match f.Ir.f_blocks with b :: _ -> Some b.Ir.b_label | [] -> None
  in
  let edges =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun i b ->
              List.filter_map
                (fun l ->
                  match Hashtbl.find_opt fg_index l with
                  (* The entry has no CFG predecessor: its dataflow input
                     is the boundary fact (parameters), never a join with
                     a loop edge back to the first label. *)
                  | Some j when entry_label <> Some l -> Some (i, j)
                  | _ -> None)
                (Ir.successors b.Ir.term))
            fg_blocks))
  in
  { fg_graph = Dataflow.graph_of_edges ~node_count:(Array.length fg_blocks) edges;
    fg_blocks;
    fg_index }

module Must_solver = Dataflow.Make (Must_define)

let block_defs (b : Ir.block) =
  List.fold_left
    (fun acc i -> match Ir.def_of i with Some d -> Iset.add d acc | None -> acc)
    Iset.empty b.Ir.body

let must_define (f : Ir.func) =
  (* Forward solve: in(b) = ∩ out(preds), out(b) = in(b) ∪ defs(b);
     the entry starts from the parameter set. *)
  let fg = graph_of_func f in
  let params = Iset.of_list f.Ir.f_params in
  let transfer i v =
    match v with
    | Must_define.All -> Must_define.All
    | Must_define.Defined s -> Must_define.Defined (Iset.union s (block_defs fg.fg_blocks.(i)))
  in
  let boundary =
    if Array.length fg.fg_blocks = 0 then [] else [ (0, Must_define.Defined params) ]
  in
  let solved = Must_solver.solve ~boundary ~graph:fg.fg_graph ~transfer () in
  (fg, solved)
