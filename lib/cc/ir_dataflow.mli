(** IR-level instance of the linter's generic dataflow framework
    ({!Eric_lint.Dataflow}): adapts an {!Ir.func}'s block CFG to the
    solver's graph shape and defines the lattices IR analyses use.
    The IR verifier's definite-assignment pass runs on it. *)

module Dataflow = Eric_lint.Dataflow
module Iset : Set.S with type elt = int

(** Which temps are written on {e every} path: join is set intersection,
    [All] (the join identity) means "no path constrains this yet". *)
module Must_define : sig
  type t = All | Defined of Iset.t

  include Dataflow.LATTICE with type t := t
end

type func_graph = {
  fg_graph : Dataflow.graph;
  fg_blocks : Ir.block array;  (** node index -> block, in program order *)
  fg_index : (Ir.label, int) Hashtbl.t;  (** label -> node index *)
}

val graph_of_func : Ir.func -> func_graph
(** Block-level CFG with node 0 = the entry block.  Edges into the entry
    label are dropped — the entry's input is its boundary fact, not a
    join with loop back-edges.  Terminator targets with no block are
    skipped (the verifier flags them separately). *)

module Must_solver : sig
  type result = {
    input : Must_define.t array;
    output : Must_define.t array;
    iterations : int;
  }
end

val must_define : Ir.func -> func_graph * Must_solver.result
(** Forward must-define solve from the parameter set at the entry.
    [input.(i)] is the set of temps definitely assigned when block [i]
    starts; unreachable blocks report [All] (unconstrained). *)
