(* Compiler-side ground-truth export for attacker scoring.  The leakage
   lint derives the same structural facts from the image (Eric_lint owns
   the derivation; this module cannot be its dependency), but tooling —
   bench, tests, external scripts — wants them with symbol names
   attached and serialisable, which only the compiler layer can promise:
   it is the producer of the symbol table the derivation reads. *)

module Leakage = Eric_lint.Leakage

type t = {
  functions : (string * int) list;  (** non-local text symbols, by offset *)
  truth : Leakage.truth;
}

let of_image (p : Eric_rv.Program.t) =
  let truth = Leakage.truth_of p in
  let functions =
    p.Eric_rv.Program.symbols
    |> List.filter (fun (_, off) -> Leakage.Iset.mem off truth.Leakage.t_functions)
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  { functions; truth }

let restrict ~keep t =
  let iset s = Leakage.Iset.filter keep s in
  let truth =
    { Leakage.t_code = iset t.truth.Leakage.t_code;
      t_functions = iset t.truth.Leakage.t_functions;
      t_branch_targets = iset t.truth.Leakage.t_branch_targets;
      t_call_edges =
        Leakage.Eset.filter
          (fun (src, dst) -> keep src && keep dst)
          t.truth.Leakage.t_call_edges;
      t_indirect = iset t.truth.Leakage.t_indirect }
  in
  let functions = List.filter (fun (_, off) -> keep off) t.functions in
  { functions; truth }

let to_json t =
  let module J = Eric_telemetry.Json in
  let int v = J.Num (float_of_int v) in
  let iset s = J.List (List.map int (Leakage.Iset.elements s)) in
  J.Obj
    [ ( "functions",
        J.Obj (List.map (fun (name, off) -> (name, int off)) t.functions) );
      ("code_parcels", int (Leakage.Iset.cardinal t.truth.Leakage.t_code));
      ("branch_targets", iset t.truth.Leakage.t_branch_targets);
      ( "call_edges",
        J.List
          (List.map
             (fun (s, d) -> J.List [ int s; int d ])
             (Leakage.Eset.elements t.truth.Leakage.t_call_edges)) );
      ("indirect_sites", iset t.truth.Leakage.t_indirect) ]
