(** Key-rotation campaigns.

    A rotation bumps every enrolled device to a new {!Eric.Kmu.context}
    epoch (optionally changing the derivation label too) and re-provisions
    the per-device PUF-based key — either via the out-of-band handshake
    ({!Local}, the paper's baseline) or in-band over the hostile channel
    under RSA ({!Rsa}, the paper's future-work path).  Successfully
    re-keyed devices are reactivated if they had been quarantined: a fresh
    key is a fresh start, and the next campaign decides their fate on the
    new evidence.

    Rotation touches only keys.  Re-deploying firmware after a rotation
    hits the artifact cache and re-encrypts from the cached plaintext
    without recompiling — see {!Campaign}.

    Telemetry: [fleet.rotate.runs_total],
    [fleet.rotate.rotated_total{method}], [fleet.rotate.reactivated_total],
    [fleet.rotate.failed_total]. *)

type method_ =
  | Local  (** out-of-band: read the derived key at enrolment distance *)
  | Rsa of { bits : int; seed : int64 }
      (** in-band: device encrypts its key under the source's RSA key *)

type report = {
  epoch : int;
  label : string option;  (** [None] = each device kept its label *)
  method_ : method_;
  rotated : int;
  reactivated : int;
  failed : (Eric_puf.Device.id * string) list;
}

val rotate :
  ?engine:Eric_engine.Engine.config -> ?method_:method_ -> ?label:string ->
  epoch:int -> Registry.t -> report
(** Mutates the registry in place; persist with {!Registry.save}.
    Per-device provisioning runs on the {!Eric_engine.Engine} work queue
    ([engine], default deterministic); under {!Rsa} each device draws
    handshake randomness from its own seed-and-id-derived stream, so the
    domain scheduler produces the same keys as the deterministic one. *)

val method_label : method_ -> string
val pp_report : Format.formatter -> report -> unit
