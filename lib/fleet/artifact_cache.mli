(** Content-addressed cache of prepared builds.

    Key = SHA-256 over (source text, compiler options, encryption mode —
    including selection seeds), so a campaign re-run, a rebuild for a
    rotated key epoch, or a second campaign over the same firmware all
    skip the compiler, signer and layout entirely and go straight to
    per-device personalization.

    Two tiers: an in-process table holding {!Eric.Source.prepared} values
    (full skip), and an optional directory of compiled images keyed by
    digest ([<hex>.rexe]) that survives across processes — a disk hit
    skips compilation and re-runs only the prepare step.

    Telemetry: [fleet.cache.events_total{result=hit|disk|miss}]. *)

type t

type outcome = Memory_hit | Disk_hit | Miss

val outcome_label : outcome -> string
(** ["hit"], ["disk"] or ["miss"] — the telemetry label values. *)

val create : ?dir:string -> unit -> t
(** [dir] enables the disk tier (created if missing). *)

val digest : options:Eric_cc.Driver.options -> mode:Eric.Config.mode -> string -> string
(** The cache key (lowercase hex) for a campaign input. *)

val get_or_compile :
  t ->
  ?options:Eric_cc.Driver.options ->
  mode:Eric.Config.mode ->
  string ->
  (Eric.Source.prepared * outcome, string) result

val hits : t -> int
val disk_hits : t -> int
val misses : t -> int

val lookups : t -> int
(** Total [get_or_compile] calls. *)

val hit_rate : t -> float
(** (memory + disk hits) / lookups — 0.0 before any lookup.  The number
    a long-running update service reports as its cache hit rate. *)
