(** Deliver one personalized package to one device over a lossy or
    hostile channel, retrying with exponential (simulated-time) backoff.

    Every shipment terminates in exactly one of two states — [Delivered]
    (the Validation Unit accepted an attempt) or [Quarantined] (attempts
    exhausted, the device hit the policy's signature-refusal threshold,
    or its key reconstruction failed at boot) — so a campaign can never
    silently drop a device.  Quarantine causes are a closed variant, not
    strings: long-running callers (the serve subsystem's SLO accounting)
    bucket "signature refused" vs "key reconstruction failed" vs their
    own "queue shed" without string matching.  A [Key_reconstruction_failed]
    quarantine is immediate and distinct: the package may be fine, but
    the silicon could not rebuild its key, so the cure is re-enrollment
    ({!Reenroll}), not re-shipping.

    Telemetry: [fleet.ship.attempts_total], [fleet.ship.retries_total],
    [fleet.ship.refused_total{reason}], [fleet.ship.delivered_total],
    [fleet.ship.retries_recovered_total], [fleet.ship.quarantined_total],
    [fleet.ship.backoff_ns] and the [fleet.ship.attempts] histogram. *)

type quarantine_reason =
  | Key_reconstruction_failed
      (** the device's fuzzy extractor refused at boot; re-enroll, don't re-ship *)
  | Signature_refusals of int
      (** the device refused [n] validly-signed packages — stale or hostile key *)
  | Exhausted of int  (** undeliverable after [n] attempts (transit noise won) *)
  | Integrity_faults of int
      (** the device's runtime guard faulted [n] executions in a row —
          re-shipping clean memory did not stick, so the hardware (or an
          attacker with memory access) needs investigation *)

val quarantine_label : quarantine_reason -> string
(** Stable human string, also what {!Campaign} records into
    {!Registry.status} (the registry wire format stores strings). *)

type outcome =
  | Delivered of {
      load_cycles : int64;  (** HDE ingest cycles of the accepted attempt *)
      exec : Eric_sim.Soc.result option;  (** when shipped with [~execute:true] *)
    }
  | Quarantined of { reason : quarantine_reason }

type delivery = {
  device_id : Eric_puf.Device.id;
  attempts : int;  (** total tries, including the successful one *)
  refusals : (int * Eric.Target.load_error) list;
      (** (attempt, typed refusal); render with {!Eric.Target.refusal_reason} *)
  integrity_faults : int;
      (** executions the runtime guard aborted across all attempts; a
          [Delivered] outcome with a non-zero count means re-shipping
          recovered the device *)
  backoff_ns : int64;  (** total simulated backoff *)
  wire_bytes : int;  (** serialized package size per attempt *)
  outcome : outcome;
}

val delivered : delivery -> bool
val retried : delivery -> bool
(** Delivered, but only after at least one refusal. *)

type fault_injector = attempt:int -> Eric_sim.Memory.t -> Eric_rv.Program.t -> unit
(** Corrupts device memory between load and execution — the soft-error
    model of the serve scenarios.  Called once per executing attempt
    with the attempt number, so an injector can fault some attempts and
    spare others. *)

val ship :
  ?policy:Backoff.policy ->
  ?channel:Channel.t ->
  ?execute:bool ->
  ?fuel:int ->
  ?clock:Eric_util.Sim_clock.t ->
  ?soft_errors:fault_injector ->
  build:Eric.Source.build ->
  target:Eric.Target.t ->
  unit ->
  delivery
(** [execute] (default [false]) also runs the validated program on the
    device's SoC — under the device's integrity guard
    ({!Eric.Target.run}); the default stops after HDE validation, which
    is what a mass deployment campaign measures.  An execution the guard
    aborts counts toward [integrity_faults] and is retried with backoff
    (the artifact re-ships from cache and re-enrolls clean memory);
    [policy.quarantine_refusals] consecutive guard faults quarantine the
    device with {!Integrity_faults}.  [soft_errors] (requires [execute])
    injects memory corruption before each run.  [clock] is advanced by
    every retry delay, so a long-running caller (the serve loop) and the
    shipper account backoff on one shared simulated timeline. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_delivery : Format.formatter -> delivery -> unit
