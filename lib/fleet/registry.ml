type status = Active | Quarantined of string

type entry = {
  device_id : Eric_puf.Device.id;
  epoch : int;
  label : string;
  key : bytes;
  firmware_epoch : int;
  status : status;
  helper : Eric_puf.Enroll.helper option;
      (* fuzzy-extractor helper data from reliability-aware enrollment;
         None for legacy (v1) entries, which boot by plain majority vote *)
  instability_ppm : int;
      (* worst per-bit instability seen at enrollment or the last field
         survey, in parts per million (0 for legacy entries) *)
}

type t = {
  mutable items : entry list; (* newest last *)
  devices : (Eric_puf.Device.id, Eric_puf.Device.t) Hashtbl.t;
      (* simulated silicon is manufactured once per registry, not once per
         shipment — the stand-in for the hardware simply existing *)
  targets : (Eric_puf.Device.id * int * string, Eric.Target.t) Hashtbl.t;
      (* per (device, KMU context): Target.create replays the PUF
         majority-vote key derivation, which real silicon does once per
         boot, not once per packet *)
}

let magic = "EFRG"
let version = 2
let min_version = 1

let create () = { items = []; devices = Hashtbl.create 64; targets = Hashtbl.create 64 }
let entries t = t.items
let count t = List.length t.items
let find t id = List.find_opt (fun e -> Int64.equal e.device_id id) t.items
let mem t id = Option.is_some (find t id)
let active t = List.filter (fun e -> e.status = Active) t.items
let quarantined t = List.filter (fun e -> e.status <> Active) t.items

let context (e : entry) = { Eric.Kmu.epoch = e.epoch; label = e.label }

let device t id =
  match Hashtbl.find_opt t.devices id with
  | Some d -> d
  | None ->
    let d = Eric_puf.Device.manufacture id in
    Hashtbl.add t.devices id d;
    d

let target_for ?env t ~context:(c : Eric.Kmu.context) id =
  let k = (id, c.Eric.Kmu.epoch, c.Eric.Kmu.label) in
  match Hashtbl.find_opt t.targets k with
  | Some tg -> tg
  | None ->
    (* An enrolled helper makes the fuzzy extractor the boot path for
       every context this device is addressed under (rotation included);
       legacy entries keep the plain majority-vote boot. *)
    let tg =
      match find t id with
      | Some { helper = Some h; _ } ->
        Eric.Target.create_with_helper ~context:c ?env (device t id) h
      | Some { helper = None; _ } | None -> Eric.Target.create ~context:c (device t id)
    in
    Hashtbl.add t.targets k tg;
    tg

let target ?env t (e : entry) = target_for ?env t ~context:(context e) e.device_id

let invalidate_targets t id =
  let stale =
    Hashtbl.fold
      (fun ((id', _, _) as k) _ acc -> if Int64.equal id' id then k :: acc else acc)
      t.targets []
  in
  List.iter (Hashtbl.remove t.targets) stale

let add t entry =
  if mem t entry.device_id then
    Error (Printf.sprintf "device %Ld is already enrolled" entry.device_id)
  else begin
    t.items <- t.items @ [ entry ];
    Ok entry
  end

let instability_to_ppm worst =
  int_of_float (Float.round (worst *. 1_000_000.0))

let enroll ?(epoch = Eric.Kmu.default_context.Eric.Kmu.epoch)
    ?(label = Eric.Kmu.default_context.Eric.Kmu.label) ?enrollment t device_id =
  if epoch < 0 then Error "epoch must be non-negative"
  else if String.length label > 0xFFFF then Error "label too long"
  else begin
    let ( let* ) = Result.bind in
    let context = { Eric.Kmu.epoch; label } in
    let* e =
      match enrollment with
      | Some e -> Ok e
      | None ->
        Result.map_error
          (fun msg -> Printf.sprintf "device %Ld: %s" device_id msg)
          (Eric_puf.Enroll.enroll (device t device_id))
    in
    let key = Eric.Kmu.derive ~puf_key:e.Eric_puf.Enroll.key context in
    let r =
      add t
        {
          device_id;
          epoch;
          label;
          key;
          firmware_epoch = 0;
          status = Active;
          helper = Some e.Eric_puf.Enroll.helper;
          instability_ppm = instability_to_ppm e.Eric_puf.Enroll.worst_instability;
        }
    in
    if Result.is_ok r && Eric_telemetry.Control.is_enabled () then
      Eric_telemetry.Registry.inc "fleet.registry.enrolled_total";
    r
  end

let update t entry =
  if not (mem t entry.device_id) then
    invalid_arg (Printf.sprintf "Registry.update: device %Ld not enrolled" entry.device_id);
  t.items <-
    List.map (fun e -> if Int64.equal e.device_id entry.device_id then entry else e) t.items;
  (* The entry's helper or context may have changed; let the next
     addressing re-boot the target. *)
  invalidate_targets t entry.device_id

(* ------------------------------------------------------------------ *)
(* Wire format (version 2; version 1 still parses)                     *)
(*                                                                     *)
(*   off  size  field                                                  *)
(*   0    4     magic "EFRG"                                           *)
(*   4    2     version                                                *)
(*   6    2     reserved (must be zero)                                *)
(*   8    4     entry count                                            *)
(*   12   ...   entries:                                               *)
(*          u64 device id                                              *)
(*          u32 KMU epoch                                              *)
(*          u32 firmware epoch                                         *)
(*          u16 label length, label bytes                              *)
(*          u16 key length, key bytes                                  *)
(*          u8  status (0 = active, 1 = quarantined)                   *)
(*          if quarantined: u16 reason length, reason bytes            *)
(*          -- version >= 2 only --                                    *)
(*          u8  has_helper (0/1)                                       *)
(*          if has_helper: u32 helper length, helper blob ("EHLP")     *)
(*          u32 instability, parts per million                         *)
(*                                                                     *)
(* Version-1 files parse with [helper = None] and zero instability, so *)
(* fleets enrolled before the fuzzy extractor keep loading (and keep   *)
(* the plain majority-vote boot path).  Serialization always writes    *)
(* version 2.                                                          *)
(*                                                                     *)
(* Parsing is strict, like Package: reserved bytes must be zero, every  *)
(* declared length must land inside the buffer, duplicate device ids   *)
(* are rejected, helper blobs must themselves parse, and trailing bytes *)
(* fail the parse — a corrupt registry is refused loudly rather than    *)
(* half-loaded.                                                         *)
(* ------------------------------------------------------------------ *)

let buf_add_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let buf_add_u32 buf v =
  let b = Bytes.create 4 in
  Eric_util.Bytesx.set_u32 b 0 (Int32.of_int v);
  Buffer.add_bytes buf b

let buf_add_u64 buf v =
  let b = Bytes.create 8 in
  Eric_util.Bytesx.set_u64 b 0 v;
  Buffer.add_bytes buf b

let serialize t =
  let buf = Buffer.create (64 * (1 + count t)) in
  Buffer.add_string buf magic;
  buf_add_u16 buf version;
  buf_add_u16 buf 0;
  buf_add_u32 buf (count t);
  List.iter
    (fun e ->
      buf_add_u64 buf e.device_id;
      buf_add_u32 buf e.epoch;
      buf_add_u32 buf e.firmware_epoch;
      buf_add_u16 buf (String.length e.label);
      Buffer.add_string buf e.label;
      buf_add_u16 buf (Bytes.length e.key);
      Buffer.add_bytes buf e.key;
      (match e.status with
      | Active -> Buffer.add_char buf '\000'
      | Quarantined reason ->
        Buffer.add_char buf '\001';
        buf_add_u16 buf (String.length reason);
        Buffer.add_string buf reason);
      (match e.helper with
      | None -> Buffer.add_char buf '\000'
      | Some h ->
        Buffer.add_char buf '\001';
        let blob = Eric_puf.Enroll.serialize h in
        buf_add_u32 buf (Bytes.length blob);
        Buffer.add_bytes buf blob);
      buf_add_u32 buf e.instability_ppm)
    t.items;
  Buffer.to_bytes buf

let parse b =
  let ( let* ) = Result.bind in
  let len = Bytes.length b in
  let pos = ref 0 in
  let need n what =
    if !pos + n <= len then Ok ()
    else Error (Printf.sprintf "registry truncated reading %s (at byte %d)" what !pos)
  in
  let u16 what =
    let* () = need 2 what in
    let v = Eric_util.Bytesx.get_u16 b !pos in
    pos := !pos + 2;
    Ok v
  in
  let u32 what =
    let* () = need 4 what in
    let v = Int32.to_int (Eric_util.Bytesx.get_u32 b !pos) in
    pos := !pos + 4;
    if v < 0 then Error (Printf.sprintf "negative %s" what) else Ok v
  in
  let u64 what =
    let* () = need 8 what in
    let v = Eric_util.Bytesx.get_u64 b !pos in
    pos := !pos + 8;
    Ok v
  in
  let str what =
    let* n = u16 (what ^ " length") in
    let* () = need n what in
    let s = Bytes.sub_string b !pos n in
    pos := !pos + n;
    Ok s
  in
  let* () = need 4 "magic" in
  let* () =
    if Bytes.sub_string b 0 4 = magic then Ok () else Error "bad magic (not an ERIC registry)"
  in
  pos := 4;
  let* v = u16 "version" in
  let* () =
    if v >= min_version && v <= version then Ok ()
    else Error (Printf.sprintf "unsupported registry version %d" v)
  in
  let* reserved = u16 "reserved" in
  let* () = if reserved = 0 then Ok () else Error "reserved bytes set" in
  let* n = u32 "entry count" in
  let t = create () in
  let rec loop i =
    if i = n then Ok ()
    else
      let* device_id = u64 "device id" in
      let* epoch = u32 "epoch" in
      let* firmware_epoch = u32 "firmware epoch" in
      let* label = str "label" in
      let* key = str "key" in
      let* () = need 1 "status" in
      let tag = Char.code (Bytes.get b !pos) in
      pos := !pos + 1;
      let* status =
        match tag with
        | 0 -> Ok Active
        | 1 ->
          let* reason = str "quarantine reason" in
          Ok (Quarantined reason)
        | _ -> Error (Printf.sprintf "unknown status tag %d" tag)
      in
      let* helper, instability_ppm =
        if v < 2 then Ok (None, 0)
        else
          let* () = need 1 "helper flag" in
          let flag = Char.code (Bytes.get b !pos) in
          pos := !pos + 1;
          let* helper =
            match flag with
            | 0 -> Ok None
            | 1 ->
              let* blob_len = u32 "helper length" in
              let* () = need blob_len "helper blob" in
              let blob = Bytes.sub b !pos blob_len in
              pos := !pos + blob_len;
              let* h =
                Result.map_error
                  (fun e -> Printf.sprintf "device %Ld: %s" device_id e)
                  (Eric_puf.Enroll.parse blob)
              in
              Ok (Some h)
            | _ -> Error (Printf.sprintf "unknown helper flag %d" flag)
          in
          let* ppm = u32 "instability" in
          Ok (helper, ppm)
      in
      let* _ =
        Result.map_error
          (fun e -> "duplicate entry: " ^ e)
          (add t
             {
               device_id;
               epoch;
               firmware_epoch;
               label;
               key = Bytes.of_string key;
               status;
               helper;
               instability_ppm;
             })
      in
      loop (i + 1)
  in
  let* () = loop 0 in
  let* () =
    if !pos = len then Ok ()
    else Error (Printf.sprintf "%d trailing bytes after the last entry" (len - !pos))
  in
  Ok t

let save t path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_bytes oc (serialize t))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (path ^ ": unexpected end of file")
  | data -> Result.map_error (fun e -> path ^ ": " ^ e) (parse (Bytes.of_string data))

let pp_status fmt = function
  | Active -> Format.pp_print_string fmt "active"
  | Quarantined reason -> Format.fprintf fmt "quarantined (%s)" reason

let pp_entry fmt e =
  Format.fprintf fmt "device %Ld  epoch %d  label %S  firmware %d  %a  %s" e.device_id
    e.epoch e.label e.firmware_epoch pp_status e.status
    (match e.helper with
    | None -> "legacy boot"
    | Some h ->
      Printf.sprintf "helper v%d (%d/%d chains, %d ppm)" h.Eric_puf.Enroll.version
        (Eric_puf.Enroll.kept_chains h) h.Eric_puf.Enroll.chains e.instability_ppm)

let pp_summary fmt t =
  Format.fprintf fmt "%d device(s), %d active, %d quarantined" (count t)
    (List.length (active t))
    (List.length (quarantined t))
