type status = Active | Quarantined of string

type entry = {
  device_id : Eric_puf.Device.id;
  epoch : int;
  label : string;
  key : bytes;
  firmware_epoch : int;
  status : status;
  helper : Eric_puf.Enroll.helper option;
      (* fuzzy-extractor helper data from reliability-aware enrollment;
         None for legacy (v1) entries, which boot by plain majority vote *)
  instability_ppm : int;
      (* worst per-bit instability seen at enrollment or the last field
         survey, in parts per million (0 for legacy entries) *)
}

type t = {
  mutable rev_order : Eric_puf.Device.id list; (* newest first *)
  byid : (Eric_puf.Device.id, entry) Hashtbl.t;
  devices : (Eric_puf.Device.id, Eric_puf.Device.t) Hashtbl.t;
      (* simulated silicon is manufactured once per registry, not once per
         shipment — the stand-in for the hardware simply existing *)
  targets : (Eric_puf.Device.id * int * string, Eric.Target.t) Hashtbl.t;
      (* per (device, KMU context): Target.create replays the PUF
         majority-vote key derivation, which real silicon does once per
         boot, not once per packet *)
  mutable hde : Eric_hw.Hde.config option;
      (* fleet-wide HDE provisioning override (None = hardware default);
         the serve layer sets this to enable the runtime integrity guard
         on every device the registry boots *)
  lock : Mutex.t;
      (* guards the three tables and [rev_order] so engine workers can
         address targets concurrently.  Boots themselves run outside the
         lock: a boot consumes the device's private noise stream, so
         concurrent boots must be for *distinct* devices — the engine's
         one-job-per-device partitioning guarantees that. *)
}

let magic = "EFRG"
let version = 2
let min_version = 1
let header_size = 12

let create () =
  {
    rev_order = [];
    byid = Hashtbl.create 64;
    devices = Hashtbl.create 64;
    targets = Hashtbl.create 64;
    hde = None;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let entries t = locked t (fun () -> List.rev_map (fun id -> Hashtbl.find t.byid id) t.rev_order)
let count t = locked t (fun () -> Hashtbl.length t.byid)
let find t id = locked t (fun () -> Hashtbl.find_opt t.byid id)
let mem t id = Option.is_some (find t id)
let active t = List.filter (fun e -> e.status = Active) (entries t)
let quarantined t = List.filter (fun e -> e.status <> Active) (entries t)

let context (e : entry) = { Eric.Kmu.epoch = e.epoch; label = e.label }

let device t id =
  match locked t (fun () -> Hashtbl.find_opt t.devices id) with
  | Some d -> d
  | None ->
    (* Manufacture is deterministic in [id], so a racing duplicate is
       identical; keep the first inserted instance as the one silicon. *)
    let d = Eric_puf.Device.manufacture id in
    locked t (fun () ->
        match Hashtbl.find_opt t.devices id with
        | Some d' -> d'
        | None ->
          Hashtbl.add t.devices id d;
          d)

let target_for ?env t ~context:(c : Eric.Kmu.context) id =
  let k = (id, c.Eric.Kmu.epoch, c.Eric.Kmu.label) in
  match locked t (fun () -> Hashtbl.find_opt t.targets k) with
  | Some tg -> tg
  | None ->
    (* An enrolled helper makes the fuzzy extractor the boot path for
       every context this device is addressed under (rotation included);
       legacy entries keep the plain majority-vote boot.  The boot runs
       outside the lock — see the [lock] invariant above. *)
    let hde = t.hde in
    let tg =
      match find t id with
      | Some { helper = Some h; _ } ->
        Eric.Target.create_with_helper ~context:c ?hde ?env (device t id) h
      | Some { helper = None; _ } | None -> Eric.Target.create ~context:c ?hde (device t id)
    in
    locked t (fun () ->
        match Hashtbl.find_opt t.targets k with
        | Some tg' -> tg'
        | None ->
          Hashtbl.add t.targets k tg;
          tg)

let target ?env t (e : entry) = target_for ?env t ~context:(context e) e.device_id

let set_hde t config =
  locked t (fun () ->
      t.hde <- Some config;
      (* Already-booted targets were built with the old silicon config;
         dropping the memo makes the next addressing re-boot under the
         new one (key reconstruction is re-paid — provisioning a fleet
         is rare, per-packet addressing is not). *)
      Hashtbl.reset t.targets)

let invalidate_targets t id =
  locked t (fun () ->
      let stale =
        Hashtbl.fold
          (fun ((id', _, _) as k) _ acc -> if Int64.equal id' id then k :: acc else acc)
          t.targets []
      in
      List.iter (Hashtbl.remove t.targets) stale)

let add t entry =
  locked t (fun () ->
      if Hashtbl.mem t.byid entry.device_id then
        Error (Printf.sprintf "device %Ld is already enrolled" entry.device_id)
      else begin
        Hashtbl.replace t.byid entry.device_id entry;
        t.rev_order <- entry.device_id :: t.rev_order;
        Ok entry
      end)

let instability_to_ppm worst = int_of_float (Float.round (worst *. 1_000_000.0))

let validate_context ~epoch ~label =
  if epoch < 0 then Error "epoch must be non-negative"
  else if String.length label > 0xFFFF then Error "label too long"
  else Ok { Eric.Kmu.epoch; label }

let enroll ?(epoch = Eric.Kmu.default_context.Eric.Kmu.epoch)
    ?(label = Eric.Kmu.default_context.Eric.Kmu.label) ?enrollment t device_id =
  let ( let* ) = Result.bind in
  let* context = validate_context ~epoch ~label in
  let* e =
    match enrollment with
    | Some e -> Ok e
    | None ->
      Result.map_error
        (fun msg -> Printf.sprintf "device %Ld: %s" device_id msg)
        (Eric_puf.Enroll.enroll (device t device_id))
  in
  let key = Eric.Kmu.derive ~puf_key:e.Eric_puf.Enroll.key context in
  let r =
    add t
      {
        device_id;
        epoch;
        label;
        key;
        firmware_epoch = 0;
        status = Active;
        helper = Some e.Eric_puf.Enroll.helper;
        instability_ppm = instability_to_ppm e.Eric_puf.Enroll.worst_instability;
      }
  in
  if Result.is_ok r && Eric_telemetry.Control.is_enabled () then
    Eric_telemetry.Registry.inc "fleet.registry.enrolled_total";
  r

let enroll_legacy ?(epoch = Eric.Kmu.default_context.Eric.Kmu.epoch)
    ?(label = Eric.Kmu.default_context.Eric.Kmu.label) t device_id =
  let ( let* ) = Result.bind in
  let* context = validate_context ~epoch ~label in
  (* The fast factory path: majority-vote PUF read at nominal conditions
     and no helper data.  The 8-sigma dark-bit mask makes the plain vote
     stable at nominal, which is exactly the pre-fuzzy-extractor (v1)
     provisioning flow — and roughly 5x cheaper than full reliability
     screening, which matters when enrolling 10^5-device benches. *)
  let key = Eric.Kmu.device_key ~context (device t device_id) in
  let r =
    add t
      {
        device_id;
        epoch;
        label;
        key;
        firmware_epoch = 0;
        status = Active;
        helper = None;
        instability_ppm = 0;
      }
  in
  if Result.is_ok r && Eric_telemetry.Control.is_enabled () then
    Eric_telemetry.Registry.inc ~labels:[ ("path", "legacy") ]
      "fleet.registry.enrolled_total";
  r

(* A replaced entry only needs a fresh boot when a field the boot reads
   changed: KMU context (epoch, label), provisioned key, or helper data.
   Campaign bookkeeping (firmware_epoch) and quarantine flips leave the
   memoized target valid — re-booting every device because its firmware
   epoch advanced made warm redeployments pay a full PUF key
   reconstruction per device per campaign. *)
let boot_relevant_change old entry =
  old.epoch <> entry.epoch || old.label <> entry.label
  || not (Bytes.equal old.key entry.key)
  || old.helper <> entry.helper

let update t entry =
  let old =
    locked t (fun () ->
        match Hashtbl.find_opt t.byid entry.device_id with
        | None ->
          invalid_arg
            (Printf.sprintf "Registry.update: device %Ld not enrolled" entry.device_id)
        | Some old ->
          Hashtbl.replace t.byid entry.device_id entry;
          old)
  in
  if boot_relevant_change old entry then invalidate_targets t entry.device_id

(* ------------------------------------------------------------------ *)
(* Wire format (version 2; version 1 still parses)                     *)
(*                                                                     *)
(*   off  size  field                                                  *)
(*   0    4     magic "EFRG"                                           *)
(*   4    2     version                                                *)
(*   6    2     reserved (must be zero)                                *)
(*   8    4     entry count                                            *)
(*   12   ...   entries:                                               *)
(*          u64 device id                                              *)
(*          u32 KMU epoch                                              *)
(*          u32 firmware epoch                                         *)
(*          u16 label length, label bytes                              *)
(*          u16 key length, key bytes                                  *)
(*          u8  status (0 = active, 1 = quarantined)                   *)
(*          if quarantined: u16 reason length, reason bytes            *)
(*          -- version >= 2 only --                                    *)
(*          u8  has_helper (0/1)                                       *)
(*          if has_helper: u32 helper length, helper blob ("EHLP")     *)
(*          u32 instability, parts per million                         *)
(*                                                                     *)
(* Version-1 files parse with [helper = None] and zero instability, so *)
(* fleets enrolled before the fuzzy extractor keep loading (and keep   *)
(* the plain majority-vote boot path).  Serialization always writes    *)
(* version 2.                                                          *)
(*                                                                     *)
(* Parsing is strict, like Package: reserved bytes must be zero, every  *)
(* declared length must land inside the buffer, duplicate device ids   *)
(* are rejected, helper blobs must themselves parse, and trailing bytes *)
(* fail the parse — a corrupt registry is refused loudly rather than    *)
(* half-loaded.                                                         *)
(*                                                                     *)
(* The entry decoder runs against a [Reader], a cursor abstract over an *)
(* in-memory buffer and a buffered channel, so shard files stream one   *)
(* entry at a time without ever materializing the whole shard.          *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let buf_add_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let buf_add_u32 buf v =
  let b = Bytes.create 4 in
  Eric_util.Bytesx.set_u32 b 0 (Int32.of_int v);
  Buffer.add_bytes buf b

let buf_add_u64 buf v =
  let b = Bytes.create 8 in
  Eric_util.Bytesx.set_u64 b 0 v;
  Buffer.add_bytes buf b

let add_header buf ~count =
  Buffer.add_string buf magic;
  buf_add_u16 buf version;
  buf_add_u16 buf 0;
  buf_add_u32 buf count

let header ~count =
  let buf = Buffer.create header_size in
  add_header buf ~count;
  Buffer.to_bytes buf

let serialize_entry buf e =
  buf_add_u64 buf e.device_id;
  buf_add_u32 buf e.epoch;
  buf_add_u32 buf e.firmware_epoch;
  buf_add_u16 buf (String.length e.label);
  Buffer.add_string buf e.label;
  buf_add_u16 buf (Bytes.length e.key);
  Buffer.add_bytes buf e.key;
  (match e.status with
  | Active -> Buffer.add_char buf '\000'
  | Quarantined reason ->
    Buffer.add_char buf '\001';
    buf_add_u16 buf (String.length reason);
    Buffer.add_string buf reason);
  (match e.helper with
  | None -> Buffer.add_char buf '\000'
  | Some h ->
    Buffer.add_char buf '\001';
    let blob = Eric_puf.Enroll.serialize h in
    buf_add_u32 buf (Bytes.length blob);
    Buffer.add_bytes buf blob);
  buf_add_u32 buf e.instability_ppm

let serialize t =
  let es = entries t in
  let buf = Buffer.create (64 * (1 + List.length es)) in
  add_header buf ~count:(List.length es);
  List.iter (serialize_entry buf) es;
  Buffer.to_bytes buf

module Reader = struct
  type src = Buf of bytes | Chan of in_channel

  type t = { src : src; mutable pos : int }

  let of_bytes b = { src = Buf b; pos = 0 }
  let of_channel ic = { src = Chan ic; pos = 0 }

  let take r n what =
    let truncated () =
      Error (Printf.sprintf "registry truncated reading %s (at byte %d)" what r.pos)
    in
    match r.src with
    | Buf b ->
      if n >= 0 && r.pos + n <= Bytes.length b then begin
        let s = Bytes.sub b r.pos n in
        r.pos <- r.pos + n;
        Ok s
      end
      else truncated ()
    | Chan ic -> (
      if n < 0 then truncated ()
      else
        let b = Bytes.create n in
        match really_input ic b 0 n with
        | () ->
          r.pos <- r.pos + n;
          Ok b
        | exception End_of_file -> truncated ())

  let u8 r what =
    let* b = take r 1 what in
    Ok (Char.code (Bytes.get b 0))

  let u16 r what =
    let* b = take r 2 what in
    Ok (Eric_util.Bytesx.get_u16 b 0)

  let u32 r what =
    let* b = take r 4 what in
    let v = Int32.to_int (Eric_util.Bytesx.get_u32 b 0) in
    if v < 0 then Error (Printf.sprintf "negative %s" what) else Ok v

  let u64 r what =
    let* b = take r 8 what in
    Ok (Eric_util.Bytesx.get_u64 b 0)

  let str r what =
    let* n = u16 r (what ^ " length") in
    let* b = take r n what in
    Ok (Bytes.to_string b)

  (* Bytes remaining past the cursor (0 = cleanly consumed).  Used for
     the trailing-garbage strictness check; for a channel source it may
     consume, so only call it after the last entry. *)
  let excess r =
    match r.src with
    | Buf b -> Bytes.length b - r.pos
    | Chan ic -> (
      match input_char ic with
      | exception End_of_file -> 0
      | _ -> in_channel_length ic - pos_in ic + 1)
end

let read_header r =
  let* m = Reader.take r 4 "magic" in
  let* () =
    if Bytes.to_string m = magic then Ok () else Error "bad magic (not an ERIC registry)"
  in
  let* v = Reader.u16 r "version" in
  let* () =
    if v >= min_version && v <= version then Ok ()
    else Error (Printf.sprintf "unsupported registry version %d" v)
  in
  let* reserved = Reader.u16 r "reserved" in
  let* () = if reserved = 0 then Ok () else Error "reserved bytes set" in
  let* n = Reader.u32 r "entry count" in
  Ok (v, n)

let read_entry r ~version:v =
  let* device_id = Reader.u64 r "device id" in
  let* epoch = Reader.u32 r "epoch" in
  let* firmware_epoch = Reader.u32 r "firmware epoch" in
  let* label = Reader.str r "label" in
  let* key = Reader.str r "key" in
  let* tag = Reader.u8 r "status" in
  let* status =
    match tag with
    | 0 -> Ok Active
    | 1 ->
      let* reason = Reader.str r "quarantine reason" in
      Ok (Quarantined reason)
    | _ -> Error (Printf.sprintf "unknown status tag %d" tag)
  in
  let* helper, instability_ppm =
    if v < 2 then Ok (None, 0)
    else
      let* flag = Reader.u8 r "helper flag" in
      let* helper =
        match flag with
        | 0 -> Ok None
        | 1 ->
          let* blob_len = Reader.u32 r "helper length" in
          let* blob = Reader.take r blob_len "helper blob" in
          let* h =
            Result.map_error
              (fun e -> Printf.sprintf "device %Ld: %s" device_id e)
              (Eric_puf.Enroll.parse blob)
          in
          Ok (Some h)
        | _ -> Error (Printf.sprintf "unknown helper flag %d" flag)
      in
      let* ppm = Reader.u32 r "instability" in
      Ok (helper, ppm)
  in
  Ok { device_id; epoch; firmware_epoch; label; key = Bytes.of_string key; status; helper; instability_ppm }

let parse_reader r =
  let* v, n = read_header r in
  let t = create () in
  let rec loop i =
    if i = n then Ok ()
    else
      let* e = read_entry r ~version:v in
      let* _ = Result.map_error (fun m -> "duplicate entry: " ^ m) (add t e) in
      loop (i + 1)
  in
  let* () = loop 0 in
  match Reader.excess r with
  | 0 -> Ok t
  | k -> Error (Printf.sprintf "%d trailing bytes after the last entry" k)

let parse b = parse_reader (Reader.of_bytes b)

let fold_file path ~init ~f =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let r = Reader.of_channel ic in
        let* v, n = read_header r in
        let rec loop i acc =
          if i = n then Ok acc
          else
            let* e = read_entry r ~version:v in
            let* acc = f acc e in
            loop (i + 1) acc
        in
        let* acc = loop 0 init in
        match Reader.excess r with
        | 0 -> Ok acc
        | k -> Error (Printf.sprintf "%d trailing bytes after the last entry" k))
  with
  | exception Sys_error msg -> Error msg
  | r -> Result.map_error (fun e -> path ^ ": " ^ e) r

let save t path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_bytes oc (serialize t))

let observe_open_ns ~kind start =
  Eric_telemetry.Registry.observe
    ~labels:[ ("kind", kind) ]
    "fleet.registry.open_ns"
    (Int64.to_float (Int64.sub (Eric_telemetry.Clock.now_ns ()) start))

let load path =
  Eric_telemetry.Span.with_ ~cat:"fleet" ~name:"fleet.registry.open" (fun () ->
      let start = Eric_telemetry.Clock.now_ns () in
      let result =
        match
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> parse_reader (Reader.of_channel ic))
        with
        | exception Sys_error msg -> Error msg
        | r -> Result.map_error (fun e -> path ^ ": " ^ e) r
      in
      observe_open_ns ~kind:"file" start;
      result)

let pp_status fmt = function
  | Active -> Format.pp_print_string fmt "active"
  | Quarantined reason -> Format.fprintf fmt "quarantined (%s)" reason

let pp_entry fmt e =
  Format.fprintf fmt "device %Ld  epoch %d  label %S  firmware %d  %a  %s" e.device_id
    e.epoch e.label e.firmware_epoch pp_status e.status
    (match e.helper with
    | None -> "legacy boot"
    | Some h ->
      Printf.sprintf "helper v%d (%d/%d chains, %d ppm)" h.Eric_puf.Enroll.version
        (Eric_puf.Enroll.kept_chains h) h.Eric_puf.Enroll.chains e.instability_ppm)

let pp_summary fmt t =
  Format.fprintf fmt "%d device(s), %d active, %d quarantined" (count t)
    (List.length (active t))
    (List.length (quarantined t))
