type status = Active | Quarantined of string

type entry = {
  device_id : Eric_puf.Device.id;
  epoch : int;
  label : string;
  key : bytes;
  firmware_epoch : int;
  status : status;
}

type t = {
  mutable items : entry list; (* newest last *)
  devices : (Eric_puf.Device.id, Eric_puf.Device.t) Hashtbl.t;
      (* simulated silicon is manufactured once per registry, not once per
         shipment — the stand-in for the hardware simply existing *)
  targets : (Eric_puf.Device.id * int * string, Eric.Target.t) Hashtbl.t;
      (* per (device, KMU context): Target.create replays the PUF
         majority-vote key derivation, which real silicon does once per
         boot, not once per packet *)
}

let magic = "EFRG"
let version = 1

let create () = { items = []; devices = Hashtbl.create 64; targets = Hashtbl.create 64 }
let entries t = t.items
let count t = List.length t.items
let find t id = List.find_opt (fun e -> Int64.equal e.device_id id) t.items
let mem t id = Option.is_some (find t id)
let active t = List.filter (fun e -> e.status = Active) t.items
let quarantined t = List.filter (fun e -> e.status <> Active) t.items

let context (e : entry) = { Eric.Kmu.epoch = e.epoch; label = e.label }

let device t id =
  match Hashtbl.find_opt t.devices id with
  | Some d -> d
  | None ->
    let d = Eric_puf.Device.manufacture id in
    Hashtbl.add t.devices id d;
    d

let target_for t ~context:(c : Eric.Kmu.context) id =
  let k = (id, c.Eric.Kmu.epoch, c.Eric.Kmu.label) in
  match Hashtbl.find_opt t.targets k with
  | Some tg -> tg
  | None ->
    let tg = Eric.Target.create ~context:c (device t id) in
    Hashtbl.add t.targets k tg;
    tg

let target t (e : entry) = target_for t ~context:(context e) e.device_id

let add t entry =
  if mem t entry.device_id then
    Error (Printf.sprintf "device %Ld is already enrolled" entry.device_id)
  else begin
    t.items <- t.items @ [ entry ];
    Ok entry
  end

let enroll ?(epoch = Eric.Kmu.default_context.Eric.Kmu.epoch)
    ?(label = Eric.Kmu.default_context.Eric.Kmu.label) t device_id =
  if epoch < 0 then Error "epoch must be non-negative"
  else if String.length label > 0xFFFF then Error "label too long"
  else begin
    let context = { Eric.Kmu.epoch; label } in
    let key = Eric.Protocol.provision (target_for t ~context device_id) in
    let r = add t { device_id; epoch; label; key; firmware_epoch = 0; status = Active } in
    if Result.is_ok r && Eric_telemetry.Control.is_enabled () then
      Eric_telemetry.Registry.inc "fleet.registry.enrolled_total";
    r
  end

let update t entry =
  if not (mem t entry.device_id) then
    invalid_arg (Printf.sprintf "Registry.update: device %Ld not enrolled" entry.device_id);
  t.items <-
    List.map (fun e -> if Int64.equal e.device_id entry.device_id then entry else e) t.items

(* ------------------------------------------------------------------ *)
(* Wire format (version 1)                                             *)
(*                                                                     *)
(*   off  size  field                                                  *)
(*   0    4     magic "EFRG"                                           *)
(*   4    2     version                                                *)
(*   6    2     reserved (must be zero)                                *)
(*   8    4     entry count                                            *)
(*   12   ...   entries:                                               *)
(*          u64 device id                                              *)
(*          u32 KMU epoch                                              *)
(*          u32 firmware epoch                                         *)
(*          u16 label length, label bytes                              *)
(*          u16 key length, key bytes                                  *)
(*          u8  status (0 = active, 1 = quarantined)                   *)
(*          if quarantined: u16 reason length, reason bytes            *)
(*                                                                     *)
(* Parsing is strict, like Package: reserved bytes must be zero, every  *)
(* declared length must land inside the buffer, duplicate device ids   *)
(* are rejected, and trailing bytes fail the parse — a corrupt registry *)
(* is refused loudly rather than half-loaded.                           *)
(* ------------------------------------------------------------------ *)

let buf_add_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let buf_add_u32 buf v =
  let b = Bytes.create 4 in
  Eric_util.Bytesx.set_u32 b 0 (Int32.of_int v);
  Buffer.add_bytes buf b

let buf_add_u64 buf v =
  let b = Bytes.create 8 in
  Eric_util.Bytesx.set_u64 b 0 v;
  Buffer.add_bytes buf b

let serialize t =
  let buf = Buffer.create (64 * (1 + count t)) in
  Buffer.add_string buf magic;
  buf_add_u16 buf version;
  buf_add_u16 buf 0;
  buf_add_u32 buf (count t);
  List.iter
    (fun e ->
      buf_add_u64 buf e.device_id;
      buf_add_u32 buf e.epoch;
      buf_add_u32 buf e.firmware_epoch;
      buf_add_u16 buf (String.length e.label);
      Buffer.add_string buf e.label;
      buf_add_u16 buf (Bytes.length e.key);
      Buffer.add_bytes buf e.key;
      match e.status with
      | Active -> Buffer.add_char buf '\000'
      | Quarantined reason ->
        Buffer.add_char buf '\001';
        buf_add_u16 buf (String.length reason);
        Buffer.add_string buf reason)
    t.items;
  Buffer.to_bytes buf

let parse b =
  let ( let* ) = Result.bind in
  let len = Bytes.length b in
  let pos = ref 0 in
  let need n what =
    if !pos + n <= len then Ok ()
    else Error (Printf.sprintf "registry truncated reading %s (at byte %d)" what !pos)
  in
  let u16 what =
    let* () = need 2 what in
    let v = Eric_util.Bytesx.get_u16 b !pos in
    pos := !pos + 2;
    Ok v
  in
  let u32 what =
    let* () = need 4 what in
    let v = Int32.to_int (Eric_util.Bytesx.get_u32 b !pos) in
    pos := !pos + 4;
    if v < 0 then Error (Printf.sprintf "negative %s" what) else Ok v
  in
  let u64 what =
    let* () = need 8 what in
    let v = Eric_util.Bytesx.get_u64 b !pos in
    pos := !pos + 8;
    Ok v
  in
  let str what =
    let* n = u16 (what ^ " length") in
    let* () = need n what in
    let s = Bytes.sub_string b !pos n in
    pos := !pos + n;
    Ok s
  in
  let* () = need 4 "magic" in
  let* () =
    if Bytes.sub_string b 0 4 = magic then Ok () else Error "bad magic (not an ERIC registry)"
  in
  pos := 4;
  let* v = u16 "version" in
  let* () =
    if v = version then Ok () else Error (Printf.sprintf "unsupported registry version %d" v)
  in
  let* reserved = u16 "reserved" in
  let* () = if reserved = 0 then Ok () else Error "reserved bytes set" in
  let* n = u32 "entry count" in
  let t = create () in
  let rec loop i =
    if i = n then Ok ()
    else
      let* device_id = u64 "device id" in
      let* epoch = u32 "epoch" in
      let* firmware_epoch = u32 "firmware epoch" in
      let* label = str "label" in
      let* key = str "key" in
      let* () = need 1 "status" in
      let tag = Char.code (Bytes.get b !pos) in
      pos := !pos + 1;
      let* status =
        match tag with
        | 0 -> Ok Active
        | 1 ->
          let* reason = str "quarantine reason" in
          Ok (Quarantined reason)
        | _ -> Error (Printf.sprintf "unknown status tag %d" tag)
      in
      let* _ =
        Result.map_error
          (fun e -> "duplicate entry: " ^ e)
          (add t
             {
               device_id;
               epoch;
               firmware_epoch;
               label;
               key = Bytes.of_string key;
               status;
             })
      in
      loop (i + 1)
  in
  let* () = loop 0 in
  let* () =
    if !pos = len then Ok ()
    else Error (Printf.sprintf "%d trailing bytes after the last entry" (len - !pos))
  in
  Ok t

let save t path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_bytes oc (serialize t))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (path ^ ": unexpected end of file")
  | data -> Result.map_error (fun e -> path ^ ": " ^ e) (parse (Bytes.of_string data))

let pp_status fmt = function
  | Active -> Format.pp_print_string fmt "active"
  | Quarantined reason -> Format.fprintf fmt "quarantined (%s)" reason

let pp_entry fmt e =
  Format.fprintf fmt "device %Ld  epoch %d  label %S  firmware %d  %a" e.device_id e.epoch
    e.label e.firmware_epoch pp_status e.status

let pp_summary fmt t =
  Format.fprintf fmt "%d device(s), %d active, %d quarantined" (count t)
    (List.length (active t))
    (List.length (quarantined t))
