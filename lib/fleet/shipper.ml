type quarantine_reason =
  | Key_reconstruction_failed
  | Signature_refusals of int
  | Exhausted of int

let quarantine_label = function
  | Key_reconstruction_failed -> "key reconstruction failed"
  | Signature_refusals n -> Printf.sprintf "%d signature refusals" n
  | Exhausted n -> Printf.sprintf "undeliverable after %d attempts" n

type outcome =
  | Delivered of { load_cycles : int64; exec : Eric_sim.Soc.result option }
  | Quarantined of { reason : quarantine_reason }

type delivery = {
  device_id : Eric_puf.Device.id;
  attempts : int;
  refusals : (int * Eric.Target.load_error) list;
  backoff_ns : int64;
  wire_bytes : int;
  outcome : outcome;
}

let delivered d = match d.outcome with Delivered _ -> true | Quarantined _ -> false
let retried d = delivered d && d.attempts > 1

let count ?labels name =
  if Eric_telemetry.Control.is_enabled () then Eric_telemetry.Registry.inc ?labels name

let ship ?(policy = Backoff.default) ?(channel = Channel.clean) ?(execute = false) ?fuel
    ?clock ~(build : Eric.Source.build) ~target () =
  let device = Eric_puf.Device.id (Eric.Target.device target) in
  let wire = Eric.Package.serialize build.Eric.Source.package in
  let wire_bytes = Bytes.length wire in
  let finish ~attempts ~refusals ~backoff_ns outcome =
    (match outcome with
    | Delivered _ ->
      count "fleet.ship.delivered_total";
      if attempts > 1 then count "fleet.ship.retries_recovered_total"
    | Quarantined _ -> count "fleet.ship.quarantined_total");
    {
      device_id = device;
      attempts;
      refusals = List.rev refusals;
      backoff_ns;
      wire_bytes;
      outcome;
    }
  in
  let rec attempt_loop attempt refusals sig_refusals backoff_ns =
    count "fleet.ship.attempts_total";
    if attempt > 1 then count "fleet.ship.retries_total";
    let attacked =
      Eric.Protocol.apply_attack (Channel.attack channel ~device ~attempt) wire
    in
    match Eric.Target.receive_bytes target attacked with
    | Ok loaded ->
      let exec =
        if not execute then None
        else
          let image = loaded.Eric.Target.image in
          Some
            (Eric_sim.Soc.run_loaded ?fuel
               ~load_cycles:loaded.Eric.Target.load.Eric_hw.Hde.total_cycles image
               (Eric_sim.Soc.load image))
      in
      finish ~attempts:attempt ~refusals ~backoff_ns
        (Delivered
           { load_cycles = loaded.Eric.Target.load.Eric_hw.Hde.total_cycles; exec })
    | Error e ->
      count ~labels:[ ("reason", Eric.Target.refusal_reason e) ] "fleet.ship.refused_total";
      let refusals = (attempt, e) :: refusals in
      let sig_refusals =
        sig_refusals
        + match e with Eric.Target.Rejected Eric.Encrypt.Signature_mismatch -> 1 | _ -> 0
      in
      (match e with
      | Eric.Target.Key_unavailable _ ->
        (* The device could not rebuild its own key at boot: no retry or
           re-signing can help, and it must not be lumped in with
           signature refusals — re-enrollment, not re-shipping, fixes it. *)
        finish ~attempts:attempt ~refusals ~backoff_ns
          (Quarantined { reason = Key_reconstruction_failed })
      | _ ->
        if sig_refusals >= policy.Backoff.quarantine_refusals then
          finish ~attempts:attempt ~refusals ~backoff_ns
            (Quarantined { reason = Signature_refusals sig_refusals })
        else if attempt >= policy.Backoff.max_attempts then
          finish ~attempts:attempt ~refusals ~backoff_ns
            (Quarantined { reason = Exhausted attempt })
        else begin
          let delay = Backoff.delay_ns policy ~retry:attempt in
          Option.iter (fun c -> Eric_util.Sim_clock.advance c delay) clock;
          attempt_loop (attempt + 1) refusals sig_refusals (Int64.add backoff_ns delay)
        end)
  in
  let d = attempt_loop 1 [] 0 0L in
  if Eric_telemetry.Control.is_enabled () then begin
    Eric_telemetry.Registry.inc ~by:d.backoff_ns "fleet.ship.backoff_ns";
    Eric_telemetry.Registry.observe "fleet.ship.attempts" (float_of_int d.attempts)
  end;
  d

let pp_outcome fmt = function
  | Delivered { load_cycles; exec = None } ->
    Format.fprintf fmt "delivered (validated, %Ld load cycles)" load_cycles
  | Delivered { load_cycles; exec = Some r } ->
    Format.fprintf fmt "delivered (%Ld load + %Ld exec cycles)" load_cycles
      r.Eric_sim.Soc.exec_cycles
  | Quarantined { reason } -> Format.fprintf fmt "quarantined: %s" (quarantine_label reason)

let pp_delivery fmt d =
  Format.fprintf fmt "device %Ld: %a after %d attempt(s), %d refusal(s), %.3f ms backoff"
    d.device_id pp_outcome d.outcome d.attempts (List.length d.refusals)
    (Int64.to_float d.backoff_ns /. 1e6)
