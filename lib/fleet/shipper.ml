type quarantine_reason =
  | Key_reconstruction_failed
  | Signature_refusals of int
  | Exhausted of int
  | Integrity_faults of int

let quarantine_label = function
  | Key_reconstruction_failed -> "key reconstruction failed"
  | Signature_refusals n -> Printf.sprintf "%d signature refusals" n
  | Exhausted n -> Printf.sprintf "undeliverable after %d attempts" n
  | Integrity_faults n -> Printf.sprintf "%d integrity faults" n

type outcome =
  | Delivered of { load_cycles : int64; exec : Eric_sim.Soc.result option }
  | Quarantined of { reason : quarantine_reason }

type delivery = {
  device_id : Eric_puf.Device.id;
  attempts : int;
  refusals : (int * Eric.Target.load_error) list;
  integrity_faults : int;
  backoff_ns : int64;
  wire_bytes : int;
  outcome : outcome;
}

type fault_injector = attempt:int -> Eric_sim.Memory.t -> Eric_rv.Program.t -> unit

let delivered d = match d.outcome with Delivered _ -> true | Quarantined _ -> false
let retried d = delivered d && d.attempts > 1

let count ?labels name =
  if Eric_telemetry.Control.is_enabled () then Eric_telemetry.Registry.inc ?labels name

let ship ?(policy = Backoff.default) ?(channel = Channel.clean) ?(execute = false) ?fuel
    ?clock ?soft_errors ~(build : Eric.Source.build) ~target () =
  let device = Eric_puf.Device.id (Eric.Target.device target) in
  let wire = Eric.Package.serialize build.Eric.Source.package in
  let wire_bytes = Bytes.length wire in
  let finish ~attempts ~refusals ~integrity_faults ~backoff_ns outcome =
    (match outcome with
    | Delivered _ ->
      count "fleet.ship.delivered_total";
      if attempts > 1 then count "fleet.ship.retries_recovered_total"
    | Quarantined _ -> count "fleet.ship.quarantined_total");
    {
      device_id = device;
      attempts;
      refusals = List.rev refusals;
      integrity_faults;
      backoff_ns;
      wire_bytes;
      outcome;
    }
  in
  let rec attempt_loop attempt refusals sig_refusals integ_faults backoff_ns =
    count "fleet.ship.attempts_total";
    if attempt > 1 then count "fleet.ship.retries_total";
    let retry_or ~refusals ~sig_refusals ~integ_faults reason =
      if attempt >= policy.Backoff.max_attempts then
        finish ~attempts:attempt ~refusals ~integrity_faults:integ_faults ~backoff_ns
          (Quarantined { reason })
      else begin
        let delay = Backoff.delay_ns policy ~retry:attempt in
        Option.iter (fun c -> Eric_util.Sim_clock.advance c delay) clock;
        attempt_loop (attempt + 1) refusals sig_refusals integ_faults
          (Int64.add backoff_ns delay)
      end
    in
    let attacked =
      Eric.Protocol.apply_attack (Channel.attack channel ~device ~attempt) wire
    in
    match Eric.Target.receive_bytes target attacked with
    | Ok loaded -> (
      let exec =
        if not execute then None
        else
          let corrupt = Option.map (fun f -> f ~attempt) soft_errors in
          Some (Eric.Target.run ?fuel ?corrupt target loaded)
      in
      match exec with
      | Some { Eric_sim.Soc.status = Eric_sim.Cpu.Integrity_fault _; _ } ->
        (* The guard caught resident corruption after a valid load: the
           artifact is fine, the device's memory is not.  Re-shipping
           from the cached build re-loads (and re-enrolls) clean memory,
           so this is retryable — only a device that keeps faulting gets
           quarantined for investigation. *)
        count "fleet.ship.integrity_faults_total";
        let integ_faults = integ_faults + 1 in
        if integ_faults >= policy.Backoff.quarantine_refusals then
          finish ~attempts:attempt ~refusals ~integrity_faults:integ_faults ~backoff_ns
            (Quarantined { reason = Integrity_faults integ_faults })
        else retry_or ~refusals ~sig_refusals ~integ_faults (Integrity_faults integ_faults)
      | _ ->
        finish ~attempts:attempt ~refusals ~integrity_faults:integ_faults ~backoff_ns
          (Delivered
             { load_cycles = loaded.Eric.Target.load.Eric_hw.Hde.total_cycles; exec }))
    | Error e ->
      count ~labels:[ ("reason", Eric.Target.refusal_reason e) ] "fleet.ship.refused_total";
      let refusals = (attempt, e) :: refusals in
      let sig_refusals =
        sig_refusals
        + match e with Eric.Target.Rejected Eric.Encrypt.Signature_mismatch -> 1 | _ -> 0
      in
      (match e with
      | Eric.Target.Key_unavailable _ ->
        (* The device could not rebuild its own key at boot: no retry or
           re-signing can help, and it must not be lumped in with
           signature refusals — re-enrollment, not re-shipping, fixes it. *)
        finish ~attempts:attempt ~refusals ~integrity_faults:integ_faults ~backoff_ns
          (Quarantined { reason = Key_reconstruction_failed })
      | _ ->
        if sig_refusals >= policy.Backoff.quarantine_refusals then
          finish ~attempts:attempt ~refusals ~integrity_faults:integ_faults ~backoff_ns
            (Quarantined { reason = Signature_refusals sig_refusals })
        else retry_or ~refusals ~sig_refusals ~integ_faults (Exhausted attempt))
  in
  let d = attempt_loop 1 [] 0 0 0L in
  if Eric_telemetry.Control.is_enabled () then begin
    Eric_telemetry.Registry.inc ~by:d.backoff_ns "fleet.ship.backoff_ns";
    Eric_telemetry.Registry.observe "fleet.ship.attempts" (float_of_int d.attempts)
  end;
  d

let pp_outcome fmt = function
  | Delivered { load_cycles; exec = None } ->
    Format.fprintf fmt "delivered (validated, %Ld load cycles)" load_cycles
  | Delivered { load_cycles; exec = Some r } ->
    Format.fprintf fmt "delivered (%Ld load + %Ld exec cycles)" load_cycles
      r.Eric_sim.Soc.exec_cycles
  | Quarantined { reason } -> Format.fprintf fmt "quarantined: %s" (quarantine_label reason)

let pp_delivery fmt d =
  Format.fprintf fmt "device %Ld: %a after %d attempt(s), %d refusal(s), %.3f ms backoff"
    d.device_id pp_outcome d.outcome d.attempts (List.length d.refusals)
    (Int64.to_float d.backoff_ns /. 1e6)
