(** Field re-enrollment campaign: keep helper data ahead of silicon drift.

    Surveys every registered device's enrolled challenges at a stress
    corner ({!Eric_puf.Enroll.survey} — key-free, so it runs without
    reconstructing anything) and re-enrolls the ones whose worst-bit
    instability exceeds the threshold, plus every device quarantined with
    ["key reconstruction failed"] (which is {e reactivated} on success).
    Legacy entries without helper data are upgraded to the
    fuzzy-extractor boot path.

    Re-enrollment replaces the entry's helper blob, re-derives its key
    under the {e existing} KMU context and invalidates the memoized boot,
    so the next shipment personalizes against the new key.

    Telemetry: [fleet.reenroll.runs_total], [.surveyed_total],
    [.healthy_total], [.reenrolled_total], [.upgraded_total],
    [.reactivated_total], [.failed_total]. *)

type config = {
  threshold_ppm : int;  (** re-enroll above this surveyed instability *)
  survey_votes : int;  (** reads per challenge during the survey *)
  survey_env : Eric_puf.Env.t;  (** survey operating point *)
  enroll : Eric_puf.Enroll.config;  (** config for the re-enrollment pass *)
  reactivate : bool;  (** clear key-reconstruction quarantines on success *)
}

val default_config : config
(** 50 000 ppm (5 %) threshold, 15-vote survey at {!Eric_puf.Env.stress},
    default enrollment config, reactivation on. *)

type outcome =
  | Healthy of { ppm : int }  (** under threshold; registry figure refreshed *)
  | Reenrolled of { before_ppm : int; after_ppm : int }
  | Upgraded of { ppm : int }  (** legacy entry given helper data *)
  | Failed of string  (** enrollment refused (die below the chain floor) *)

type report = {
  surveyed : int;
  healthy : int;
  reenrolled : int;
  upgraded : int;
  reactivated : int;
  failed : (Eric_puf.Device.id * string) list;
  devices : (Eric_puf.Device.id * outcome) list;  (** registry order *)
}

val run : ?engine:Eric_engine.Engine.config -> ?config:config -> Registry.t -> report
(** Surveys and enrollment passes run as {!Eric_engine.Engine} jobs
    ([engine], default deterministic); registry writes commit in device
    order, so both schedulers report identically. *)

val all_accounted : report -> bool
(** Every surveyed device landed in exactly one outcome bucket. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit
