(** Per-attempt channel models for deployment campaigns.

    {!Eric.Protocol.attack} describes what happens to one transmission;
    a campaign channel decides, deterministically from (device, attempt),
    which attack each delivery attempt suffers — so retry behaviour is
    reproducible run-to-run and directly testable. *)

type t

val name : t -> string
val attack : t -> device:Eric_puf.Device.id -> attempt:int -> Eric.Protocol.attack

val clean : t
(** Every attempt arrives intact. *)

val drop_first : ?flips:int -> int -> t
(** [drop_first n] corrupts ([flips] bit flips, default 3) the first [n]
    attempts to every device; attempt [n+1] is clean.  Deterministic
    recovery — the workhorse of retry tests. *)

val flaky : ?flips:int -> probability:float -> seed:int64 -> unit -> t
(** Each attempt is independently corrupted with [probability]; the draw
    is a pure function of (seed, device, attempt). *)

val always : Eric.Protocol.attack -> t
(** Every attempt suffers the same attack (e.g. a persistent
    man-in-the-middle); no retry can succeed. *)

val of_string : string -> (t, string) result
(** ["clean"], ["flaky:P[:SEED]"], or ["drop-first:N"] — the CLI's
    [--channel] syntax. *)
