(* Hash-partitioned sharded registry: a directory of per-shard EFRG
   files behind a tiny manifest.

   Manifest wire format (strict, like every ERIC container):

     off  size  field
     0    4     magic "EFRS"
     4    2     version (1)
     6    2     reserved (must be zero)
     8    4     shard count S (1..65535)
     12   4*S   per-shard entry counts (u32 each)

   Shard i lives in shard-%04d.efrg, a standard version-2 EFRG file; a
   missing shard file is an empty shard, so creating a sharded registry
   costs one manifest write regardless of S.  Opening reads the manifest
   only; shard files parse lazily on first touch and can be released
   (with write-back) to bound memory during fleet walks. *)

let magic = "EFRS"
let manifest_version = 1
let manifest_name = "MANIFEST"
let max_shards = 0xFFFF

type t = {
  dir : string;
  shards : int;
  counts : int array; (* live entry counts, persisted in the manifest *)
  opened : (int, Registry.t) Hashtbl.t;
  dirty : bool array;
  lock : Mutex.t;
}

let ( let* ) = Result.bind

(* splitmix64's finalizer: a stable, well-mixed device-id -> shard map
   so sequential factory ids spread evenly instead of striping. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let shard_of ~shards id =
  Int64.to_int (Int64.rem (Int64.logand (mix64 id) Int64.max_int) (Int64.of_int shards))

let shard_file dir i = Filename.concat dir (Printf.sprintf "shard-%04d.efrg" i)
let manifest_file dir = Filename.concat dir manifest_name

let is_sharded path =
  Sys.file_exists path && Sys.is_directory path && Sys.file_exists (manifest_file path)

let dir t = t.dir
let shards t = t.shards

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let count t = locked t (fun () -> Array.fold_left ( + ) 0 t.counts)

let check_index t i =
  if i < 0 || i >= t.shards then
    invalid_arg (Printf.sprintf "Registry_shard: shard %d out of range (0..%d)" i (t.shards - 1))

let shard_count t i =
  check_index t i;
  locked t (fun () -> t.counts.(i))

(* ------------------------------------------------------------------ *)
(* Manifest I/O                                                        *)
(* ------------------------------------------------------------------ *)

let manifest_bytes t =
  let b = Bytes.create (12 + (4 * t.shards)) in
  Bytes.blit_string magic 0 b 0 4;
  Eric_util.Bytesx.set_u16 b 4 manifest_version;
  Eric_util.Bytesx.set_u16 b 6 0;
  Eric_util.Bytesx.set_u32 b 8 (Int32.of_int t.shards);
  Array.iteri
    (fun i c -> Eric_util.Bytesx.set_u32 b (12 + (4 * i)) (Int32.of_int c))
    t.counts;
  b

let write_manifest t =
  let oc = open_out_bin (manifest_file t.dir) in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_bytes oc (manifest_bytes t))

let parse_manifest ~dir b =
  let len = Bytes.length b in
  let* () = if len >= 12 then Ok () else Error "manifest truncated" in
  let* () =
    if Bytes.sub_string b 0 4 = magic then Ok ()
    else Error "bad manifest magic (not a sharded ERIC registry)"
  in
  let v = Eric_util.Bytesx.get_u16 b 4 in
  let* () =
    if v = manifest_version then Ok ()
    else Error (Printf.sprintf "unsupported manifest version %d" v)
  in
  let* () = if Eric_util.Bytesx.get_u16 b 6 = 0 then Ok () else Error "reserved bytes set" in
  let s = Int32.to_int (Eric_util.Bytesx.get_u32 b 8) in
  let* () =
    if s >= 1 && s <= max_shards then Ok ()
    else Error (Printf.sprintf "shard count %d out of range" s)
  in
  let* () =
    if len = 12 + (4 * s) then Ok ()
    else Error (Printf.sprintf "manifest length %d does not match %d shard(s)" len s)
  in
  let counts = Array.init s (fun i -> Int32.to_int (Eric_util.Bytesx.get_u32 b (12 + (4 * i)))) in
  let* () =
    if Array.for_all (fun c -> c >= 0) counts then Ok () else Error "negative shard count"
  in
  Ok
    {
      dir;
      shards = s;
      counts;
      opened = Hashtbl.create 16;
      dirty = Array.make s false;
      lock = Mutex.create ();
    }

let create ~dir ~shards =
  if shards < 1 || shards > max_shards then
    Error (Printf.sprintf "shard count %d out of range (1..%d)" shards max_shards)
  else if is_sharded dir then Error (dir ^ ": already a sharded registry")
  else begin
    match
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      if not (Sys.is_directory dir) then Error (dir ^ ": not a directory")
      else begin
        let t =
          {
            dir;
            shards;
            counts = Array.make shards 0;
            opened = Hashtbl.create 16;
            dirty = Array.make shards false;
            lock = Mutex.create ();
          }
        in
        write_manifest t;
        Ok t
      end
    with
    | exception Unix.Unix_error (e, _, _) -> Error (dir ^ ": " ^ Unix.error_message e)
    | exception Sys_error msg -> Error msg
    | r -> r
  end

let observe_open_ns ~kind start =
  Eric_telemetry.Registry.observe
    ~labels:[ ("kind", kind) ]
    "fleet.registry.open_ns"
    (Int64.to_float (Int64.sub (Eric_telemetry.Clock.now_ns ()) start))

let load path =
  Eric_telemetry.Span.with_ ~cat:"fleet" ~name:"fleet.registry.open" (fun () ->
      let start = Eric_telemetry.Clock.now_ns () in
      let result =
        match
          let ic = open_in_bin (manifest_file path) in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with
        | exception Sys_error msg -> Error msg
        | data ->
          Result.map_error
            (fun e -> manifest_file path ^ ": " ^ e)
            (parse_manifest ~dir:path (Bytes.of_string data))
      in
      observe_open_ns ~kind:"manifest" start;
      result)

(* ------------------------------------------------------------------ *)
(* Lazy shard access                                                   *)
(* ------------------------------------------------------------------ *)

let open_shard t i =
  let path = shard_file t.dir i in
  let start = Eric_telemetry.Clock.now_ns () in
  let reg =
    if Sys.file_exists path then begin
      match Registry.load path with
      | Ok reg -> reg
      | Error e -> invalid_arg ("Registry_shard.shard: " ^ e)
    end
    else Registry.create ()
  in
  observe_open_ns ~kind:"shard" start;
  Eric_telemetry.Registry.inc "fleet.registry.shard.opens_total";
  reg

let shard t i =
  check_index t i;
  match locked t (fun () -> Hashtbl.find_opt t.opened i) with
  | Some reg ->
    Eric_telemetry.Registry.inc "fleet.registry.shard.hits_total";
    reg
  | None ->
    let reg = open_shard t i in
    locked t (fun () ->
        match Hashtbl.find_opt t.opened i with
        | Some reg' -> reg'
        | None ->
          Hashtbl.add t.opened i reg;
          t.counts.(i) <- Registry.count reg;
          reg)

let mark_dirty t i =
  check_index t i;
  locked t (fun () ->
      if not (Hashtbl.mem t.opened i) then
        invalid_arg (Printf.sprintf "Registry_shard.mark_dirty: shard %d is not open" i);
      t.dirty.(i) <- true)

let save_shard t i reg =
  Registry.save reg (shard_file t.dir i);
  t.counts.(i) <- Registry.count reg;
  t.dirty.(i) <- false

let save t =
  locked t (fun () ->
      Hashtbl.iter
        (fun i reg ->
          if t.dirty.(i) then save_shard t i reg
          else t.counts.(i) <- Registry.count reg)
        t.opened;
      write_manifest t)

let release t i =
  check_index t i;
  locked t (fun () ->
      match Hashtbl.find_opt t.opened i with
      | None -> ()
      | Some reg ->
        if t.dirty.(i) then begin
          save_shard t i reg;
          write_manifest t
        end;
        Hashtbl.remove t.opened i)

(* ------------------------------------------------------------------ *)
(* Entry operations (route to the owning shard)                        *)
(* ------------------------------------------------------------------ *)

let owner t id = shard t (shard_of ~shards:t.shards id)

let find t id = Registry.find (owner t id) id
let mem t id = Registry.mem (owner t id) id

let after_mutation t i r =
  if Result.is_ok r then
    locked t (fun () ->
        t.dirty.(i) <- true;
        t.counts.(i) <- t.counts.(i) + 1);
  r

let enroll ?epoch ?label ?enrollment t id =
  let i = shard_of ~shards:t.shards id in
  after_mutation t i (Registry.enroll ?epoch ?label ?enrollment (shard t i) id)

let enroll_legacy ?epoch ?label t id =
  let i = shard_of ~shards:t.shards id in
  after_mutation t i (Registry.enroll_legacy ?epoch ?label (shard t i) id)

let add t (e : Registry.entry) =
  let i = shard_of ~shards:t.shards e.Registry.device_id in
  after_mutation t i (Registry.add (shard t i) e)

let update t (e : Registry.entry) =
  let i = shard_of ~shards:t.shards e.Registry.device_id in
  Registry.update (shard t i) e;
  locked t (fun () -> t.dirty.(i) <- true)

let target ?env t (e : Registry.entry) =
  Registry.target ?env (owner t e.Registry.device_id) e

(* ------------------------------------------------------------------ *)
(* Whole-fleet traversal and conversion                                *)
(* ------------------------------------------------------------------ *)

let fold_entries t ~init ~f =
  let acc = ref init in
  for i = 0 to t.shards - 1 do
    match locked t (fun () -> Hashtbl.find_opt t.opened i) with
    | Some reg -> List.iter (fun e -> acc := f !acc e) (Registry.entries reg)
    | None ->
      let path = shard_file t.dir i in
      if Sys.file_exists path then begin
        match
          Registry.fold_file path ~init:() ~f:(fun () e ->
              acc := f !acc e;
              Ok ())
        with
        | Ok () -> ()
        | Error e -> invalid_arg ("Registry_shard.fold_entries: " ^ e)
      end
  done;
  !acc

let of_registry ~dir ~shards reg =
  let* t = create ~dir ~shards in
  let* () =
    List.fold_left
      (fun acc e ->
        let* () = acc in
        let* _ = add t e in
        Ok ())
      (Ok ()) (Registry.entries reg)
  in
  save t;
  Ok t

let migrate ~file ~dir ~shards =
  let* t = create ~dir ~shards in
  (* Stream: route each decoded entry straight to its shard's output
     channel (header written with count 0, patched at the end), so the
     single-file fleet is never resident. *)
  let outs = Array.make shards None in
  let out i =
    match outs.(i) with
    | Some oc -> oc
    | None ->
      let oc = open_out_bin (shard_file t.dir i) in
      output_bytes oc (Registry.header ~count:0);
      outs.(i) <- Some oc;
      oc
  in
  let close_all () =
    Array.iter (function Some oc -> close_out_noerr oc | None -> ()) outs
  in
  let seen = Hashtbl.create 1024 in
  let buf = Buffer.create 256 in
  let result =
    Fun.protect ~finally:close_all (fun () ->
        let* () =
          Registry.fold_file file ~init:() ~f:(fun () e ->
              if Hashtbl.mem seen e.Registry.device_id then
                Error
                  (Printf.sprintf "duplicate entry: device %Ld is already enrolled"
                     e.Registry.device_id)
              else begin
                Hashtbl.add seen e.Registry.device_id ();
                let i = shard_of ~shards e.Registry.device_id in
                Buffer.clear buf;
                Registry.serialize_entry buf e;
                Buffer.output_buffer (out i) buf;
                t.counts.(i) <- t.counts.(i) + 1;
                Ok ()
              end)
        in
        Array.iteri
          (fun i o ->
            match o with
            | None -> ()
            | Some oc ->
              seek_out oc 0;
              output_bytes oc (Registry.header ~count:t.counts.(i)))
          outs;
        Ok ())
  in
  match result with
  | Error e -> Error e
  | Ok () ->
    write_manifest t;
    Ok t

let to_registry t =
  let reg = Registry.create () in
  match
    fold_entries t ~init:(Ok ()) ~f:(fun acc e ->
        let* () = acc in
        let* _ = Registry.add reg e in
        Ok ())
  with
  | Ok () -> Ok reg
  | Error e -> Error e

let pp_summary fmt t =
  let total, active, quarantined =
    fold_entries t ~init:(0, 0, 0) ~f:(fun (n, a, q) e ->
        match e.Registry.status with
        | Registry.Active -> (n + 1, a + 1, q)
        | Registry.Quarantined _ -> (n + 1, a, q + 1))
  in
  Format.fprintf fmt "%d device(s) in %d shard(s), %d active, %d quarantined" total t.shards
    active quarantined
