type method_ = Local | Rsa of { bits : int; seed : int64 }

type report = {
  epoch : int;
  label : string option;
  method_ : method_;
  rotated : int;
  reactivated : int;
  failed : (Eric_puf.Device.id * string) list;
}

let count ?labels name =
  if Eric_telemetry.Control.is_enabled () then Eric_telemetry.Registry.inc ?labels name

let method_label = function Local -> "local" | Rsa _ -> "rsa"

let rotate ?(method_ = Local) ?label ~epoch registry =
  Eric_telemetry.Span.with_ ~cat:"fleet" ~name:"fleet.rotate" (fun () ->
      count "fleet.rotate.runs_total";
      let provision =
        match method_ with
        | Local -> fun target -> Ok (Eric.Protocol.provision target)
        | Rsa { bits; seed } ->
          let rng = Eric_util.Prng.create ~seed in
          let source_key = Eric_crypto.Rsa.generate ~bits rng in
          fun target -> Eric.Protocol.provision_over_network ~rng ~source_key target
      in
      let rotated = ref 0 and reactivated = ref 0 and failed = ref [] in
      List.iter
        (fun (entry : Registry.entry) ->
          let label = match label with Some l -> l | None -> entry.Registry.label in
          let context = { Eric.Kmu.epoch; label } in
          let target = Registry.target_for registry ~context entry.Registry.device_id in
          match provision target with
          | Ok key ->
            incr rotated;
            count ~labels:[ ("method", method_label method_) ] "fleet.rotate.rotated_total";
            (match entry.Registry.status with
            | Registry.Quarantined _ ->
              incr reactivated;
              count "fleet.rotate.reactivated_total"
            | Registry.Active -> ());
            Registry.update registry
              { entry with Registry.epoch; label; key; status = Registry.Active }
          | Error e ->
            count "fleet.rotate.failed_total";
            failed := (entry.Registry.device_id, e) :: !failed)
        (Registry.entries registry);
      {
        epoch;
        label;
        method_;
        rotated = !rotated;
        reactivated = !reactivated;
        failed = List.rev !failed;
      })

let pp_report fmt r =
  Format.fprintf fmt
    "rotation to epoch %d (%s%s): %d device(s) re-keyed, %d reactivated, %d failed"
    r.epoch (method_label r.method_)
    (match r.label with None -> "" | Some l -> ", label " ^ l)
    r.rotated r.reactivated (List.length r.failed);
  List.iter
    (fun (id, e) -> Format.fprintf fmt "@\n  device %Ld: %s" id e)
    r.failed
