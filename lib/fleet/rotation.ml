module Engine = Eric_engine.Engine
module Job = Eric_engine.Job

type method_ = Local | Rsa of { bits : int; seed : int64 }

type report = {
  epoch : int;
  label : string option;
  method_ : method_;
  rotated : int;
  reactivated : int;
  failed : (Eric_puf.Device.id * string) list;
}

let count ?labels name =
  if Eric_telemetry.Control.is_enabled () then Eric_telemetry.Registry.inc ?labels name

let method_label = function Local -> "local" | Rsa _ -> "rsa"

(* splitmix64's finalizer, used to fold a device id into the rotation
   seed: every device provisions from its own RNG stream, so domain
   workers never contend on (or reorder draws from) a shared generator
   and both schedulers see identical ciphertexts. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rotate ?(engine = Engine.default_config) ?(method_ = Local) ?label ~epoch registry =
  Eric_telemetry.Span.with_ ~cat:"fleet" ~name:"fleet.rotate" (fun () ->
      count "fleet.rotate.runs_total";
      let provision =
        match method_ with
        | Local -> fun (_ : Registry.entry) target -> Eric.Protocol.provision target
        | Rsa { bits; seed } ->
          (* the source's RSA identity is one key for the whole rotation;
             only the per-handshake randomness is per-device *)
          let source_key = Eric_crypto.Rsa.generate ~bits (Eric_util.Prng.create ~seed) in
          fun (entry : Registry.entry) target ->
            let rng =
              Eric_util.Prng.create ~seed:(mix64 (Int64.logxor seed entry.Registry.device_id))
            in
            match Eric.Protocol.provision_over_network ~rng ~source_key target with
            | Ok key -> key
            | Error e -> raise (Failure e)
      in
      let items = Array.of_list (Registry.entries registry) in
      let spec =
        {
          Job.admit = Job.always_admit;
          prepare =
            (fun (entry : Registry.entry) ->
              let label = match label with Some l -> l | None -> entry.Registry.label in
              let context = { Eric.Kmu.epoch; label } in
              Ok (entry, label, Registry.target_for registry ~context entry.Registry.device_id));
          personalize = (fun x -> Ok x);
          ship =
            (fun (entry, label, target) ->
              match provision entry target with
              | key -> Ok (entry, label, key)
              | exception Failure e -> Error (Job.fault Job.Ship e));
          verify = (fun r -> Ok r);
        }
      in
      let rotated = ref 0 and reactivated = ref 0 and failed = ref [] in
      let commit (c : _ Engine.completion) =
        let entry = items.(c.Engine.c_index) in
        match c.Engine.c_outcome with
        | Job.Done ((entry : Registry.entry), label, key) ->
          incr rotated;
          count ~labels:[ ("method", method_label method_) ] "fleet.rotate.rotated_total";
          (match entry.Registry.status with
          | Registry.Quarantined _ ->
            incr reactivated;
            count "fleet.rotate.reactivated_total"
          | Registry.Active -> ());
          Registry.update registry
            { entry with Registry.epoch; label; key; status = Registry.Active }
        | Job.Faulted f ->
          count "fleet.rotate.failed_total";
          failed := (entry.Registry.device_id, f.Job.f_reason) :: !failed
        | Job.Skipped _ -> ()
      in
      let (_ : _ Engine.report) =
        Engine.run ~config:engine ~commit ~name:"fleet.rotate" spec items
      in
      {
        epoch;
        label;
        method_;
        rotated = !rotated;
        reactivated = !reactivated;
        failed = List.rev !failed;
      })

let pp_report fmt r =
  Format.fprintf fmt
    "rotation to epoch %d (%s%s): %d device(s) re-keyed, %d reactivated, %d failed"
    r.epoch (method_label r.method_)
    (match r.label with None -> "" | Some l -> ", label " ^ l)
    r.rotated r.reactivated (List.length r.failed);
  List.iter
    (fun (id, e) -> Format.fprintf fmt "@\n  device %Ld: %s" id e)
    r.failed
