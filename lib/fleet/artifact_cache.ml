type outcome = Memory_hit | Disk_hit | Miss

let outcome_label = function Memory_hit -> "hit" | Disk_hit -> "disk" | Miss -> "miss"

type t = {
  dir : string option;
  table : (string, Eric.Source.prepared) Hashtbl.t;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
}

let create ?dir () =
  Option.iter (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755) dir;
  { dir; table = Hashtbl.create 8; hits = 0; disk_hits = 0; misses = 0 }

let hits t = t.hits
let disk_hits t = t.disk_hits
let misses t = t.misses
let lookups t = t.hits + t.disk_hits + t.misses

let hit_rate t =
  let n = lookups t in
  if n = 0 then 0.0 else float_of_int (t.hits + t.disk_hits) /. float_of_int n

(* The cache key must change whenever the compiler would emit different
   bytes (options) or the package layout/selection would differ (mode,
   including selection seeds), so every component is spelled into the
   digest input explicitly. *)
let selection_fingerprint = function
  | Eric.Config.Select_all -> "all"
  | Eric.Config.Select_fraction { fraction; seed } -> Printf.sprintf "frac=%h,seed=%Ld" fraction seed
  | Eric.Config.Select_ranges ranges ->
    "ranges="
    ^ String.concat "," (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) ranges)

let mode_fingerprint = function
  | Eric.Config.Full -> "full"
  | Eric.Config.Partial sel -> "partial:" ^ selection_fingerprint sel
  | Eric.Config.Field (Eric.Config.Imm_fields, sel) -> "field-imm:" ^ selection_fingerprint sel
  | Eric.Config.Field (Eric.Config.All_but_opcode, sel) ->
    "field-abo:" ^ selection_fingerprint sel
  | Eric.Config.Field (Eric.Config.Control_flow, sel) ->
    "field-cf:" ^ selection_fingerprint sel

let options_fingerprint (o : Eric_cc.Driver.options) =
  Printf.sprintf "optimize=%b,compress=%b,prelude=%b,verify=%b,transform=%s"
    o.Eric_cc.Driver.optimize o.Eric_cc.Driver.compress o.Eric_cc.Driver.include_prelude
    o.Eric_cc.Driver.verify_ir
    (match o.Eric_cc.Driver.transform with
    | None -> "none"
    | Some t -> t.Eric_cc.Driver.t_tag)

let digest ~options ~mode source =
  Eric_crypto.Sha256.hex
    (Eric_crypto.Sha256.digest_string
       (String.concat "\x00"
          [ "eric-artifact-v1"; options_fingerprint options; mode_fingerprint mode; source ]))

let count_event t outcome =
  (match outcome with
  | Memory_hit -> t.hits <- t.hits + 1
  | Disk_hit -> t.disk_hits <- t.disk_hits + 1
  | Miss -> t.misses <- t.misses + 1);
  if Eric_telemetry.Control.is_enabled () then
    Eric_telemetry.Registry.inc
      ~labels:[ ("result", outcome_label outcome) ]
      "fleet.cache.events_total"

let image_path t key = Option.map (fun dir -> Filename.concat dir (key ^ ".rexe")) t.dir

let read_image path =
  if not (Sys.file_exists path) then None
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error _ -> None
    | data -> Result.to_option (Eric_rv.Program.of_binary (Bytes.of_string data))

let write_image path image =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (Eric_rv.Program.to_binary image))

let get_or_compile t ?(options = Eric_cc.Driver.default_options) ~mode source =
  let key = digest ~options ~mode source in
  match Hashtbl.find_opt t.table key with
  | Some prepared ->
    count_event t Memory_hit;
    Ok (prepared, Memory_hit)
  | None -> (
    (* Disk tier: the compiled image survives across processes; only the
       (cheap relative to compilation) prepare step reruns. *)
    match Option.bind (image_path t key) read_image with
    | Some image ->
      let prepared = Eric.Source.prepare_image ~mode image in
      Hashtbl.replace t.table key prepared;
      count_event t Disk_hit;
      Ok (prepared, Disk_hit)
    | None -> (
      match Eric.Source.prepare ~options ~mode source with
      | Error _ as e -> e
      | Ok prepared ->
        Hashtbl.replace t.table key prepared;
        Option.iter
          (fun path -> write_image path prepared.Eric.Source.p_image)
          (image_path t key);
        count_event t Miss;
        Ok (prepared, Miss)))
