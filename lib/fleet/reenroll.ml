(* Field re-enrollment: the maintenance campaign that keeps a fleet's
   helper data ahead of silicon drift.  Survey every device's enrolled
   challenges at a stress corner; devices whose instability exceeds the
   threshold — and devices already quarantined for key-reconstruction
   failure — get a fresh enrollment pass (new helper data, new derived
   key under their existing KMU context).  Legacy entries without helper
   data are upgraded to the fuzzy-extractor boot path.

   Surveys and enrollment passes run as engine jobs (each touches only
   its own device's PUF noise stream); registry writes and counters are
   committed in device order, so the deterministic and domain schedulers
   report identically. *)

module Engine = Eric_engine.Engine
module Job = Eric_engine.Job

type config = {
  threshold_ppm : int;
  survey_votes : int;
  survey_env : Eric_puf.Env.t;
  enroll : Eric_puf.Enroll.config;
  reactivate : bool;
}

let default_config =
  {
    threshold_ppm = 50_000 (* 5 % worst-bit instability *);
    survey_votes = 15;
    survey_env = Eric_puf.Env.stress;
    enroll = Eric_puf.Enroll.default_config;
    reactivate = true;
  }

type outcome =
  | Healthy of { ppm : int }
  | Reenrolled of { before_ppm : int; after_ppm : int }
  | Upgraded of { ppm : int }  (* legacy entry given helper data *)
  | Failed of string

type report = {
  surveyed : int;
  healthy : int;
  reenrolled : int;
  upgraded : int;
  reactivated : int;
  failed : (Eric_puf.Device.id * string) list;
  devices : (Eric_puf.Device.id * outcome) list;
}

let count ?labels name =
  if Eric_telemetry.Control.is_enabled () then Eric_telemetry.Registry.inc ?labels name

let key_reconstruction_quarantine = function
  | Registry.Quarantined reason ->
    reason = Shipper.quarantine_label Shipper.Key_reconstruction_failed
  | Registry.Active -> false

let survey_ppm config registry (entry : Registry.entry) helper =
  let worst =
    Eric_puf.Enroll.survey ~votes:config.survey_votes ~env:config.survey_env
      (Registry.device registry entry.Registry.device_id)
      helper
  in
  int_of_float (Float.round (worst *. 1_000_000.0))

(* Compute the re-enrolled entry without writing it — the commit phase
   owns registry mutation. *)
let reenroll_entry config registry (entry : Registry.entry) ~was_quarantined =
  let device = Registry.device registry entry.Registry.device_id in
  match Eric_puf.Enroll.enroll ~config:config.enroll device with
  | Error e -> Error e
  | Ok e ->
    let key = Eric.Kmu.derive ~puf_key:e.Eric_puf.Enroll.key (Registry.context entry) in
    let status =
      if was_quarantined && config.reactivate then Registry.Active
      else entry.Registry.status
    in
    let after_ppm =
      int_of_float (Float.round (e.Eric_puf.Enroll.worst_instability *. 1_000_000.0))
    in
    Ok
      ( {
          entry with
          Registry.key;
          helper = Some e.Eric_puf.Enroll.helper;
          instability_ppm = after_ppm;
          status;
        },
        after_ppm )

(* What the commit phase applies for one device. *)
type action =
  | Keep_healthy of { ppm : int }
  | Apply of {
      entry' : Registry.entry;
      before_ppm : int option;  (* None = legacy upgrade *)
      after_ppm : int;
      was_quarantined : bool;
    }

let run ?(engine = Engine.default_config) ?(config = default_config) registry =
  Eric_telemetry.Span.with_ ~cat:"fleet" ~name:"fleet.reenroll" (fun () ->
      count "fleet.reenroll.runs_total";
      let items = Array.of_list (Registry.entries registry) in
      let spec =
        {
          Job.admit = Job.always_admit;
          prepare =
            (fun (entry : Registry.entry) ->
              Ok (entry, key_reconstruction_quarantine entry.Registry.status));
          (* survey the enrolled challenges (helper entries only) *)
          personalize =
            (fun ((entry : Registry.entry), was_quarantined) ->
              match entry.Registry.helper with
              | None -> Ok (entry, was_quarantined, None)
              | Some helper ->
                Ok (entry, was_quarantined, Some (survey_ppm config registry entry helper)));
          (* re-enroll when the survey (or a standing quarantine) says so *)
          ship =
            (fun ((entry : Registry.entry), was_quarantined, before_ppm) ->
              match before_ppm with
              | Some ppm when ppm <= config.threshold_ppm && not was_quarantined ->
                Ok (Keep_healthy { ppm })
              | _ -> (
                match reenroll_entry config registry entry ~was_quarantined with
                | Error e -> Error (Job.fault Job.Ship e)
                | Ok (entry', after_ppm) ->
                  Ok (Apply { entry'; before_ppm; after_ppm; was_quarantined })));
          verify = (fun r -> Ok r);
        }
      in
      let healthy = ref 0 and reenrolled = ref 0 and upgraded = ref 0 in
      let reactivated = ref 0 and failed = ref [] and rev_devices = ref [] in
      let commit (c : _ Engine.completion) =
        let entry = items.(c.Engine.c_index) in
        let id = entry.Registry.device_id in
        count "fleet.reenroll.surveyed_total";
        let outcome =
          match c.Engine.c_outcome with
          | Job.Done (Keep_healthy { ppm }) ->
            incr healthy;
            count "fleet.reenroll.healthy_total";
            (* Keep the registry's health figure current even when no
               action is needed. *)
            Registry.update registry { entry with Registry.instability_ppm = ppm };
            Healthy { ppm }
          | Job.Done (Apply { entry'; before_ppm = None; after_ppm; _ }) ->
            Registry.update registry entry';
            incr upgraded;
            count "fleet.reenroll.upgraded_total";
            Upgraded { ppm = after_ppm }
          | Job.Done (Apply { entry'; before_ppm = Some before_ppm; after_ppm; was_quarantined })
            ->
            Registry.update registry entry';
            incr reenrolled;
            count "fleet.reenroll.reenrolled_total";
            if was_quarantined && config.reactivate then begin
              incr reactivated;
              count "fleet.reenroll.reactivated_total"
            end;
            Reenrolled { before_ppm; after_ppm }
          | Job.Faulted f ->
            count "fleet.reenroll.failed_total";
            failed := (id, f.Job.f_reason) :: !failed;
            Failed f.Job.f_reason
          | Job.Skipped reason -> Failed ("skipped: " ^ reason)
        in
        rev_devices := (id, outcome) :: !rev_devices
      in
      let (_ : _ Engine.report) =
        Engine.run ~config:engine ~commit ~name:"fleet.reenroll" spec items
      in
      let devices = List.rev !rev_devices in
      {
        surveyed = List.length devices;
        healthy = !healthy;
        reenrolled = !reenrolled;
        upgraded = !upgraded;
        reactivated = !reactivated;
        failed = List.rev !failed;
        devices;
      })

let all_accounted r =
  r.healthy + r.reenrolled + r.upgraded + List.length r.failed = r.surveyed

let pp_outcome fmt = function
  | Healthy { ppm } -> Format.fprintf fmt "healthy (%d ppm)" ppm
  | Reenrolled { before_ppm; after_ppm } ->
    Format.fprintf fmt "re-enrolled (%d -> %d ppm)" before_ppm after_ppm
  | Upgraded { ppm } -> Format.fprintf fmt "upgraded to helper boot (%d ppm)" ppm
  | Failed e -> Format.fprintf fmt "failed: %s" e

let pp_report fmt r =
  Format.fprintf fmt
    "re-enrollment: %d surveyed, %d healthy, %d re-enrolled, %d upgraded, %d reactivated, %d failed"
    r.surveyed r.healthy r.reenrolled r.upgraded r.reactivated (List.length r.failed);
  List.iter
    (fun (id, outcome) -> Format.fprintf fmt "@\n  device %Ld: %a" id pp_outcome outcome)
    r.devices
