(* Field re-enrollment: the maintenance campaign that keeps a fleet's
   helper data ahead of silicon drift.  Survey every device's enrolled
   challenges at a stress corner; devices whose instability exceeds the
   threshold — and devices already quarantined for key-reconstruction
   failure — get a fresh enrollment pass (new helper data, new derived
   key under their existing KMU context).  Legacy entries without helper
   data are upgraded to the fuzzy-extractor boot path. *)

type config = {
  threshold_ppm : int;
  survey_votes : int;
  survey_env : Eric_puf.Env.t;
  enroll : Eric_puf.Enroll.config;
  reactivate : bool;
}

let default_config =
  {
    threshold_ppm = 50_000 (* 5 % worst-bit instability *);
    survey_votes = 15;
    survey_env = Eric_puf.Env.stress;
    enroll = Eric_puf.Enroll.default_config;
    reactivate = true;
  }

type outcome =
  | Healthy of { ppm : int }
  | Reenrolled of { before_ppm : int; after_ppm : int }
  | Upgraded of { ppm : int }  (* legacy entry given helper data *)
  | Failed of string

type report = {
  surveyed : int;
  healthy : int;
  reenrolled : int;
  upgraded : int;
  reactivated : int;
  failed : (Eric_puf.Device.id * string) list;
  devices : (Eric_puf.Device.id * outcome) list;
}

let count ?labels name =
  if Eric_telemetry.Control.is_enabled () then Eric_telemetry.Registry.inc ?labels name

let key_reconstruction_quarantine = function
  | Registry.Quarantined reason ->
    reason = Shipper.quarantine_label Shipper.Key_reconstruction_failed
  | Registry.Active -> false

let survey_ppm config registry (entry : Registry.entry) helper =
  let worst =
    Eric_puf.Enroll.survey ~votes:config.survey_votes ~env:config.survey_env
      (Registry.device registry entry.Registry.device_id)
      helper
  in
  int_of_float (Float.round (worst *. 1_000_000.0))

let reenroll_entry config registry (entry : Registry.entry) ~was_quarantined =
  let device = Registry.device registry entry.Registry.device_id in
  match Eric_puf.Enroll.enroll ~config:config.enroll device with
  | Error e -> Error e
  | Ok e ->
    let key = Eric.Kmu.derive ~puf_key:e.Eric_puf.Enroll.key (Registry.context entry) in
    let status =
      if was_quarantined && config.reactivate then Registry.Active
      else entry.Registry.status
    in
    let after_ppm =
      int_of_float (Float.round (e.Eric_puf.Enroll.worst_instability *. 1_000_000.0))
    in
    Registry.update registry
      {
        entry with
        Registry.key;
        helper = Some e.Eric_puf.Enroll.helper;
        instability_ppm = after_ppm;
        status;
      };
    Ok after_ppm

let run ?(config = default_config) registry =
  Eric_telemetry.Span.with_ ~cat:"fleet" ~name:"fleet.reenroll" (fun () ->
      count "fleet.reenroll.runs_total";
      let healthy = ref 0 and reenrolled = ref 0 and upgraded = ref 0 in
      let reactivated = ref 0 and failed = ref [] in
      let devices =
        List.map
          (fun (entry : Registry.entry) ->
            count "fleet.reenroll.surveyed_total";
            let id = entry.Registry.device_id in
            let was_quarantined = key_reconstruction_quarantine entry.Registry.status in
            let outcome =
              match entry.Registry.helper with
              | None -> begin
                match reenroll_entry config registry entry ~was_quarantined with
                | Ok ppm ->
                  incr upgraded;
                  count "fleet.reenroll.upgraded_total";
                  Upgraded { ppm }
                | Error e ->
                  count "fleet.reenroll.failed_total";
                  failed := (id, e) :: !failed;
                  Failed e
              end
              | Some helper ->
                let before_ppm = survey_ppm config registry entry helper in
                if before_ppm <= config.threshold_ppm && not was_quarantined then begin
                  incr healthy;
                  count "fleet.reenroll.healthy_total";
                  (* Keep the registry's health figure current even when no
                     action is needed. *)
                  Registry.update registry
                    { entry with Registry.instability_ppm = before_ppm };
                  Healthy { ppm = before_ppm }
                end
                else begin
                  match reenroll_entry config registry entry ~was_quarantined with
                  | Ok after_ppm ->
                    incr reenrolled;
                    count "fleet.reenroll.reenrolled_total";
                    if was_quarantined && config.reactivate then begin
                      incr reactivated;
                      count "fleet.reenroll.reactivated_total"
                    end;
                    Reenrolled { before_ppm; after_ppm }
                  | Error e ->
                    count "fleet.reenroll.failed_total";
                    failed := (id, e) :: !failed;
                    Failed e
                end
            in
            (id, outcome))
          (Registry.entries registry)
      in
      {
        surveyed = List.length devices;
        healthy = !healthy;
        reenrolled = !reenrolled;
        upgraded = !upgraded;
        reactivated = !reactivated;
        failed = List.rev !failed;
        devices;
      })

let all_accounted r =
  r.healthy + r.reenrolled + r.upgraded + List.length r.failed = r.surveyed

let pp_outcome fmt = function
  | Healthy { ppm } -> Format.fprintf fmt "healthy (%d ppm)" ppm
  | Reenrolled { before_ppm; after_ppm } ->
    Format.fprintf fmt "re-enrolled (%d -> %d ppm)" before_ppm after_ppm
  | Upgraded { ppm } -> Format.fprintf fmt "upgraded to helper boot (%d ppm)" ppm
  | Failed e -> Format.fprintf fmt "failed: %s" e

let pp_report fmt r =
  Format.fprintf fmt
    "re-enrollment: %d surveyed, %d healthy, %d re-enrolled, %d upgraded, %d reactivated, %d failed"
    r.surveyed r.healthy r.reenrolled r.upgraded r.reactivated (List.length r.failed);
  List.iter
    (fun (id, outcome) -> Format.fprintf fmt "@\n  device %Ld: %a" id pp_outcome outcome)
    r.devices
