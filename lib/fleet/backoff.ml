type policy = {
  max_attempts : int;
  base_delay_ns : int64;
  multiplier : int;
  max_delay_ns : int64;
  quarantine_refusals : int;
}

let default =
  {
    max_attempts = 5;
    base_delay_ns = 1_000_000L;
    (* 1 ms *)
    multiplier = 2;
    max_delay_ns = 1_000_000_000L;
    (* 1 s cap *)
    quarantine_refusals = 4;
  }

let validate p =
  if p.max_attempts < 1 then Error "max_attempts must be at least 1"
  else if Int64.compare p.base_delay_ns 0L < 0 then Error "base_delay_ns must be non-negative"
  else if p.multiplier < 1 then Error "multiplier must be at least 1"
  else if p.quarantine_refusals < 1 then Error "quarantine_refusals must be at least 1"
  else Ok p

let delay_ns p ~retry =
  if retry < 1 then invalid_arg "Backoff.delay_ns: retry is 1-based";
  let rec go d i =
    (* saturate at the cap; also guards against Int64 overflow flipping sign *)
    if i <= 1 || Int64.compare d p.max_delay_ns >= 0 || Int64.compare d 0L < 0 then d
    else go (Int64.mul d (Int64.of_int p.multiplier)) (i - 1)
  in
  let d = go p.base_delay_ns retry in
  if Int64.compare d p.max_delay_ns > 0 || Int64.compare d 0L < 0 then p.max_delay_ns else d

let total_backoff_ns p ~retries =
  let rec go acc i =
    if i > retries then acc else go (Int64.add acc (delay_ns p ~retry:i)) (i + 1)
  in
  go 0L 1
