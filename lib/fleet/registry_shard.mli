(** Hash-partitioned, lazily opened view of a device registry.

    A sharded registry is a directory holding a tiny [MANIFEST] (magic
    ["EFRS"]: shard count and per-shard entry counts) plus one standard
    EFRG file per shard ([shard-0000.efrg], ...).  Devices map to shards
    by a stable mix of the device id, so the same id lands in the same
    shard across processes and fleet sizes.

    Opening a sharded registry reads only the manifest — O(shards), not
    O(devices) — and each shard file is parsed on first touch (and can
    be released again), so a campaign that walks the fleet shard by
    shard never holds more than one shard's entries in memory.  Shard
    files stream through {!Registry.fold_file}'s cursor when iterated
    without being kept open.

    Layout and migration are documented in [docs/fleet.md]. *)

type t

val magic : string
(** ["EFRS"], the manifest magic. *)

val manifest_name : string
(** ["MANIFEST"], the manifest's file name inside the directory. *)

val max_shards : int

val shard_of : shards:int -> Eric_puf.Device.id -> int
(** Stable device-id → shard mapping (a splitmix64-style bit mix, mod
    [shards]).  Pure: identical across processes and runs. *)

val shard_file : string -> int -> string
(** [shard_file dir i] is the path of shard [i]'s EFRG file. *)

val is_sharded : string -> bool
(** True when [path] is a directory containing a manifest — how front
    ends tell a sharded registry from a single-file one. *)

val create : dir:string -> shards:int -> (t, string) result
(** Make [dir] (which must not already contain a manifest) a fresh empty
    sharded registry.  Shard files are not written until they hold
    entries. *)

val load : string -> (t, string) result
(** Open by reading the manifest only; no shard file is touched.
    Observes [fleet.registry.open_ns{kind="manifest"}]. *)

val save : t -> unit
(** Write every dirty shard and the manifest; clean shards are not
    rewritten. *)

val dir : t -> string
val shards : t -> int
val count : t -> int
(** Total enrolled devices, from the per-shard counts — no shard is
    opened. *)

val shard_count : t -> int -> int
(** Entries in one shard, from the manifest/live counts. *)

val shard : t -> int -> Registry.t
(** The shard's registry, parsed from its file on first touch and
    memoized.  Observes [fleet.registry.open_ns{kind="shard"}] on a real
    open and counts [fleet.registry.shard.opens_total] /
    [fleet.registry.shard.hits_total].
    @raise Invalid_argument on a shard index out of range, or a shard
    file that fails to parse (a corrupt shard is a refused registry). *)

val mark_dirty : t -> int -> unit
(** Record that shard [i]'s registry was mutated directly (e.g. by
    {!Registry.update} during a campaign) so {!save} and
    {!release} write it back. *)

val release : t -> int -> unit
(** Drop shard [i] from memory, writing it back first if dirty — the
    bounded-memory knob for shard-by-shard fleet walks. *)

val find : t -> Eric_puf.Device.id -> Registry.entry option
val mem : t -> Eric_puf.Device.id -> bool

val enroll :
  ?epoch:int -> ?label:string -> ?enrollment:Eric_puf.Enroll.enrollment ->
  t -> Eric_puf.Device.id -> (Registry.entry, string) result

val enroll_legacy :
  ?epoch:int -> ?label:string -> t -> Eric_puf.Device.id ->
  (Registry.entry, string) result

val add : t -> Registry.entry -> (Registry.entry, string) result
val update : t -> Registry.entry -> unit

val target :
  ?env:Eric_puf.Env.t -> t -> Registry.entry -> Eric.Target.t
(** Delegates to the owning shard's memoized boot. *)

val fold_entries : t -> init:'acc -> f:('acc -> Registry.entry -> 'acc) -> 'acc
(** Every entry, shard-major order.  Open shards iterate in memory;
    closed shards stream from disk entry by entry and are {e not} left
    open — a full-fleet scan at one-shard memory cost. *)

val of_registry : dir:string -> shards:int -> Registry.t -> (t, string) result
(** Shard an in-memory registry into [dir]. *)

val migrate : file:string -> dir:string -> shards:int -> (t, string) result
(** Stream a single-file registry (any supported version) into a fresh
    sharded one without materializing it: entries are routed and
    appended to per-shard files as they decode, and each shard header's
    count is patched once the file is fully consumed.  Duplicate device
    ids fail the migration, matching {!Registry.parse}. *)

val to_registry : t -> (Registry.t, string) result
(** Merge every shard into one in-memory registry (shard-major order) —
    the equivalence witness the property tests compare against. *)

val pp_summary : Format.formatter -> t -> unit
