type t = {
  name : string;
  plan : device:Eric_puf.Device.id -> attempt:int -> Eric.Protocol.attack;
}

let name t = t.name
let attack t ~device ~attempt = t.plan ~device ~attempt

let clean = { name = "clean"; plan = (fun ~device:_ ~attempt:_ -> Eric.Protocol.No_attack) }

(* Mix device identity and attempt number into one seed so each
   (device, attempt) pair sees an independent — but reproducible — draw. *)
let mix ~seed ~device ~attempt =
  let golden = 0x9E3779B97F4A7C15L in
  Int64.logxor seed
    (Int64.add (Int64.mul device golden) (Int64.mul (Int64.of_int attempt) 0xBF58476D1CE4E5B9L))

let drop_first ?(flips = 3) n =
  {
    name = Printf.sprintf "drop-first:%d" n;
    plan =
      (fun ~device ~attempt ->
        if attempt <= n then
          Eric.Protocol.Bit_flips { count = flips; seed = mix ~seed:0L ~device ~attempt }
        else Eric.Protocol.No_attack);
  }

let flaky ?(flips = 3) ~probability ~seed () =
  if not (probability >= 0.0 && probability <= 1.0) then
    invalid_arg "Channel.flaky: probability must be within [0, 1]";
  {
    name = Printf.sprintf "flaky:%g" probability;
    plan =
      (fun ~device ~attempt ->
        let s = mix ~seed ~device ~attempt in
        let rng = Eric_util.Prng.create ~seed:s in
        if Eric_util.Prng.float rng < probability then
          Eric.Protocol.Bit_flips { count = flips; seed = s }
        else Eric.Protocol.No_attack);
  }

let always attack = { name = "always"; plan = (fun ~device:_ ~attempt:_ -> attack) }

let of_string s =
  match String.split_on_char ':' s with
  | [ "clean" ] -> Ok clean
  | [ "drop-first"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 0 -> Ok (drop_first n)
    | _ -> Error "drop-first:<non-negative attempt count>")
  | "flaky" :: p :: rest -> (
    let seed =
      match rest with
      | [] -> Some 1L
      | [ s ] -> Int64.of_string_opt s
      | _ -> None
    in
    match (float_of_string_opt p, seed) with
    | Some p, Some seed when p >= 0.0 && p <= 1.0 -> Ok (flaky ~probability:p ~seed ())
    | _ -> Error "flaky:<probability in 0..1>[:<seed>]")
  | _ -> Error (Printf.sprintf "unknown channel %S (expected clean, flaky:p[:seed] or drop-first:n)" s)
