(** Deployment campaigns: one workload, the whole registry.

    A campaign compiles + signs + lays out the workload {e once} (through
    the {!Artifact_cache}, so a repeat campaign skips even that), then
    personalizes and ships a package per active device, retrying over the
    configured channel per the backoff policy.  Devices that were
    quarantined before the campaign are skipped (and reported as such);
    devices the shipper quarantines are flagged in the registry; every
    device appears in the report — none is silently dropped
    ({!all_accounted}).

    Successful devices have their [firmware_epoch] stamped.

    Telemetry: [fleet.campaign.runs_total], [fleet.campaign.devices_total],
    [fleet.campaign.delivered_total], [fleet.campaign.retried_total],
    [fleet.campaign.quarantined_total], [fleet.campaign.skipped_total] and
    the [fleet.campaign.personalize_ns] histogram, on top of the
    [fleet.cache.*] and [fleet.ship.*] families recorded by the stages. *)

type config = {
  options : Eric_cc.Driver.options;
  mode : Eric.Config.mode;
  policy : Backoff.policy;
  channel : Channel.t;
  execute : bool;  (** run each validated package on its device's SoC *)
  fuel : int option;
  firmware_epoch : int option;
      (** epoch stamped on delivered devices; default: 1 + the registry's
          highest firmware epoch *)
}

val default_config : config

type device_result =
  | Shipped of Shipper.delivery
  | Skipped of string  (** quarantine reason recorded before the campaign *)

type report = {
  digest : string;  (** artifact-cache key of the campaign input *)
  cache : Artifact_cache.outcome;
  firmware_epoch : int;
  devices : (Registry.entry * device_result) list;  (** entry state {e before} the campaign *)
  delivered : int;
  retried : int;  (** delivered, but needing at least one retry *)
  quarantined : int;  (** newly quarantined by this campaign *)
  skipped : int;
  wire_bytes : int;
  load_cycles : int64;
  backoff_ns : int64;
  personalize_ns : int64;
  campaign_ns : int64;
}

val deploy :
  ?config:config ->
  cache:Artifact_cache.t ->
  registry:Registry.t ->
  string ->
  (report, string) result
(** [Error] only for compilation failure of the source; per-device
    failures land in the report, not in [Error]. *)

val all_accounted : report -> bool
(** delivered + quarantined + skipped = every device in the registry. *)

val next_firmware_epoch : Registry.t -> int

val pp_report : Format.formatter -> report -> unit
val pp_devices : Format.formatter -> report -> unit
