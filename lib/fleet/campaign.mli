(** Deployment campaigns: one workload, the whole registry.

    A campaign compiles + signs + lays out the workload {e once} (through
    the {!Artifact_cache}, so a repeat campaign skips even that), then
    personalizes and ships a package per active device, retrying over the
    configured channel per the backoff policy.  Devices that were
    quarantined before the campaign are skipped (and reported as such);
    devices the shipper quarantines are flagged in the registry; every
    device appears in the report — none is silently dropped
    ({!all_accounted}).

    Successful devices have their [firmware_epoch] stamped.

    Per-device work runs on the {!Eric_engine.Engine} work queue
    ([config.engine] picks the scheduler and in-flight window); registry
    updates are committed in device order on the engine's thread, so the
    deterministic and domain schedulers produce identical reports.

    Telemetry: [fleet.campaign.runs_total], [fleet.campaign.devices_total],
    [fleet.campaign.delivered_total], [fleet.campaign.retried_total],
    [fleet.campaign.quarantined_total], [fleet.campaign.skipped_total] and
    the [fleet.campaign.personalize_ns] histogram, on top of the
    [fleet.cache.*], [fleet.ship.*] and [engine.*] families recorded by
    the stages. *)

type config = {
  options : Eric_cc.Driver.options;
  mode : Eric.Config.mode;
  policy : Backoff.policy;
  channel : Channel.t;
  execute : bool;  (** run each validated package on its device's SoC *)
  fuel : int option;
  firmware_epoch : int option;
      (** epoch stamped on delivered devices; default: 1 + the registry's
          highest firmware epoch *)
  engine : Eric_engine.Engine.config;
      (** scheduler and window for the per-device work queue *)
}

val default_config : config

type device_result =
  | Shipped of Shipper.delivery
  | Skipped of string  (** quarantine reason recorded before the campaign *)

type report = {
  digest : string;  (** artifact-cache key of the campaign input *)
  cache : Artifact_cache.outcome;
  firmware_epoch : int;
  scheduler_used : string;  (** {!Eric_engine.Engine.report}'s [scheduler_used] *)
  devices : (Registry.entry * device_result) list;  (** entry state {e before} the campaign *)
  delivered : int;
  retried : int;  (** delivered, but needing at least one retry *)
  quarantined : int;  (** newly quarantined by this campaign *)
  skipped : int;
  wire_bytes : int;
  load_cycles : int64;
  backoff_ns : int64;
  personalize_ns : int64;
  campaign_ns : int64;
}

val deploy :
  ?config:config ->
  cache:Artifact_cache.t ->
  registry:Registry.t ->
  string ->
  (report, string) result
(** [Error] only for compilation failure of the source; per-device
    failures land in the report, not in [Error]. *)

val deploy_sharded :
  ?config:config ->
  cache:Artifact_cache.t ->
  shards:Registry_shard.t ->
  string ->
  (report, string) result
(** The same campaign over a sharded registry, shard by shard: each
    shard is opened lazily, deployed, written back and released before
    the next opens, so peak memory is one shard regardless of fleet
    size.  The firmware epoch is fixed across shards up front; the
    merged report lists devices in shard-major order. *)

val all_accounted : report -> bool
(** delivered + quarantined + skipped = every device in the registry. *)

val next_firmware_epoch : Registry.t -> int

val pp_report : Format.formatter -> report -> unit
val pp_devices : Format.formatter -> report -> unit
