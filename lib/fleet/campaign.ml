type config = {
  options : Eric_cc.Driver.options;
  mode : Eric.Config.mode;
  policy : Backoff.policy;
  channel : Channel.t;
  execute : bool;
  fuel : int option;
  firmware_epoch : int option;
}

let default_config =
  {
    options = Eric_cc.Driver.default_options;
    mode = Eric.Config.Full;
    policy = Backoff.default;
    channel = Channel.clean;
    execute = false;
    fuel = None;
    firmware_epoch = None;
  }

type device_result =
  | Shipped of Shipper.delivery
  | Skipped of string  (** already quarantined before the campaign *)

type report = {
  digest : string;
  cache : Artifact_cache.outcome;
  firmware_epoch : int;
  devices : (Registry.entry * device_result) list;
  delivered : int;
  retried : int;
  quarantined : int;
  skipped : int;
  wire_bytes : int;
  load_cycles : int64;
  backoff_ns : int64;
  personalize_ns : int64;
  campaign_ns : int64;
}

let count ?by name =
  if Eric_telemetry.Control.is_enabled () then Eric_telemetry.Registry.inc ?by name

let next_firmware_epoch registry =
  1 + List.fold_left (fun m e -> max m e.Registry.firmware_epoch) 0 (Registry.entries registry)

let deploy ?(config = default_config) ~cache ~registry source =
  Eric_telemetry.Span.with_ ~cat:"fleet" ~name:"fleet.campaign" (fun () ->
      let t_start = Eric_telemetry.Clock.now_ns () in
      match
        Artifact_cache.get_or_compile cache ~options:config.options ~mode:config.mode source
      with
      | Error _ as e -> e
      | Ok (prepared, cache_outcome) ->
        let firmware_epoch =
          match config.firmware_epoch with
          | Some e -> e
          | None -> next_firmware_epoch registry
        in
        count "fleet.campaign.runs_total";
        let personalize_ns = ref 0L in
        let devices =
          List.map
            (fun (entry : Registry.entry) ->
              count "fleet.campaign.devices_total";
              match entry.Registry.status with
              | Registry.Quarantined reason ->
                count "fleet.campaign.skipped_total";
                (entry, Skipped reason)
              | Registry.Active ->
                let t0 = Eric_telemetry.Clock.now_ns () in
                let build = Eric.Source.personalize ~key:entry.Registry.key prepared in
                let dt = Int64.sub (Eric_telemetry.Clock.now_ns ()) t0 in
                personalize_ns := Int64.add !personalize_ns dt;
                if Eric_telemetry.Control.is_enabled () then
                  Eric_telemetry.Registry.observe "fleet.campaign.personalize_ns"
                    (Int64.to_float dt);
                let delivery =
                  Shipper.ship ~policy:config.policy ~channel:config.channel
                    ~execute:config.execute ?fuel:config.fuel ~build
                    ~target:(Registry.target registry entry) ()
                in
                (match delivery.Shipper.outcome with
                | Shipper.Delivered _ ->
                  Registry.update registry { entry with Registry.firmware_epoch }
                | Shipper.Quarantined { reason } ->
                  Registry.update registry
                    { entry with
                      Registry.status =
                        Registry.Quarantined (Shipper.quarantine_label reason) });
                (entry, Shipped delivery))
            (Registry.entries registry)
        in
        let fold f init = List.fold_left f init devices in
        let delivered =
          fold (fun n -> function _, Shipped d when Shipper.delivered d -> n + 1 | _ -> n) 0
        in
        let retried =
          fold (fun n -> function _, Shipped d when Shipper.retried d -> n + 1 | _ -> n) 0
        in
        let quarantined =
          fold
            (fun n -> function
              | _, Shipped { Shipper.outcome = Shipper.Quarantined _; _ } -> n + 1
              | _ -> n)
            0
        in
        let skipped = fold (fun n -> function _, Skipped _ -> n + 1 | _ -> n) 0 in
        let wire_bytes =
          fold (fun n -> function _, Shipped d -> n + d.Shipper.wire_bytes | _ -> n) 0
        in
        let load_cycles =
          fold
            (fun n -> function
              | _, Shipped { Shipper.outcome = Shipper.Delivered { load_cycles; _ }; _ } ->
                Int64.add n load_cycles
              | _ -> n)
            0L
        in
        let backoff_ns =
          fold
            (fun n -> function _, Shipped d -> Int64.add n d.Shipper.backoff_ns | _ -> n)
            0L
        in
        count ~by:(Int64.of_int delivered) "fleet.campaign.delivered_total";
        count ~by:(Int64.of_int retried) "fleet.campaign.retried_total";
        count ~by:(Int64.of_int quarantined) "fleet.campaign.quarantined_total";
        Ok
          {
            digest = Artifact_cache.digest ~options:config.options ~mode:config.mode source;
            cache = cache_outcome;
            firmware_epoch;
            devices;
            delivered;
            retried;
            quarantined;
            skipped;
            wire_bytes;
            load_cycles;
            backoff_ns;
            personalize_ns = !personalize_ns;
            campaign_ns = Int64.sub (Eric_telemetry.Clock.now_ns ()) t_start;
          })

let all_accounted report =
  report.delivered + report.quarantined + report.skipped = List.length report.devices

let pp_report fmt r =
  let n = List.length r.devices in
  Format.fprintf fmt
    "campaign %s (firmware epoch %d, cache %s):@\n\
    \  %d device(s): %d delivered (%d after retry), %d quarantined, %d skipped@\n\
    \  %d wire bytes, %Ld HDE load cycles, %.3f ms simulated backoff@\n\
    \  personalize %.3f ms total (%.1f us/device), campaign wall %.3f ms"
    (String.sub r.digest 0 12) r.firmware_epoch
    (Artifact_cache.outcome_label r.cache)
    n r.delivered r.retried r.quarantined r.skipped r.wire_bytes r.load_cycles
    (Int64.to_float r.backoff_ns /. 1e6)
    (Int64.to_float r.personalize_ns /. 1e6)
    (if n = r.skipped then 0.0
     else Int64.to_float r.personalize_ns /. 1e3 /. float_of_int (n - r.skipped))
    (Int64.to_float r.campaign_ns /. 1e6)

let pp_devices fmt r =
  List.iter
    (fun ((entry : Registry.entry), result) ->
      match result with
      | Shipped d -> Format.fprintf fmt "%a@\n" Shipper.pp_delivery d
      | Skipped reason ->
        Format.fprintf fmt "device %Ld: skipped (quarantined: %s)@\n" entry.Registry.device_id
          reason)
    r.devices
