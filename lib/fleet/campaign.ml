module Engine = Eric_engine.Engine
module Job = Eric_engine.Job

type config = {
  options : Eric_cc.Driver.options;
  mode : Eric.Config.mode;
  policy : Backoff.policy;
  channel : Channel.t;
  execute : bool;
  fuel : int option;
  firmware_epoch : int option;
  engine : Engine.config;
}

let default_config =
  {
    options = Eric_cc.Driver.default_options;
    mode = Eric.Config.Full;
    policy = Backoff.default;
    channel = Channel.clean;
    execute = false;
    fuel = None;
    firmware_epoch = None;
    engine = Engine.default_config;
  }

type device_result =
  | Shipped of Shipper.delivery
  | Skipped of string  (** already quarantined before the campaign *)

type report = {
  digest : string;
  cache : Artifact_cache.outcome;
  firmware_epoch : int;
  scheduler_used : string;
  devices : (Registry.entry * device_result) list;
  delivered : int;
  retried : int;
  quarantined : int;
  skipped : int;
  wire_bytes : int;
  load_cycles : int64;
  backoff_ns : int64;
  personalize_ns : int64;
  campaign_ns : int64;
}

let count ?by name =
  if Eric_telemetry.Control.is_enabled () then Eric_telemetry.Registry.inc ?by name

let next_firmware_epoch registry =
  1 + List.fold_left (fun m e -> max m e.Registry.firmware_epoch) 0 (Registry.entries registry)

(* One device's trip through the engine: boot (prepare), keystream
   personalization (personalize), shipping with the shipper's own
   retry/quarantine handling (ship).  Stages are pure per-device — the
   only shared state they touch is the registry's mutex-guarded memo
   tables — so the domain scheduler commutes with the deterministic one.
   Registry updates happen in [commit], on the engine's thread, in
   device-index order. *)
let device_spec ~config ~registry ~prepared =
  {
    Job.admit =
      (fun (entry : Registry.entry) ->
        match entry.Registry.status with
        | Registry.Quarantined reason -> Some reason
        | Registry.Active -> None);
    prepare = (fun entry -> Ok (entry, Registry.target registry entry));
    personalize =
      (fun ((entry : Registry.entry), target) ->
        let t0 = Eric_telemetry.Clock.now_ns () in
        let build = Eric.Source.personalize ~key:entry.Registry.key prepared in
        let dt = Int64.sub (Eric_telemetry.Clock.now_ns ()) t0 in
        Ok (entry, target, build, dt));
    ship =
      (fun (entry, target, build, dt) ->
        let delivery =
          Shipper.ship ~policy:config.policy ~channel:config.channel ~execute:config.execute
            ?fuel:config.fuel ~build ~target ()
        in
        Ok (entry, delivery, dt));
    verify = (fun r -> Ok r);
  }

let deploy ?(config = default_config) ~cache ~registry source =
  Eric_telemetry.Span.with_ ~cat:"fleet" ~name:"fleet.campaign" (fun () ->
      let t_start = Eric_telemetry.Clock.now_ns () in
      match
        Artifact_cache.get_or_compile cache ~options:config.options ~mode:config.mode source
      with
      | Error _ as e -> e
      | Ok (prepared, cache_outcome) ->
        let firmware_epoch =
          match config.firmware_epoch with
          | Some e -> e
          | None -> next_firmware_epoch registry
        in
        count "fleet.campaign.runs_total";
        let items = Array.of_list (Registry.entries registry) in
        let spec = device_spec ~config ~registry ~prepared in
        let personalize_ns = ref 0L in
        let rev_devices = ref [] in
        let commit (c : _ Engine.completion) =
          let entry = items.(c.Engine.c_index) in
          count "fleet.campaign.devices_total";
          match c.Engine.c_outcome with
          | Job.Skipped reason ->
            count "fleet.campaign.skipped_total";
            rev_devices := (entry, Skipped reason) :: !rev_devices
          | Job.Faulted f ->
            (* campaign stages never fault — the shipper owns failure
               handling — but account a surprise rather than drop it *)
            rev_devices := (entry, Skipped (Format.asprintf "%a" Job.pp_fault f)) :: !rev_devices
          | Job.Done (entry, delivery, dt) ->
            personalize_ns := Int64.add !personalize_ns dt;
            if Eric_telemetry.Control.is_enabled () then
              Eric_telemetry.Registry.observe "fleet.campaign.personalize_ns"
                (Int64.to_float dt);
            (match delivery.Shipper.outcome with
            | Shipper.Delivered _ ->
              Registry.update registry { entry with Registry.firmware_epoch }
            | Shipper.Quarantined { reason } ->
              Registry.update registry
                { entry with
                  Registry.status = Registry.Quarantined (Shipper.quarantine_label reason) });
            rev_devices := (entry, Shipped delivery) :: !rev_devices
        in
        let er = Engine.run ~config:config.engine ~commit ~name:"fleet.campaign" spec items in
        let devices = List.rev !rev_devices in
        let fold f init = List.fold_left f init devices in
        let delivered =
          fold (fun n -> function _, Shipped d when Shipper.delivered d -> n + 1 | _ -> n) 0
        in
        let retried =
          fold (fun n -> function _, Shipped d when Shipper.retried d -> n + 1 | _ -> n) 0
        in
        let quarantined =
          fold
            (fun n -> function
              | _, Shipped { Shipper.outcome = Shipper.Quarantined _; _ } -> n + 1
              | _ -> n)
            0
        in
        let skipped = fold (fun n -> function _, Skipped _ -> n + 1 | _ -> n) 0 in
        let wire_bytes =
          fold (fun n -> function _, Shipped d -> n + d.Shipper.wire_bytes | _ -> n) 0
        in
        let load_cycles =
          fold
            (fun n -> function
              | _, Shipped { Shipper.outcome = Shipper.Delivered { load_cycles; _ }; _ } ->
                Int64.add n load_cycles
              | _ -> n)
            0L
        in
        let backoff_ns =
          fold
            (fun n -> function _, Shipped d -> Int64.add n d.Shipper.backoff_ns | _ -> n)
            0L
        in
        count ~by:(Int64.of_int delivered) "fleet.campaign.delivered_total";
        count ~by:(Int64.of_int retried) "fleet.campaign.retried_total";
        count ~by:(Int64.of_int quarantined) "fleet.campaign.quarantined_total";
        Ok
          {
            digest = Artifact_cache.digest ~options:config.options ~mode:config.mode source;
            cache = cache_outcome;
            firmware_epoch;
            scheduler_used = er.Engine.scheduler_used;
            devices;
            delivered;
            retried;
            quarantined;
            skipped;
            wire_bytes;
            load_cycles;
            backoff_ns;
            personalize_ns = !personalize_ns;
            campaign_ns = Int64.sub (Eric_telemetry.Clock.now_ns ()) t_start;
          })

let deploy_sharded ?(config = default_config) ~cache ~shards source =
  Eric_telemetry.Span.with_ ~cat:"fleet" ~name:"fleet.campaign.sharded" (fun () ->
      let t_start = Eric_telemetry.Clock.now_ns () in
      (* Fix the epoch up front: each shard only sees its own slice, so
         letting [deploy] derive it per shard would skew. *)
      let firmware_epoch =
        match config.firmware_epoch with
        | Some e -> e
        | None ->
          1
          + Registry_shard.fold_entries shards ~init:0 ~f:(fun m e ->
                max m e.Registry.firmware_epoch)
      in
      let config = { config with firmware_epoch = Some firmware_epoch } in
      let n_shards = Registry_shard.shards shards in
      let rec loop i acc =
        if i = n_shards then Ok (List.rev acc)
        else if Registry_shard.shard_count shards i = 0 then loop (i + 1) acc
        else begin
          let reg = Registry_shard.shard shards i in
          match deploy ~config ~cache ~registry:reg source with
          | Error _ as e -> e
          | Ok r ->
            (* campaigns stamp epochs / quarantine in place; write the
               shard back and drop it so memory stays one-shard bounded *)
            Registry_shard.mark_dirty shards i;
            Registry_shard.release shards i;
            loop (i + 1) (r :: acc)
        end
      in
      match loop 0 [] with
      | Error _ as e -> e
      | Ok [] -> deploy ~config ~cache ~registry:(Registry.create ()) source
      | Ok (first :: _ as reports) ->
        let sum f = List.fold_left (fun n r -> n + f r) 0 reports in
        let sum64 f = List.fold_left (fun n r -> Int64.add n (f r)) 0L reports in
        Ok
          {
            digest = first.digest;
            cache = first.cache;
            firmware_epoch;
            scheduler_used = first.scheduler_used;
            devices = List.concat_map (fun r -> r.devices) reports;
            delivered = sum (fun r -> r.delivered);
            retried = sum (fun r -> r.retried);
            quarantined = sum (fun r -> r.quarantined);
            skipped = sum (fun r -> r.skipped);
            wire_bytes = sum (fun r -> r.wire_bytes);
            load_cycles = sum64 (fun r -> r.load_cycles);
            backoff_ns = sum64 (fun r -> r.backoff_ns);
            personalize_ns = sum64 (fun r -> r.personalize_ns);
            campaign_ns = Int64.sub (Eric_telemetry.Clock.now_ns ()) t_start;
          })

let all_accounted report =
  report.delivered + report.quarantined + report.skipped = List.length report.devices

let pp_report fmt r =
  let n = List.length r.devices in
  Format.fprintf fmt
    "campaign %s (firmware epoch %d, cache %s, scheduler %s):@\n\
    \  %d device(s): %d delivered (%d after retry), %d quarantined, %d skipped@\n\
    \  %d wire bytes, %Ld HDE load cycles, %.3f ms simulated backoff@\n\
    \  personalize %.3f ms total (%.1f us/device), campaign wall %.3f ms"
    (String.sub r.digest 0 12) r.firmware_epoch
    (Artifact_cache.outcome_label r.cache)
    r.scheduler_used n r.delivered r.retried r.quarantined r.skipped r.wire_bytes
    r.load_cycles
    (Int64.to_float r.backoff_ns /. 1e6)
    (Int64.to_float r.personalize_ns /. 1e6)
    (if n = r.skipped then 0.0
     else Int64.to_float r.personalize_ns /. 1e3 /. float_of_int (n - r.skipped))
    (Int64.to_float r.campaign_ns /. 1e6)

let pp_devices fmt r =
  List.iter
    (fun ((entry : Registry.entry), result) ->
      match result with
      | Shipped d -> Format.fprintf fmt "%a@\n" Shipper.pp_delivery d
      | Skipped reason ->
        Format.fprintf fmt "device %Ld: skipped (quarantined: %s)@\n" entry.Registry.device_id
          reason)
    r.devices
