(** Retry policy for package delivery over a lossy or hostile channel.

    Delays are *simulated* time: the shipper accounts them into the
    campaign report (and telemetry) without sleeping, the same way the SoC
    model accounts cycles without running silicon. *)

type policy = {
  max_attempts : int;  (** total tries per device, including the first *)
  base_delay_ns : int64;  (** simulated delay before the first retry *)
  multiplier : int;  (** exponential growth factor per further retry *)
  max_delay_ns : int64;  (** cap on a single delay *)
  quarantine_refusals : int;
      (** signature refusals from one device before it is quarantined
          (the device keeps rejecting packages signed for it — likely a
          stale or hostile key, not transit noise) *)
}

val default : policy
(** 5 attempts, 1 ms base, doubling, 1 s cap, quarantine after 4
    signature refusals. *)

val validate : policy -> (policy, string) result

val delay_ns : policy -> retry:int -> int64
(** Simulated delay before retry [retry] (1-based):
    [min max_delay_ns (base_delay_ns * multiplier^(retry-1))]. *)

val total_backoff_ns : policy -> retries:int -> int64
(** Sum of [delay_ns] for retries [1..retries]. *)
