(** The software source's persistent view of its device population.

    Each enrolled device carries the KMU context it was provisioned under,
    the PUF-based key the provisioning handshake produced (never the PUF
    key itself — see {!Eric.Kmu}), the firmware epoch of its last
    successful deployment, and a quarantine flag set by the shipper when a
    device repeatedly refuses validly signed packages.

    The registry serialises to a strict, versioned binary format
    (magic ["EFRG"], version 1) documented in [docs/fleet.md]; parsing
    rejects truncation, reserved bytes, duplicate ids and trailing
    garbage, so a corrupt file is refused rather than half-loaded. *)

type status = Active | Quarantined of string  (** reason *)

type entry = {
  device_id : Eric_puf.Device.id;
  epoch : int;  (** KMU key epoch the stored key was derived under *)
  label : string;  (** KMU deployment-scope label *)
  key : bytes;  (** provisioned PUF-based key for that context *)
  firmware_epoch : int;  (** last campaign successfully deployed (0 = never) *)
  status : status;
}

type t

val create : unit -> t
val entries : t -> entry list
(** Enrolment order. *)

val count : t -> int
val find : t -> Eric_puf.Device.id -> entry option
val mem : t -> Eric_puf.Device.id -> bool
val active : t -> entry list
val quarantined : t -> entry list

val context : entry -> Eric.Kmu.context

val device : t -> Eric_puf.Device.id -> Eric_puf.Device.t
(** The simulated silicon, manufactured once per registry and memoized —
    the stand-in for the hardware simply existing in the field. *)

val target : t -> entry -> Eric.Target.t
(** Address the device under its enrolled KMU context.  Memoized per
    (device, context): the PUF key derivation happens once per boot on
    real silicon, so the model pays it once per registry, not per packet. *)

val target_for : t -> context:Eric.Kmu.context -> Eric_puf.Device.id -> Eric.Target.t
(** Same memoized addressing under an arbitrary context (key rotation). *)

val enroll :
  ?epoch:int -> ?label:string -> t -> Eric_puf.Device.id -> (entry, string) result
(** Manufacture the device, run the provisioning handshake
    ({!Eric.Protocol.provision}) and record the entry.  Fails on a
    duplicate id. *)

val add : t -> entry -> (entry, string) result
(** Record an externally provisioned entry verbatim. *)

val update : t -> entry -> unit
(** Replace the entry with the same [device_id].
    @raise Invalid_argument if the device is not enrolled. *)

val serialize : t -> bytes
val parse : bytes -> (t, string) result

val save : t -> string -> unit
val load : string -> (t, string) result
(** File I/O wrappers; [load] turns I/O failures into [Error] rather than
    exceptions so front ends can exit cleanly. *)

val pp_status : Format.formatter -> status -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp_summary : Format.formatter -> t -> unit
