(** The software source's persistent view of its device population.

    Each enrolled device carries the KMU context it was provisioned under,
    the PUF-based key the provisioning handshake produced (never the PUF
    key itself — see {!Eric.Kmu}), the firmware epoch of its last
    successful deployment, and a quarantine flag set by the shipper when a
    device repeatedly refuses validly signed packages.

    The registry serialises to a strict, versioned binary format
    (magic ["EFRG"], version 2; version-1 files still parse) documented
    in [docs/fleet.md]; parsing rejects truncation, reserved bytes,
    duplicate ids and trailing garbage, so a corrupt file is refused
    rather than half-loaded. *)

type status = Active | Quarantined of string  (** reason *)

type entry = {
  device_id : Eric_puf.Device.id;
  epoch : int;  (** KMU key epoch the stored key was derived under *)
  label : string;  (** KMU deployment-scope label *)
  key : bytes;  (** provisioned PUF-based key for that context *)
  firmware_epoch : int;  (** last campaign successfully deployed (0 = never) *)
  status : status;
  helper : Eric_puf.Enroll.helper option;
      (** fuzzy-extractor helper data (public) from reliability-aware
          enrollment; [None] on legacy v1 entries, which keep the plain
          majority-vote boot *)
  instability_ppm : int;
      (** worst per-bit instability at enrollment or last survey, ppm *)
}

type t

val create : unit -> t
val entries : t -> entry list
(** Enrolment order. *)

val count : t -> int
val find : t -> Eric_puf.Device.id -> entry option
val mem : t -> Eric_puf.Device.id -> bool
val active : t -> entry list
val quarantined : t -> entry list

val context : entry -> Eric.Kmu.context

val device : t -> Eric_puf.Device.id -> Eric_puf.Device.t
(** The simulated silicon, manufactured once per registry and memoized —
    the stand-in for the hardware simply existing in the field. *)

val target : ?env:Eric_puf.Env.t -> t -> entry -> Eric.Target.t
(** Address the device under its enrolled KMU context.  When the entry
    carries helper data the target boots through the fuzzy extractor
    (at [env], default nominal) — a boot that can {e fail}, leaving the
    target refusing every load with [Key_unavailable].  Memoized per
    (device, context): the PUF key derivation happens once per boot on
    real silicon, so the model pays it once per registry, not per packet. *)

val target_for :
  ?env:Eric_puf.Env.t -> t -> context:Eric.Kmu.context -> Eric_puf.Device.id ->
  Eric.Target.t
(** Same memoized addressing under an arbitrary context (key rotation). *)

val set_hde : t -> Eric_hw.Hde.config -> unit
(** Provision every device this registry boots with the given HDE
    configuration — how the serve layer turns on the runtime integrity
    guard ({!Eric_hw.Hde.config.guard}) fleet-wide.  Drops all memoized
    boots, so already-addressed devices re-boot under the new silicon
    config on next use. *)

val invalidate_targets : t -> Eric_puf.Device.id -> unit
(** Drop the memoized boots of one device (all contexts); the next
    addressing re-runs key reconstruction.  {!update} calls this itself
    when a boot-relevant field changed — exposed for campaigns that want
    a fresh boot at a new operating point without touching the entry. *)

val enroll :
  ?epoch:int -> ?label:string -> ?enrollment:Eric_puf.Enroll.enrollment ->
  t -> Eric_puf.Device.id -> (entry, string) result
(** Manufacture the device, run reliability-aware enrollment
    ({!Eric_puf.Enroll.enroll}) and record the entry — helper data, the
    context-derived key and the measured instability included.  Pass
    [enrollment] to record a factory enrollment already performed.  Fails
    on a duplicate id or a die that cannot field enough stable chains. *)

val enroll_legacy : ?epoch:int -> ?label:string -> t -> Eric_puf.Device.id ->
  (entry, string) result
(** The fast factory path: derive the context key from a plain
    majority-vote PUF read at nominal conditions and record the entry
    with no helper data ([helper = None]) — exactly what a version-1
    provisioning line produced.  Roughly 5x cheaper per device than
    {!enroll}'s full reliability screening, which is what makes
    enrolling 10^5-device fleets for benches and CI tractable.  The
    device keeps the plain majority-vote boot; {!Reenroll} upgrades
    legacy entries to helper-data boots in the field. *)

val add : t -> entry -> (entry, string) result
(** Record an externally provisioned entry verbatim. *)

val update : t -> entry -> unit
(** Replace the entry with the same [device_id].  The device's memoized
    boots are invalidated only when a boot-relevant field changed (KMU
    epoch, label, key, or helper data) — firmware-epoch bookkeeping and
    quarantine flips keep the booted target, so warm redeployments do
    not re-pay key reconstruction per device.
    @raise Invalid_argument if the device is not enrolled. *)

val serialize : t -> bytes
val parse : bytes -> (t, string) result

val serialize_entry : Buffer.t -> entry -> unit
(** Append one wire-format (version-2) entry record to [buf].  With
    {!header} this lets shard writers stream entries to disk without
    building a whole-registry buffer. *)

val header : count:int -> bytes
(** The 12-byte file header (magic, version, reserved, entry count).
    Writers that stream entries can emit a [count:0] header first and
    rewrite it once the true count is known. *)

val fold_file :
  string -> init:'acc -> f:('acc -> entry -> ('acc, string) result) ->
  ('acc, string) result
(** Stream a registry file entry by entry without materializing a
    registry (or the file) in memory: each entry is decoded from a
    buffered channel cursor, handed to [f], and dropped.  Strictness
    matches {!parse} — bad magic, truncation and trailing bytes all fail
    — except duplicate device ids, which the caller must track if it
    cares.  [f] can stop the fold by returning [Error]. *)

val save : t -> string -> unit
val load : string -> (t, string) result
(** File I/O wrappers; [load] turns I/O failures into [Error] rather than
    exceptions so front ends can exit cleanly.  [load] parses the file as
    a stream, records a [fleet.registry.open] span and observes
    [fleet.registry.open_ns{kind="file"}]. *)

val pp_status : Format.formatter -> status -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp_summary : Format.formatter -> t -> unit
