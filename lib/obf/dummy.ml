(* Dummy-code insertion: generate a population of junk functions that
   call each other, then plant decoy blocks (behind opaque predicates)
   in the real functions that statically call into that population.
   The calls keep the dummies alive through the driver's linker-style
   GC and hand the attacker a plausible — and entirely fake — call
   graph to recover. *)

open Eric_cc

module Prng = Eric_util.Prng

let salt = 0x40

(* Per-block decoy-insertion probability, percent. *)
let insert_pct = 30

let name_of i = Printf.sprintf "obf_dummy_%d" i

(* A dummy function: 2 parameters, 2-4 blocks of junk arithmetic with a
   data-dependent branch, optionally calling an earlier dummy. *)
let gen_func ~rng ~name ~callees =
  let f =
    { Ir.f_name = name;
      f_params = [ 0; 1 ];
      f_blocks = [];
      f_slots = [];
      f_temp_count = 2 }
  in
  let ctx = Irb.fctx f in
  let maybe_call body =
    match callees with
    | [] -> body
    | _ when Prng.int rng ~bound:3 = 0 -> body
    | _ ->
      let callee = List.nth callees (Prng.int rng ~bound:(List.length callees)) in
      let t = Irb.fresh_temp ctx in
      body @ [ Ir.Call (Some t, callee, [ Ir.Imm (Irb.imm rng); Ir.Imm (Irb.imm rng) ]) ]
  in
  let tail_junk () = Irb.junk ctx rng ~seeds:f.Ir.f_params ~len:(3 + Prng.int rng ~bound:5) in
  let three_way = Prng.bool rng in
  let b0_body, cond = tail_junk () in
  let b0 =
    { Ir.b_label = 0;
      body = b0_body;
      term = (if three_way then Ir.Br (Ir.Temp cond, 1, 2) else Ir.Jmp 1) }
  in
  let mid =
    if three_way then begin
      let body, _ = tail_junk () in
      [ { Ir.b_label = 2; body = maybe_call body; term = Ir.Jmp 1 } ]
    end
    else []
  in
  let ret_body, ret_val = tail_junk () in
  let b_ret =
    { Ir.b_label = 1; body = maybe_call ret_body; term = Ir.Ret (Some (Ir.Temp ret_val)) }
  in
  f.Ir.f_blocks <- (b0 :: mid) @ [ b_ret ];
  f

let insert_decoys ~rng ~annot ~dummies (f : Ir.func) =
  let ctx = Irb.fctx f in
  let decoys = Annot.decoy_labels annot f.Ir.f_name in
  let original = Array.of_list f.Ir.f_blocks in
  Array.iter
    (fun b ->
      if (not (List.mem b.Ir.b_label decoys)) && Prng.int rng ~bound:100 < insert_pct
      then begin
        let decoy_label = Irb.fresh_label ctx in
        let at = Prng.int rng ~bound:(List.length b.Ir.body + 1) in
        let cont = Irb.split_with_predicate ctx rng b ~at ~decoy_label in
        let body, _ = Irb.junk ctx rng ~seeds:[] ~len:(2 + Prng.int rng ~bound:3) in
        let callee = List.nth dummies (Prng.int rng ~bound:(List.length dummies)) in
        let t = Irb.fresh_temp ctx in
        let body =
          body @ [ Ir.Call (Some t, callee, [ Ir.Imm (Irb.imm rng); Ir.Imm (Irb.imm rng) ]) ]
        in
        let decoy = { Ir.b_label = decoy_label; body; term = Ir.Jmp cont } in
        f.Ir.f_blocks <- f.Ir.f_blocks @ [ decoy ];
        Annot.add_decoy_block annot f.Ir.f_name decoy_label;
        annot.Annot.predicates_planted <- annot.Annot.predicates_planted + 1
      end)
    original

let run ~seed ~annot (p : Ir.program) =
  let taken = List.map (fun f -> f.Ir.f_name) p.Ir.p_funcs in
  let count = max 4 (2 * List.length p.Ir.p_funcs / 3) in
  let rng = Seed.stream ~seed ~name:"<dummy-population>" ~salt in
  let dummies = ref [] in
  let p_extra = ref [] in
  let rec gen i made =
    if made = count then ()
    else if List.mem (name_of i) taken then gen (i + 1) made
    else begin
      let name = name_of i in
      let f = gen_func ~rng ~name ~callees:!dummies in
      dummies := !dummies @ [ name ];
      Annot.add_decoy_func annot name;
      p_extra := f :: !p_extra;
      gen (i + 1) (made + 1)
    end
  in
  gen 0 0;
  List.iter
    (fun f ->
      if not (List.mem f.Ir.f_name annot.Annot.decoy_funcs) then
        insert_decoys
          ~rng:(Seed.stream ~seed ~name:f.Ir.f_name ~salt)
          ~annot ~dummies:!dummies f)
    p.Ir.p_funcs;
  { p with Ir.p_funcs = p.Ir.p_funcs @ List.rev !p_extra }
