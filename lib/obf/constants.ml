(* Constant/literal encoding: every selected [Move (d, Imm c)] becomes
   [d = (c xor k); d = d xor k] with a fresh per-site key drawn from the
   function's stream, so literal values (magic numbers, table sizes,
   characters) no longer appear verbatim in the text section. *)

open Eric_cc

module Prng = Eric_util.Prng

let salt = 0x10

let encode_func ~rng ~annot (f : Ir.func) =
  List.iter
    (fun b ->
      b.Ir.body <-
        List.concat_map
          (fun instr ->
            match instr with
            | Ir.Move (d, Ir.Imm c) when Prng.int rng ~bound:4 < 3 ->
              let k = Prng.bits64 rng in
              annot.Annot.constants_encoded <- annot.Annot.constants_encoded + 1;
              [ Ir.Move (d, Ir.Imm (Int64.logxor c k));
                Ir.Bin (Ir.Xor, d, Ir.Temp d, Ir.Imm k) ]
            | _ -> [ instr ])
          b.Ir.body)
    f.Ir.f_blocks

let run ~seed ~annot (p : Ir.program) =
  List.iter
    (fun f -> encode_func ~rng:(Seed.stream ~seed ~name:f.Ir.f_name ~salt) ~annot f)
    p.Ir.p_funcs
