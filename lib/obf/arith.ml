(* Arithmetic (MBA) encoding: rewrite adds, subs and xors into
   mixed boolean-arithmetic forms that are exact on 64-bit two's
   complement:

     a + b  =  (a xor b) + 2*(a and b)
     a - b  =  a + (b xor -1) + 1
     a xor b = (a or b) - (a and b)

   Each rewrite is applied once (the expansions contain fresh Add/Sub
   instances, but the pass never revisits its own output), and the
   optimiser has already converged when this runs, so nothing folds the
   expressions back. *)

open Eric_cc

module Prng = Eric_util.Prng

let salt = 0x20

let rewrite ctx rng ~annot instr =
  let count () = annot.Annot.arith_rewrites <- annot.Annot.arith_rewrites + 1 in
  match instr with
  | Ir.Bin (Ir.Add, d, a, b) when Prng.int rng ~bound:3 < 2 ->
    count ();
    let tx = Irb.fresh_temp ctx in
    let ta = Irb.fresh_temp ctx in
    let t2 = Irb.fresh_temp ctx in
    [ Ir.Bin (Ir.Xor, tx, a, b);
      Ir.Bin (Ir.And, ta, a, b);
      Ir.Bin (Ir.Add, t2, Ir.Temp ta, Ir.Temp ta);
      Ir.Bin (Ir.Add, d, Ir.Temp tx, Ir.Temp t2) ]
  | Ir.Bin (Ir.Sub, d, a, b) when Prng.int rng ~bound:3 < 2 ->
    count ();
    let tn = Irb.fresh_temp ctx in
    let ts = Irb.fresh_temp ctx in
    [ Ir.Bin (Ir.Xor, tn, b, Ir.Imm (-1L));
      Ir.Bin (Ir.Add, ts, a, Ir.Temp tn);
      Ir.Bin (Ir.Add, d, Ir.Temp ts, Ir.Imm 1L) ]
  | Ir.Bin (Ir.Xor, d, a, b) when Prng.int rng ~bound:3 < 2 ->
    count ();
    let to_ = Irb.fresh_temp ctx in
    let ta = Irb.fresh_temp ctx in
    [ Ir.Bin (Ir.Or, to_, a, b);
      Ir.Bin (Ir.And, ta, a, b);
      Ir.Bin (Ir.Sub, d, Ir.Temp to_, Ir.Temp ta) ]
  | i -> [ i ]

let encode_func ~rng ~annot (f : Ir.func) =
  let ctx = Irb.fctx f in
  List.iter
    (fun b -> b.Ir.body <- List.concat_map (rewrite ctx rng ~annot) b.Ir.body)
    f.Ir.f_blocks

let run ~seed ~annot (p : Ir.program) =
  List.iter
    (fun f -> encode_func ~rng:(Seed.stream ~seed ~name:f.Ir.f_name ~salt) ~annot f)
    p.Ir.p_funcs
