open Eric_cc
module Leakage = Eric_lint.Leakage
module Prng = Eric_util.Prng

type pass = Flatten | Opaque | Dummy | Arith | Constants

(* Application order, regardless of how the user spelled the list:
   data passes first (they must only see real code), then the decoy
   planters, then flattening, which sweeps real and decoy blocks alike
   into its dispatch table.  Block labels survive every pass, so decoy
   provenance maps through to the image's symbol table. *)
let all_passes = [ Constants; Arith; Opaque; Dummy; Flatten ]

let pass_name = function
  | Flatten -> "flatten"
  | Opaque -> "opaque"
  | Dummy -> "dummy"
  | Arith -> "arith"
  | Constants -> "constants"

let pass_of_string = function
  | "flatten" -> Some Flatten
  | "opaque" -> Some Opaque
  | "dummy" -> Some Dummy
  | "arith" -> Some Arith
  | "constants" -> Some Constants
  | _ -> None

(* Wire bits of the package header's pass mask (Package.obf). *)
let pass_bit = function Flatten -> 1 | Opaque -> 2 | Dummy -> 4 | Arith -> 8 | Constants -> 16

let mask_of_passes passes = List.fold_left (fun m p -> m lor pass_bit p) 0 passes
let passes_of_mask mask = List.filter (fun p -> mask land pass_bit p <> 0) all_passes

(* Canonical form: application order, duplicates collapsed. *)
let canonical passes = passes_of_mask (mask_of_passes passes)

let passes_of_string s =
  let names =
    String.split_on_char ',' s |> List.map String.trim |> List.filter (fun n -> n <> "")
  in
  if names = [] then Error "no passes given"
  else
    let rec go acc = function
      | [] -> Ok (canonical (List.rev acc))
      | n :: rest -> (
        match pass_of_string n with
        | Some p -> go (p :: acc) rest
        | None ->
          Error
            (Printf.sprintf "unknown obfuscation pass %S (expected %s)" n
               (String.concat "|" (List.map pass_name all_passes))))
    in
    go [] names

(* The documented default build seed; any other seed gives a different
   but equally reproducible build. *)
let default_seed = 0xE51C0BF5CA7E0001L

type config = { passes : pass list; seed : int64 }

let tag config =
  Printf.sprintf "obf:%s:seed=0x%Lx"
    (String.concat "," (List.map pass_name (canonical config.passes)))
    config.seed

let apply ?annot config (p : Ir.program) =
  let annot = match annot with Some a -> a | None -> Annot.create () in
  Annot.reset annot;
  Eric_telemetry.Span.with_ ~cat:"cc" ~name:"cc.obf" @@ fun () ->
  let seed = config.seed in
  let apply_one p pass =
    annot.Annot.passes_run <- annot.Annot.passes_run + 1;
    match pass with
    | Constants ->
      Constants.run ~seed ~annot p;
      p
    | Arith ->
      Arith.run ~seed ~annot p;
      p
    | Opaque ->
      Opaque.run ~seed ~annot p;
      p
    | Dummy -> Dummy.run ~seed ~annot p
    | Flatten ->
      Flatten.run ~seed ~annot p;
      p
  in
  let p = List.fold_left apply_one p (canonical config.passes) in
  if Eric_telemetry.Control.is_enabled () then begin
    let inc by name =
      if by > 0 then Eric_telemetry.Registry.inc ~by:(Int64.of_int by) ("cc.obf." ^ name)
    in
    inc annot.Annot.passes_run "passes_total";
    inc annot.Annot.blocks_inserted "blocks_inserted";
    inc annot.Annot.predicates_planted "predicates_planted";
    inc annot.Annot.constants_encoded "constants_encoded";
    inc annot.Annot.arith_rewrites "arith_rewrites";
    inc annot.Annot.functions_added "functions_added"
  end;
  p

let transform config = { Driver.t_tag = tag config; t_apply = (fun p -> apply config p) }

let hook config =
  let annot = Annot.create () in
  ({ Driver.t_tag = tag config; t_apply = (fun p -> apply ~annot config p) }, annot)

let options ?(base = Driver.default_options) config =
  { base with Driver.transform = Some (transform config) }

(* ------------------------------------------------------------------ *)
(* Grading                                                             *)
(* ------------------------------------------------------------------ *)

(* Codegen emits a [.L_<fname>_<label>] local symbol per IR block (and
   the assembler keeps locals in Program.symbols), so each planted decoy
   block or function owns a byte range of the text section: from its
   symbol to the next symbol.  [keep] rejects exactly those ranges. *)
let keep_real ~annot (image : Eric_rv.Program.t) =
  let decoy_syms = Hashtbl.create 64 in
  List.iter
    (fun (f, l) -> Hashtbl.replace decoy_syms (Printf.sprintf ".L_%s_%d" f l) ())
    annot.Annot.decoy_blocks;
  let is_decoy name =
    Hashtbl.mem decoy_syms name
    || List.exists
         (fun d -> name = d || String.starts_with ~prefix:(".L_" ^ d ^ "_") name)
         annot.Annot.decoy_funcs
  in
  let syms =
    List.sort (fun (_, a) (_, b) -> compare a b) image.Eric_rv.Program.symbols
  in
  let text_len = Bytes.length (Eric_rv.Program.text_bytes image) in
  let rec ranges = function
    | [] -> []
    | (name, off) :: rest ->
      let next = match rest with [] -> text_len | (_, o) :: _ -> o in
      if is_decoy name then (off, next) :: ranges rest else ranges rest
  in
  let decoy_ranges = Array.of_list (ranges syms) in
  fun off -> not (Array.exists (fun (lo, hi) -> off >= lo && off < hi) decoy_ranges)

let real_truth ~annot image =
  Truth.restrict ~keep:(keep_real ~annot image) (Truth.of_image image)

(* Grade an attacker against the obfuscated plain image: Jaccard
   recovered-structure score against the real-only truth.  1.0 means
   the obfuscation added nothing the attacker swallowed; lower means
   the recovered structure is diluted with decoys. *)
let grade ~annot ~attacker (image : Eric_rv.Program.t) =
  let truth = real_truth ~annot image in
  let coverage = Array.map (fun _ -> Leakage.Clear) image.Eric_rv.Program.text in
  Leakage.recover_against attacker ~truth:truth.Truth.truth image coverage
