(* Shared IR-building helpers for the obfuscation passes. *)

open Eric_cc

module Prng = Eric_util.Prng

type fctx = {
  func : Ir.func;
  mutable next_label : int;
}

let fctx (f : Ir.func) =
  { func = f;
    next_label = 1 + List.fold_left (fun m b -> max m b.Ir.b_label) 0 f.Ir.f_blocks }

let fresh_temp ctx =
  let t = ctx.func.Ir.f_temp_count in
  ctx.func.Ir.f_temp_count <- t + 1;
  t

let fresh_label ctx =
  let l = ctx.next_label in
  ctx.next_label <- l + 1;
  l

(* A small immediate that reads like real code, not like a marker. *)
let imm rng = Int64.of_int (1 + Prng.int rng ~bound:0xFFFF)

let junk_op rng =
  match Prng.int rng ~bound:6 with
  | 0 -> Ir.Add
  | 1 -> Ir.Sub
  | 2 -> Ir.Xor
  | 3 -> Ir.And
  | 4 -> Ir.Or
  | _ -> Ir.Mul

(* Straight-line junk: [len] instructions over fresh temps only, so the
   host block's dataflow is untouched and must-define stays clean (the
   first instruction is always a constant move; later ones may read any
   temp the sequence itself defined, or any of [seeds] — temps the
   caller guarantees are defined on entry, e.g. function parameters).
   Returns (instructions, temp holding the final value). *)
let junk ctx rng ~seeds ~len =
  let t0 = fresh_temp ctx in
  let defined = ref (t0 :: seeds) in
  let operand () =
    let l = !defined in
    Ir.Temp (List.nth l (Prng.int rng ~bound:(List.length l)))
  in
  let rec more acc last n =
    if n = 0 then (List.rev acc, last)
    else begin
      let t = fresh_temp ctx in
      let i =
        if Prng.int rng ~bound:4 = 0 then Ir.Bin (junk_op rng, t, operand (), operand ())
        else Ir.Bin (junk_op rng, t, operand (), Ir.Imm (imm rng))
      in
      defined := t :: !defined;
      more (i :: acc) t (n - 1)
    end
  in
  more [ Ir.Move (t0, Ir.Imm (imm rng)) ] t0 (max 0 (len - 1))

(* An opaque predicate: instructions computing a temp that is provably
   nonzero, without the fact being visible to a bit-level disassembler.
   Three algebraic families, chosen and parameterised by the stream:
     x odd  ->  (x*x) land 7 = 1
     any x  ->  (x*(x+1)) land 1 = 0
     any x  ->  (x lor 1) land 1 = 1 *)
let opaque_predicate ctx rng =
  let x = Int64.of_int ((2 * Prng.int rng ~bound:0x3FFFFF) + 1) in
  let t0 = fresh_temp ctx in
  let t1 = fresh_temp ctx in
  let t2 = fresh_temp ctx in
  let p = fresh_temp ctx in
  let instrs =
    match Prng.int rng ~bound:3 with
    | 0 ->
      [ Ir.Move (t0, Ir.Imm x);
        Ir.Bin (Ir.Mul, t1, Ir.Temp t0, Ir.Temp t0);
        Ir.Bin (Ir.And, t2, Ir.Temp t1, Ir.Imm 7L);
        Ir.Bin (Ir.Seq, p, Ir.Temp t2, Ir.Imm 1L) ]
    | 1 ->
      [ Ir.Move (t0, Ir.Imm x);
        Ir.Bin (Ir.Add, t1, Ir.Temp t0, Ir.Imm 1L);
        Ir.Bin (Ir.Mul, t2, Ir.Temp t0, Ir.Temp t1);
        Ir.Bin (Ir.And, t2, Ir.Temp t2, Ir.Imm 1L);
        Ir.Bin (Ir.Seq, p, Ir.Temp t2, Ir.Imm 0L) ]
    | _ ->
      [ Ir.Move (t0, Ir.Imm x);
        Ir.Bin (Ir.Or, t1, Ir.Temp t0, Ir.Imm 1L);
        Ir.Bin (Ir.And, t2, Ir.Temp t1, Ir.Imm 1L);
        Ir.Bin (Ir.Seq, p, Ir.Temp t2, Ir.Imm 1L) ]
  in
  (instrs, p)

(* Split block [b] of [f] at body position [at]: the suffix and the
   original terminator move to a fresh continuation block (inserted
   right after [b] so real execution falls through), and [b] now ends in
   [Br (pred, cont, decoy_label)] where [pred] is an always-true opaque
   predicate — the false edge feeds the caller's decoy block, which must
   jump back to the returned continuation label. *)
let split_with_predicate ctx rng b ~at ~decoy_label =
  let f = ctx.func in
  let body = b.Ir.body in
  let n = List.length body in
  let at = max 0 (min at n) in
  let prefix = List.filteri (fun i _ -> i < at) body in
  let suffix = List.filteri (fun i _ -> i >= at) body in
  let cont_label = fresh_label ctx in
  let cont = { Ir.b_label = cont_label; body = suffix; term = b.Ir.term } in
  let pred_instrs, p = opaque_predicate ctx rng in
  b.Ir.body <- prefix @ pred_instrs;
  b.Ir.term <- Ir.Br (Ir.Temp p, cont_label, decoy_label);
  let rec insert_after = function
    | [] -> []
    | blk :: rest when blk == b -> blk :: cont :: rest
    | blk :: rest -> blk :: insert_after rest
  in
  f.Ir.f_blocks <- insert_after f.Ir.f_blocks;
  cont_label
