(* Opaque predicates: split blocks behind algebraically-true guards whose
   false edge feeds a junk decoy block.  Execution always takes the true
   edge; a disassembler sees two successors and swallows the decoy as
   reachable code. *)

open Eric_cc

module Prng = Eric_util.Prng

let salt = 0x30

(* Per-block split probability, percent. *)
let split_pct = 35

let obfuscate_func ~rng ~annot (f : Ir.func) =
  let ctx = Irb.fctx f in
  let decoys = Annot.decoy_labels annot f.Ir.f_name in
  let original = Array.of_list f.Ir.f_blocks in
  Array.iter
    (fun b ->
      if (not (List.mem b.Ir.b_label decoys)) && Prng.int rng ~bound:100 < split_pct
      then begin
        let decoy_label = Irb.fresh_label ctx in
        let at = Prng.int rng ~bound:(List.length b.Ir.body + 1) in
        let cont = Irb.split_with_predicate ctx rng b ~at ~decoy_label in
        let len = 2 + Prng.int rng ~bound:3 in
        let body, _ = Irb.junk ctx rng ~seeds:[] ~len in
        let decoy = { Ir.b_label = decoy_label; body; term = Ir.Jmp cont } in
        f.Ir.f_blocks <- f.Ir.f_blocks @ [ decoy ];
        Annot.add_decoy_block annot f.Ir.f_name decoy_label;
        annot.Annot.predicates_planted <- annot.Annot.predicates_planted + 1
      end)
    original

let run ~seed ~annot (p : Ir.program) =
  List.iter
    (fun f ->
      if not (List.mem f.Ir.f_name annot.Annot.decoy_funcs) then
        obfuscate_func ~rng:(Seed.stream ~seed ~name:f.Ir.f_name ~salt) ~annot f)
    p.Ir.p_funcs
