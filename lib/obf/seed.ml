(* Per-function PRNG streams derived from the single build seed.

   Reproducibility contract: the stream a pass sees for a function is a
   pure function of (build seed, function name, pass salt) — never of
   compilation order, previous passes' draw counts, or anything else
   that could differ between two builds of the same source.  Two builds
   with the same seed are therefore byte-identical, and adding a
   function to a program does not reshuffle the streams of the others. *)

let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* SplitMix64 finalizer: spreads the structured (seed, name, salt)
   combination over the whole 64-bit space before it becomes a
   xoshiro seed. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let golden = 0x9e3779b97f4a7c15L

let stream ~seed ~name ~salt =
  let z =
    Int64.add
      (Int64.logxor seed (fnv1a64 name))
      (Int64.mul golden (Int64.of_int (salt + 1)))
  in
  Eric_util.Prng.create ~seed:(mix z)
