(* What the obfuscator planted, reported back so grading can subtract
   decoys from the compiler ground truth.  Decoy blocks are identified
   by (function name, IR label) — codegen emits a local symbol
   [.L_<fname>_<label>] per block, so the pair survives into the image's
   symbol table and maps to a machine-code byte range. *)

type t = {
  mutable decoy_funcs : string list;  (* generated dummy functions *)
  mutable decoy_blocks : (string * int) list;  (* (fname, label) *)
  mutable blocks_inserted : int;
  mutable predicates_planted : int;
  mutable constants_encoded : int;
  mutable arith_rewrites : int;
  mutable functions_added : int;
  mutable functions_flattened : int;
  mutable passes_run : int;
}

let create () =
  { decoy_funcs = [];
    decoy_blocks = [];
    blocks_inserted = 0;
    predicates_planted = 0;
    constants_encoded = 0;
    arith_rewrites = 0;
    functions_added = 0;
    functions_flattened = 0;
    passes_run = 0 }

let reset t =
  t.decoy_funcs <- [];
  t.decoy_blocks <- [];
  t.blocks_inserted <- 0;
  t.predicates_planted <- 0;
  t.constants_encoded <- 0;
  t.arith_rewrites <- 0;
  t.functions_added <- 0;
  t.functions_flattened <- 0;
  t.passes_run <- 0

let add_decoy_func t name =
  t.decoy_funcs <- name :: t.decoy_funcs;
  t.functions_added <- t.functions_added + 1

let add_decoy_block t fname label =
  t.decoy_blocks <- (fname, label) :: t.decoy_blocks;
  t.blocks_inserted <- t.blocks_inserted + 1

(* Labels of the decoy blocks already planted in [fname]; later passes
   use this to leave decoys alone (no decoys behind decoys, and the
   flattener keeps their baited edges legible). *)
let decoy_labels t fname =
  List.filter_map (fun (f, l) -> if f = fname then Some l else None) t.decoy_blocks
