(* Control-flow flattening: every block of a function becomes an entry
   in a shuffled dispatch table keyed by a random per-block id held in a
   state temp.  Direct jumps become [st := id; jmp dispatcher]; two-way
   branches compute the successor id branchlessly
   ([st := id_false + (cond<>0) * (id_true - id_false)]), so the only
   statically-legible edges left in the function are the dispatcher's
   own compare-and-branch chain — the original topology is gone from
   the text section.  Returns stay in place.

   Every temp the function reads is zero-initialised in the new entry
   block: the dispatcher merges all paths, which would otherwise turn
   the compiler's path-sensitive definitions into maybe-undefined
   reads.  The stores are dead on real executions (the original
   definition always runs first), so semantics are untouched. *)

open Eric_cc

module Prng = Eric_util.Prng
module Iset = Set.Make (Int)

let salt = 0x50

let flatten_func ~rng ~annot (f : Ir.func) =
  let all_blocks = f.Ir.f_blocks in
  (* Decoy blocks stay out of the dispatch table and keep their direct
     terminators: the opaque [Br] edges feeding them are bait meant to
     stay legible, and excluding them keeps the dispatcher (and its
     register pressure) proportional to the real block count. *)
  let decoys = Iset.of_list (Annot.decoy_labels annot f.Ir.f_name) in
  let blocks = List.filter (fun b -> not (Iset.mem b.Ir.b_label decoys)) all_blocks in
  if List.length blocks >= 2 then begin
    let ctx = Irb.fctx f in
    let old_entry = List.hd blocks in
    (* Upward-exposed uses: temps some block reads before defining them
       locally.  Only these can become maybe-undefined once the
       dispatcher merges all paths, so only these get the entry
       zero-init — block-local temps (e.g. planted junk) cost nothing. *)
    let reads =
      List.fold_left
        (fun acc b ->
          let exposed, _ =
            List.fold_left
              (fun (exposed, defined) i ->
                let exposed =
                  List.fold_left
                    (fun s t -> if Iset.mem t defined then s else Iset.add t s)
                    exposed (Ir.uses_of i)
                in
                let defined =
                  match Ir.def_of i with Some d -> Iset.add d defined | None -> defined
                in
                (exposed, defined))
              (acc, Iset.empty) b.Ir.body
          in
          let defined =
            List.fold_left
              (fun s i -> match Ir.def_of i with Some d -> Iset.add d s | None -> s)
              Iset.empty b.Ir.body
          in
          List.fold_left
            (fun s t -> if Iset.mem t defined then s else Iset.add t s)
            exposed (Ir.term_uses b.Ir.term))
        Iset.empty blocks
    in
    let reads = Iset.diff reads (Iset.of_list f.Ir.f_params) in
    (* Distinct random dispatch ids per block. *)
    let ids = Hashtbl.create 16 in
    let drawn = Hashtbl.create 16 in
    List.iter
      (fun b ->
        let rec draw () =
          let v = 1 + Prng.int rng ~bound:0xFFFFF in
          if Hashtbl.mem drawn v then draw () else v
        in
        let v = draw () in
        Hashtbl.replace drawn v ();
        Hashtbl.replace ids b.Ir.b_label (Int64.of_int v))
      blocks;
    let id l = Hashtbl.find ids l in
    let st = Irb.fresh_temp ctx in
    let order = Array.of_list blocks in
    Prng.shuffle rng order;
    let n = Array.length order in
    let dl = Array.init n (fun _ -> Irb.fresh_label ctx) in
    let d0 = dl.(0) in
    List.iter
      (fun b ->
        match b.Ir.term with
        | Ir.Ret _ -> ()
        | Ir.Br (_, _, b') when Iset.mem b' decoys ->
          (* A planted opaque branch: its false edge is bait.  Left
             legible so the attacker keeps finding (and swallowing) it. *)
          ()
        | Ir.Jmp l ->
          b.Ir.body <- b.Ir.body @ [ Ir.Move (st, Ir.Imm (id l)) ];
          b.Ir.term <- Ir.Jmp d0
        | Ir.Br (v, a, b') ->
          let t1 = Irb.fresh_temp ctx in
          let t2 = Irb.fresh_temp ctx in
          let t3 = Irb.fresh_temp ctx in
          b.Ir.body <-
            b.Ir.body
            @ [ Ir.Bin (Ir.Sne, t1, v, Ir.Imm 0L);
                Ir.Bin (Ir.Mul, t2, Ir.Temp t1, Ir.Imm (Int64.sub (id a) (id b')));
                Ir.Bin (Ir.Add, t3, Ir.Temp t2, Ir.Imm (id b'));
                Ir.Move (st, Ir.Temp t3) ];
          b.Ir.term <- Ir.Jmp d0)
      blocks;
    let dispatchers =
      List.init n (fun i ->
          let target = order.(i).Ir.b_label in
          if i = n - 1 then { Ir.b_label = dl.(i); body = []; term = Ir.Jmp target }
          else begin
            let c = Irb.fresh_temp ctx in
            { Ir.b_label = dl.(i);
              body = [ Ir.Bin (Ir.Seq, c, Ir.Temp st, Ir.Imm (id target)) ];
              term = Ir.Br (Ir.Temp c, target, dl.(i + 1)) }
          end)
    in
    let entry =
      { Ir.b_label = Irb.fresh_label ctx;
        body =
          List.map (fun t -> Ir.Move (t, Ir.Imm 0L)) (Iset.elements reads)
          @ [ Ir.Move (st, Ir.Imm (id old_entry.Ir.b_label)) ];
        term = Ir.Jmp d0 }
    in
    let decoy_blocks = List.filter (fun b -> Iset.mem b.Ir.b_label decoys) all_blocks in
    f.Ir.f_blocks <- (entry :: dispatchers) @ Array.to_list order @ decoy_blocks;
    annot.Annot.functions_flattened <- annot.Annot.functions_flattened + 1
  end

let run ~seed ~annot (p : Ir.program) =
  List.iter
    (fun f -> flatten_func ~rng:(Seed.stream ~seed ~name:f.Ir.f_name ~salt) ~annot f)
    p.Ir.p_funcs
