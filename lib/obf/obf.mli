(** Seeded, composable IR-to-IR obfuscation passes, plugged into
    {!Eric_cc.Driver} via its transform hook.

    Semantics preservation is checked three ways: the passes keep
    {!Eric_cc.Ir_verify} error-clean by construction, the qcheck
    property in test_obf compares IR-interpreter output of obfuscated
    vs plain IR, and `eric verif fuzz` runs the full three-path
    differential oracle over obfuscated builds.

    Reproducibility contract: all randomness derives from
    {!config.seed} through per-(function, pass) streams
    ({!Seed.stream}), so two builds of the same source with the same
    seed are byte-identical and the seed travels in the package header
    ({!Eric.Package.t}[.obf]) for provenance. *)

type pass =
  | Flatten  (** control-flow flattening: dispatcher over a shuffled block table *)
  | Opaque  (** opaque predicates guarding junk decoy edges *)
  | Dummy  (** decoy blocks calling a generated population of dummy functions *)
  | Arith  (** MBA rewrites of add/sub/xor, exact on two's complement *)
  | Constants  (** XOR-split literal encoding of constant moves *)

val all_passes : pass list
(** Every pass, in application order (data passes before decoy planters
    before flattening).  [apply] always uses this order no matter how
    the configured list is spelled. *)

val pass_name : pass -> string
val pass_of_string : string -> pass option

val passes_of_string : string -> (pass list, string) result
(** Parse a comma-separated pass list (the [--obfuscate] argument) into
    canonical order; [Error] names the first unknown pass. *)

val pass_bit : pass -> int
val mask_of_passes : pass list -> int
val passes_of_mask : int -> pass list
(** Wire encoding of the pass set, as stored in the package header's
    obfuscation metadata block. *)

val default_seed : int64
(** The documented default build seed ([0xE51C0BF5CA7E0001]); builds
    not overriding [--obf-seed] use it, so they are reproducible across
    machines by default. *)

type config = { passes : pass list; seed : int64 }

val tag : config -> string
(** Stable transform identity ("obf:<passes>:seed=0x<seed>"); feeds
    build-cache keys via {!Eric_cc.Driver.transform}. *)

val apply : ?annot:Annot.t -> config -> Eric_cc.Ir.program -> Eric_cc.Ir.program
(** Run the configured passes.  [annot] (reset first) receives decoy
    provenance and counters; cc.obf.* telemetry counters and the [obf]
    span are emitted when telemetry is enabled. *)

val transform : config -> Eric_cc.Driver.transform
(** The driver hook, discarding provenance. *)

val hook : config -> Eric_cc.Driver.transform * Annot.t
(** The driver hook plus the annotation it fills on each application —
    use this when the build will be graded afterwards.  The annotation
    describes the most recent application. *)

val options : ?base:Eric_cc.Driver.options -> config -> Eric_cc.Driver.options
(** [base] (default {!Eric_cc.Driver.default_options}) with the
    configured transform installed. *)

val real_truth : annot:Annot.t -> Eric_rv.Program.t -> Eric_cc.Truth.t
(** Compiler ground truth of the obfuscated image minus everything the
    obfuscator planted (decoy blocks and dummy functions are located
    via their [.L_<fname>_<label>] symbols and subtracted as byte
    ranges). *)

val grade : annot:Annot.t -> attacker:Eric_lint.Leakage.attacker -> Eric_rv.Program.t
  -> Eric_lint.Leakage.structure
(** Run an attacker over the obfuscated *plain* image and score it with
    {!Eric_lint.Leakage.recover_against} against {!real_truth}: Jaccard
    per component, so decoys the attacker swallows push the score below
    the 1.0 an un-obfuscated plain image yields. *)
