(** Generic parallel work-queue campaign engine.

    Pushes an array of items through a typed {!Job.spec} (prepare /
    personalize / ship / verify) under a bounded in-flight window, with
    shipper-style retry/quarantine handling of stage faults, and records
    [engine.*] telemetry.

    {2 Schedulers}

    Two schedulers share one signature and — under the determinism
    contract below — one observable behaviour:

    - {!Deterministic} runs jobs in index order on the calling thread.
      Works identically on OCaml 4.14 and 5.x; the reference semantics.
    - {!Domains} runs jobs on an OCaml-5 domain pool with chunked work
      stealing.  On a runtime without domains it degrades to sequential
      execution and the report's [scheduler_used] says
      ["domains-fallback"].

    {2 Determinism contract}

    A job's outcome may depend only on its own item and state owned by
    that item (one device's PRNG stream, say) — never on the order jobs
    execute in.  Completions land in an array slot keyed by job index
    and the [commit] callback replays them in index order, so both
    schedulers produce identical completion arrays and identical
    committed state; only wall-clock timing may differ.  Shared-state
    reads inside jobs must be thread-safe (the fleet registry's
    device/target memo tables are). *)

type scheduler = Deterministic | Domains of int  (** 0 = runtime's recommendation *)

val scheduler_of_string : string -> (scheduler, string) result
(** ["deterministic"]/["det"], ["domains"] or ["domains:N"]. *)

val scheduler_label : scheduler -> string

type config = {
  scheduler : scheduler;
  window : int;
      (** max jobs in flight before their completions are committed;
          batches run back to back *)
  retries : int;  (** extra attempts granted to retryable faults *)
  retry_delay_ns : int64;  (** simulated backoff before the first retry *)
  max_delay_ns : int64;  (** cap for the doubling backoff *)
}

val default_config : config
(** Deterministic scheduler, window 1024, no retries, 1 ms base / 1 s
    cap backoff. *)

val delay_ns : config -> retry:int -> int64
(** Simulated backoff before retry [retry] (1-based): doubling from
    [retry_delay_ns], saturating at [max_delay_ns]. *)

type 'r completion = {
  c_index : int;  (** index of the item in the input array *)
  c_outcome : 'r Job.outcome;
  c_attempts : int;  (** 0 for skipped items, else >= 1 *)
  c_backoff_ns : int64;  (** simulated retry backoff accrued *)
  c_ns : int64;  (** wall time inside the stages, all attempts *)
}

type worker = { w_jobs : int; w_busy_ns : int64; w_steals : int }

type 'r report = {
  name : string;
  scheduler_used : string;
      (** ["deterministic"], ["domains:N"] or ["domains-fallback"] *)
  queued : int;
  completions : 'r completion array;  (** by job index *)
  jobs_done : int;
  quarantined : int;  (** jobs that ended {!Job.Faulted} *)
  skipped : int;
  retried_jobs : int;
  backoff_ns : int64;
  workers : worker array;
  wall_ns : int64;
  utilization : float;  (** busy / (wall x workers); 0 when idle *)
}

val run :
  ?config:config ->
  ?commit:('r completion -> unit) ->
  name:string ->
  ('i, 'a, 'b, 'c, 'r) Job.spec ->
  'i array ->
  'r report
(** Execute every item.  [commit] is invoked exactly once per item in
    item-index order (windowed: after each batch of [window] jobs), on
    the calling thread — the place to apply registry updates and other
    order-sensitive effects.  Telemetry: [engine.runs_total],
    [engine.jobs.{queued,done,quarantined,skipped,retried}_total],
    [engine.steals_total], [engine.worker.busy_ns{worker=i}],
    [engine.utilization{sched=...}], [engine.wall_ns], span
    [engine.run]. *)

val throughput_per_s : 'r report -> float
(** Queued jobs per wall-clock second (0 for an empty or instant run). *)

val pp_report : Format.formatter -> 'r report -> unit
