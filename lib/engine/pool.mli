(** Parallel index-space executor behind the engine's domain scheduler.

    The implementation is selected at build time: on OCaml >= 5.0 a real
    [Domain]-based pool ([pool_domains.ml]); on 4.14 a sequential
    fallback ([pool_fallback.ml]) with the same signature, so every
    caller compiles and runs everywhere and [available] tells the truth
    about what actually executed. *)

val available : bool
(** Whether spawning domains is supported by this build.  When [false],
    {!run} executes sequentially on the calling thread (worker 0). *)

val recommended : unit -> int
(** The runtime's recommended worker count (1 on the fallback). *)

type stat = {
  s_jobs : int;  (** indices this worker executed *)
  s_busy_ns : int64;  (** time spent inside [f] *)
  s_steals : int;  (** indices taken from another worker's chunk *)
}

val run : workers:int -> n:int -> f:(worker:int -> int -> unit) -> stat array
(** [run ~workers ~n ~f] calls [f ~worker i] exactly once for every
    [i] in [0, n), partitioned into [workers] contiguous chunks; a
    worker that drains its own chunk steals from the fullest remaining
    one.  Returns one {!stat} per worker.  The first exception raised by
    [f] is re-raised after every worker has stopped. *)
