(* The engine's unit of work: one item pushed through the four fixed
   stages every fleet flow shares.

     prepare      resolve inputs for this item (cache lookups, skips)
     personalize  the per-item transform (keystream XOR, re-keying, ...)
     ship         move the result somewhere that can refuse it
     verify       post-delivery obligations

   A stage either advances the item or raises a {!fault}; faults carry
   the stage they happened at and whether a retry can plausibly change
   the answer.  The engine — not the stages — owns the retry loop, so a
   stage implementation never sleeps or loops itself. *)

type stage = Prepare | Personalize | Ship | Verify

let stage_label = function
  | Prepare -> "prepare"
  | Personalize -> "personalize"
  | Ship -> "ship"
  | Verify -> "verify"

type fault = { f_stage : stage; f_reason : string; f_retryable : bool }

let fault ?(retryable = false) stage reason =
  { f_stage = stage; f_reason = reason; f_retryable = retryable }

(* A typed pipeline over per-item state: ['i] the queued item, ['a]/['b]/['c]
   the intermediate states, ['r] the finished result.  [admit] runs first
   and can drop the item from the run entirely (e.g. an already-quarantined
   device) — a skip is bookkeeping, not a failure. *)
type ('i, 'a, 'b, 'c, 'r) spec = {
  admit : 'i -> string option;  (* Some reason = skip *)
  prepare : 'i -> ('a, fault) result;
  personalize : 'a -> ('b, fault) result;
  ship : 'b -> ('c, fault) result;
  verify : 'c -> ('r, fault) result;
}

let always_admit _ = None

type 'r outcome =
  | Done of 'r
  | Faulted of fault  (* quarantined by the engine's fault hook *)
  | Skipped of string

let run_once spec item =
  let ( let* ) = Result.bind in
  let* a = spec.prepare item in
  let* b = spec.personalize a in
  let* c = spec.ship b in
  spec.verify c

let pp_fault fmt f =
  Format.fprintf fmt "%s: %s%s" (stage_label f.f_stage) f.f_reason
    (if f.f_retryable then " (retryable)" else "")

let pp_outcome pp_r fmt = function
  | Done r -> pp_r fmt r
  | Faulted f -> Format.fprintf fmt "faulted at %a" pp_fault f
  | Skipped reason -> Format.fprintf fmt "skipped (%s)" reason
