(** The engine's unit of work: one item pushed through four fixed,
    typed stages — prepare, personalize, ship, verify — the shape every
    ERIC fleet flow shares (deployment, key rotation, re-enrollment).

    Stages never retry or sleep themselves; they report a {!fault} and
    the engine's retry/quarantine hooks (lifted from the fleet shipper)
    decide what happens next. *)

type stage = Prepare | Personalize | Ship | Verify

val stage_label : stage -> string
(** ["prepare"], ["personalize"], ["ship"], ["verify"] — telemetry label
    values. *)

type fault = { f_stage : stage; f_reason : string; f_retryable : bool }

val fault : ?retryable:bool -> stage -> string -> fault
(** A stage failure; [retryable] (default false) marks faults a re-run
    could plausibly clear (transient channel loss, not a bad signature). *)

type ('i, 'a, 'b, 'c, 'r) spec = {
  admit : 'i -> string option;
      (** [Some reason] drops the item from the run as {!Skipped} before
          any stage runs — bookkeeping, not failure. *)
  prepare : 'i -> ('a, fault) result;
  personalize : 'a -> ('b, fault) result;
  ship : 'b -> ('c, fault) result;
  verify : 'c -> ('r, fault) result;
}

val always_admit : 'i -> string option
(** Admits everything. *)

type 'r outcome =
  | Done of 'r
  | Faulted of fault  (** gave up: fault not retryable or retries exhausted *)
  | Skipped of string

val run_once : ('i, 'a, 'b, 'c, 'r) spec -> 'i -> ('r, fault) result
(** One pass through the four stages, stopping at the first fault.
    [admit] is {e not} consulted — the engine handles skips. *)

val pp_fault : Format.formatter -> fault -> unit
val pp_outcome :
  (Format.formatter -> 'r -> unit) -> Format.formatter -> 'r outcome -> unit
