(* Sequential fallback for OCaml < 5.0: same signature as the domain
   pool, runs every index in order on the calling thread.  [available]
   is false so callers (and their telemetry) can report that requests
   for parallelism degraded to sequential execution rather than
   pretending domains ran. *)

let available = false
let recommended () = 1

type stat = { s_jobs : int; s_busy_ns : int64; s_steals : int }

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let run ~workers ~n ~f =
  if workers < 1 then invalid_arg "Pool.run: workers must be positive";
  if n < 0 then invalid_arg "Pool.run: negative job count";
  let busy = ref 0L in
  for i = 0 to n - 1 do
    let t0 = now_ns () in
    f ~worker:0 i;
    busy := Int64.add !busy (Int64.sub (now_ns ()) t0)
  done;
  [| { s_jobs = n; s_busy_ns = !busy; s_steals = 0 } |]
