(* Domain-based pool (OCaml >= 5.0): self-scheduling over contiguous
   chunks with work stealing.

   Every chunk [c] owns an atomic cursor; claiming an index is one
   [Atomic.fetch_and_add], whether by the owner or a thief, so each
   index is executed exactly once and the claim path is identical either
   way — "stealing" is just claiming from a chunk you don't own.  A
   worker drains its own chunk first (cache-friendly, zero contention in
   the common case), then repeatedly raids whichever chunk has the most
   work left. *)

let available = true
let recommended () = Domain.recommended_domain_count ()

type stat = { s_jobs : int; s_busy_ns : int64; s_steals : int }

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let run ~workers ~n ~f =
  if workers < 1 then invalid_arg "Pool.run: workers must be positive";
  if n < 0 then invalid_arg "Pool.run: negative job count";
  let workers = min workers (max 1 n) in
  let chunk w =
    (* contiguous [lo, hi) chunks differing by at most one in size *)
    let q = n / workers and r = n mod workers in
    let lo = (w * q) + min w r in
    let hi = lo + q + if w < r then 1 else 0 in
    (lo, hi)
  in
  let cursors = Array.init workers (fun w -> Atomic.make (fst (chunk w))) in
  let failure = Atomic.make None in
  let work w =
    let jobs = ref 0 and steals = ref 0 and busy = ref 0L in
    let claim c =
      let _, hi = chunk c in
      let i = Atomic.fetch_and_add cursors.(c) 1 in
      if i < hi then Some i else None
    in
    let execute ~stolen i =
      let t0 = now_ns () in
      (try f ~worker:w i
       with e ->
         (* first failure wins; the pool still drains so joins return *)
         ignore (Atomic.compare_and_set failure None (Some e)));
      busy := Int64.add !busy (Int64.sub (now_ns ()) t0);
      incr jobs;
      if stolen then incr steals
    in
    let rec drain_own () =
      if Atomic.get failure = None then
        match claim w with
        | Some i ->
          execute ~stolen:false i;
          drain_own ()
        | None -> ()
    in
    (* raid the chunk with the most remaining work until all are dry *)
    let rec drain_others () =
      if Atomic.get failure = None then begin
        let victim = ref (-1) and best = ref 0 in
        for c = 0 to workers - 1 do
          if c <> w then begin
            let _, hi = chunk c in
            let left = hi - Atomic.get cursors.(c) in
            if left > !best then begin
              best := left;
              victim := c
            end
          end
        done;
        if !victim >= 0 then begin
          (match claim !victim with
          | Some i -> execute ~stolen:true i
          | None -> ());
          drain_others ()
        end
      end
    in
    drain_own ();
    drain_others ();
    { s_jobs = !jobs; s_busy_ns = !busy; s_steals = !steals }
  in
  let stats =
    if workers = 1 then [| work 0 |]
    else begin
      let spawned = Array.init (workers - 1) (fun i -> Domain.spawn (fun () -> work (i + 1))) in
      let mine = work 0 in
      Array.append [| mine |] (Array.map Domain.join spawned)
    end
  in
  (match Atomic.get failure with Some e -> raise e | None -> ());
  stats
