(* The campaign engine: a generic parallel work queue that pushes items
   through a {!Job.spec} under a bounded in-flight window, with the
   retry/quarantine policy that used to live ad hoc in each fleet flow.

   Two schedulers sit behind one signature:

   - [Deterministic]: jobs run in index order on the calling thread.
     Reproducible everywhere (including OCaml 4.14), the reference
     semantics for tests and CI gates.
   - [Domains n]: jobs run on an OCaml-5 domain pool ({!Pool}); on a
     runtime without domains the pool degrades to sequential execution
     and the report says so ([scheduler_used = "domains-fallback"]).

   Determinism contract: a job's outcome may depend only on its item
   (and state owned by that item, e.g. one device's PRNG) — never on
   execution order.  Under that contract both schedulers produce
   identical outcome arrays, because results land by job index and
   commits are replayed in index order regardless of completion order.
   The only thing allowed to differ is wall-clock timing. *)

type scheduler = Deterministic | Domains of int  (* 0 = runtime's recommendation *)

let scheduler_of_string s =
  match String.split_on_char ':' s with
  | [ "deterministic" ] | [ "det" ] -> Ok Deterministic
  | [ "domains" ] -> Ok (Domains 0)
  | [ "domains"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 1 -> Ok (Domains n)
    | _ -> Error "domains:<positive worker count>")
  | _ -> Error (Printf.sprintf "unknown scheduler %S (expected deterministic or domains[:N])" s)

let scheduler_label = function
  | Deterministic -> "deterministic"
  | Domains 0 -> "domains"
  | Domains n -> Printf.sprintf "domains:%d" n

type config = {
  scheduler : scheduler;
  window : int;  (* max jobs in flight / committed per batch *)
  retries : int;  (* extra attempts granted to retryable faults *)
  retry_delay_ns : int64;  (* simulated backoff before the first retry *)
  max_delay_ns : int64;  (* cap for the doubling backoff *)
}

let default_config =
  {
    scheduler = Deterministic;
    window = 1024;
    retries = 0;
    retry_delay_ns = 1_000_000L (* 1 ms *);
    max_delay_ns = 1_000_000_000L (* 1 s *);
  }

(* Shipper-style doubling backoff, simulated (accounted, never slept). *)
let delay_ns config ~retry =
  let rec go d i =
    if i <= 1 || Int64.compare d config.max_delay_ns >= 0 then d
    else go (Int64.mul d 2L) (i - 1)
  in
  let d = go config.retry_delay_ns retry in
  if Int64.compare d config.max_delay_ns > 0 then config.max_delay_ns else d

type 'r completion = {
  c_index : int;
  c_outcome : 'r Job.outcome;
  c_attempts : int;
  c_backoff_ns : int64;  (* simulated retry backoff this job accrued *)
  c_ns : int64;  (* wall time inside the stages, all attempts *)
}

type worker = { w_jobs : int; w_busy_ns : int64; w_steals : int }

type 'r report = {
  name : string;
  scheduler_used : string;
  queued : int;
  completions : 'r completion array;  (* by job index *)
  jobs_done : int;
  quarantined : int;
  skipped : int;
  retried_jobs : int;
  backoff_ns : int64;
  workers : worker array;
  wall_ns : int64;
  utilization : float;  (* busy time / (wall * workers), 0 when idle *)
}

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let count ?by name =
  if Eric_telemetry.Control.is_enabled () then Eric_telemetry.Registry.inc ?by name

(* One job, retry loop included: re-run the whole stage chain while the
   fault is retryable and the budget allows.  Stages are written to be
   idempotent up to their fault point (nothing is committed until the
   coordinator replays completions), so re-running from [prepare] is
   safe and mirrors what the shipper does per delivery attempt. *)
let run_job config spec item ~index =
  let t0 = now_ns () in
  match spec.Job.admit item with
  | Some reason ->
    {
      c_index = index;
      c_outcome = Job.Skipped reason;
      c_attempts = 0;
      c_backoff_ns = 0L;
      c_ns = Int64.sub (now_ns ()) t0;
    }
  | None ->
    let rec attempt n backoff =
      match Job.run_once spec item with
      | Ok r -> (Job.Done r, n, backoff)
      | Error f when f.Job.f_retryable && n <= config.retries ->
        attempt (n + 1) (Int64.add backoff (delay_ns config ~retry:n))
      | Error f -> (Job.Faulted f, n, backoff)
    in
    let outcome, attempts, backoff = attempt 1 0L in
    {
      c_index = index;
      c_outcome = outcome;
      c_attempts = attempts;
      c_backoff_ns = backoff;
      c_ns = Int64.sub (now_ns ()) t0;
    }

(* Per-worker stats accumulate across window batches; batches may use
   fewer workers (e.g. the last, short one), so merge to the longer. *)
let merge_workers acc stats =
  match acc with
  | None -> Some stats
  | Some a ->
    let len = max (Array.length a) (Array.length stats) in
    let zero = { w_jobs = 0; w_busy_ns = 0L; w_steals = 0 } in
    let at arr i = if i < Array.length arr then arr.(i) else zero in
    Some
      (Array.init len (fun i ->
           let x = at a i and y = at stats i in
           {
             w_jobs = x.w_jobs + y.w_jobs;
             w_busy_ns = Int64.add x.w_busy_ns y.w_busy_ns;
             w_steals = x.w_steals + y.w_steals;
           }))

let run ?(config = default_config) ?(commit = fun (_ : _ completion) -> ()) ~name spec items =
  if config.window < 1 then invalid_arg "Engine.run: window must be positive";
  if config.retries < 0 then invalid_arg "Engine.run: negative retries";
  Eric_telemetry.Span.with_ ~cat:"engine" ~name:"engine.run" (fun () ->
      let n = Array.length items in
      let t0 = now_ns () in
      count "engine.runs_total";
      count ~by:(Int64.of_int n) "engine.jobs.queued_total";
      let completions =
        Array.make n
          {
            c_index = 0;
            c_outcome = Job.Skipped "unscheduled";
            c_attempts = 0;
            c_backoff_ns = 0L;
            c_ns = 0L;
          }
      in
      let sequential lo hi =
        let busy = ref 0L in
        for i = lo to hi - 1 do
          let c = run_job config spec items.(i) ~index:i in
          completions.(i) <- c;
          busy := Int64.add !busy c.c_ns
        done;
        [| { w_jobs = hi - lo; w_busy_ns = !busy; w_steals = 0 } |]
      in
      let used, workers =
        (* The window bounds how many jobs are in flight before their
           completions are committed; batches run back to back. *)
        let rec batches lo acc =
          if lo >= n then acc
          else begin
            let hi = min n (lo + config.window) in
            let stats =
              match config.scheduler with
              | Deterministic -> sequential lo hi
              | Domains want ->
                let want = if want = 0 then Pool.recommended () else want in
                let workers = max 1 (min want config.window) in
                Pool.run ~workers ~n:(hi - lo) ~f:(fun ~worker:_ i ->
                    completions.(lo + i) <- run_job config spec items.(lo + i) ~index:(lo + i))
                |> Array.map (fun (s : Pool.stat) ->
                       { w_jobs = s.Pool.s_jobs; w_busy_ns = s.Pool.s_busy_ns; w_steals = s.Pool.s_steals })
            in
            (* replay this batch's completions in index order *)
            for i = lo to hi - 1 do
              commit completions.(i)
            done;
            batches hi (merge_workers acc stats)
          end
        in
        let workers =
          match batches 0 None with
          | Some w -> w
          | None -> [||]
        in
        let used =
          match config.scheduler with
          | Deterministic -> "deterministic"
          | Domains _ when Pool.available -> scheduler_label config.scheduler
          | Domains _ -> "domains-fallback"
        in
        (used, workers)
      in
      let wall_ns = Int64.sub (now_ns ()) t0 in
      let jobs_done = ref 0 and quarantined = ref 0 and skipped = ref 0 in
      let retried = ref 0 and backoff = ref 0L in
      Array.iter
        (fun c ->
          (match c.c_outcome with
          | Job.Done _ -> incr jobs_done
          | Job.Faulted _ -> incr quarantined
          | Job.Skipped _ -> incr skipped);
          if c.c_attempts > 1 then incr retried;
          backoff := Int64.add !backoff c.c_backoff_ns)
        completions;
      let busy = Array.fold_left (fun a w -> Int64.add a w.w_busy_ns) 0L workers in
      let utilization =
        if Array.length workers = 0 || Int64.compare wall_ns 0L <= 0 then 0.0
        else
          Int64.to_float busy
          /. (Int64.to_float wall_ns *. float_of_int (Array.length workers))
      in
      count ~by:(Int64.of_int !jobs_done) "engine.jobs.done_total";
      count ~by:(Int64.of_int !quarantined) "engine.jobs.quarantined_total";
      count ~by:(Int64.of_int !skipped) "engine.jobs.skipped_total";
      count ~by:(Int64.of_int !retried) "engine.jobs.retried_total";
      if Eric_telemetry.Control.is_enabled () then begin
        Eric_telemetry.Registry.inc
          ~by:(Int64.of_int (Array.fold_left (fun a w -> a + w.w_steals) 0 workers))
          "engine.steals_total";
        Array.iteri
          (fun i w ->
            Eric_telemetry.Registry.observe
              ~labels:[ ("worker", string_of_int i) ]
              "engine.worker.busy_ns" (Int64.to_float w.w_busy_ns))
          workers;
        Eric_telemetry.Registry.set ~labels:[ ("sched", used) ] "engine.utilization"
          utilization;
        Eric_telemetry.Registry.observe "engine.wall_ns" (Int64.to_float wall_ns)
      end;
      {
        name;
        scheduler_used = used;
        queued = n;
        completions;
        jobs_done = !jobs_done;
        quarantined = !quarantined;
        skipped = !skipped;
        retried_jobs = !retried;
        backoff_ns = !backoff;
        workers;
        wall_ns;
        utilization;
      })

let throughput_per_s r =
  if Int64.compare r.wall_ns 0L <= 0 then 0.0
  else float_of_int r.queued /. (Int64.to_float r.wall_ns /. 1e9)

let pp_report fmt r =
  Format.fprintf fmt
    "engine %s (%s): %d queued, %d done, %d quarantined, %d skipped, %d retried@\n\
    \  %d worker(s), %.1f%% utilization, %d steal(s), %.3f ms wall, %.0f jobs/s"
    r.name r.scheduler_used r.queued r.jobs_done r.quarantined r.skipped r.retried_jobs
    (Array.length r.workers) (100.0 *. r.utilization)
    (Array.fold_left (fun a w -> a + w.w_steals) 0 r.workers)
    (Int64.to_float r.wall_ns /. 1e6)
    (throughput_per_s r)
