type region = Header | Map | Payload | Data | Signature | Dram | Key

let region_name = function
  | Header -> "header"
  | Map -> "map"
  | Payload -> "payload"
  | Data -> "data"
  | Signature -> "signature"
  | Dram -> "dram"
  | Key -> "key"

let region_of_string = function
  | "header" -> Ok Header
  | "map" -> Ok Map
  | "payload" -> Ok Payload
  | "data" -> Ok Data
  | "signature" -> Ok Signature
  | "dram" -> Ok Dram
  | "key" -> Ok Key
  | s ->
    Error
      (Printf.sprintf "unknown region %S (expected header|map|payload|data|signature|dram|key)" s)

let wire_regions = [ Header; Map; Payload; Data; Signature ]
let all_regions = wire_regions @ [ Dram; Key ]

type outcome = Detected of string | Masked | Silent

let outcome_label = function Detected _ -> "detected" | Masked -> "masked" | Silent -> "silent"

type row = {
  region : region;
  injections : int;
  detected : int;
  masked : int;
  silent : int;
}

type escape = { e_region : region; e_bit : int }

type report = { rows : row list; escapes : escape list; baseline : Oracle.behaviour }

let coverage row =
  let consequential = row.detected + row.silent in
  if consequential = 0 then 1.0 else float_of_int row.detected /. float_of_int consequential

let pooled f report =
  List.fold_left (fun acc row -> acc + f row) 0 report.rows

let detection_coverage report =
  let detected = pooled (fun r -> r.detected) report in
  let silent = pooled (fun r -> r.silent) report in
  if detected + silent = 0 then 1.0
  else float_of_int detected /. float_of_int (detected + silent)

let silent_total report = pooled (fun r -> r.silent) report

type config = {
  fuel : int;
  mode : Eric.Config.mode;
  device_id : int64;
  seed : int64;
  count : int;
  regions : region list;
}

let default_config =
  {
    fuel = Oracle.default_fuel;
    mode = Eric.Config.Partial Eric.Config.Select_all;
    device_id = 0xD07L;
    seed = 0x1A7EC7L;
    count = 1000;
    regions = wire_regions;
  }

let flip_bit buf ~bit =
  let byte = bit / 8 and pos = bit mod 8 in
  Bytes.set buf byte (Char.chr (Char.code (Bytes.get buf byte) lxor (1 lsl pos)))

let campaign ?(config = default_config) source =
  let ( let* ) = Result.bind in
  let* () = if config.regions = [] then Error "no injection regions requested" else Ok () in
  let* image = Eric_cc.Driver.compile source in
  let target = Eric.Target.of_id config.device_id in
  let key = Eric.Protocol.provision target in
  let build = Eric.Source.package_image ~mode:config.mode ~key image in
  let pkg = build.Eric.Source.package in
  let wire = Eric.Package.serialize pkg in
  let map_len =
    match pkg.Eric.Package.map with
    | None -> 0
    | Some m -> Bytes.length (Eric_util.Bitvec.to_bytes m)
  in
  let text_len = Bytes.length pkg.Eric.Package.enc_text in
  let data_len = Bytes.length pkg.Eric.Package.data in
  let sig_len = Bytes.length pkg.Eric.Package.enc_signature in
  let header_len = Eric.Package.header_size in
  let wire_span = function
    | Header -> (0, header_len)
    | Map -> (header_len, map_len)
    | Payload -> (header_len + map_len, text_len)
    | Data -> (header_len + map_len + text_len, data_len)
    | Signature -> (header_len + map_len + text_len + data_len, sig_len)
    | Dram | Key -> invalid_arg "wire_span"
  in
  let region_bits = function
    | Dram -> (Eric_rv.Program.text_size image + Bytes.length image.Eric_rv.Program.data) * 8
    | Key -> Bytes.length key * 8
    | r -> snd (wire_span r) * 8
  in
  let* () =
    match List.find_opt (fun r -> region_bits r = 0) config.regions with
    | Some r ->
      Error
        (Printf.sprintf "region %s is empty for this package (mode %s)" (region_name r)
           (Format.asprintf "%a" Eric.Config.pp_mode config.mode))
    | None -> Ok ()
  in
  (* Baseline: the clean package must validate, and its behaviour anchors
     the masked/silent classification. *)
  let* () =
    match Eric.Target.receive_bytes target wire with
    | Ok _ -> Ok ()
    | Error e ->
      Error (Format.asprintf "clean package refused: %a" Eric.Target.pp_load_error e)
  in
  let baseline = Oracle.of_result (Eric_sim.Soc.run_program ~fuel:config.fuel image) in
  let* () =
    match baseline with
    | Oracle.Exhausted -> Error "baseline run exhausted its fuel; raise config.fuel"
    | _ -> Ok ()
  in
  let classify_run behaviour ~trap_is_detection =
    match behaviour with
    | (Oracle.Trap _ | Oracle.Exhausted) when trap_is_detection ->
      (* a fault that wedges or traps the core is caught by the trap
         handler / watchdog, not silently computed through *)
      Detected "cpu-trap"
    | b -> if Oracle.behaviour_equal b baseline then Masked else Silent
  in
  let inject_once rng region =
    let bit = Eric_util.Prng.int rng ~bound:(region_bits region) in
    let outcome =
      match region with
      | Header | Map | Payload | Data | Signature ->
        let off, _ = wire_span region in
        let mutated = Bytes.copy wire in
        flip_bit mutated ~bit:((off * 8) + bit);
        (match Eric.Target.receive_bytes target mutated with
        | Error e -> Detected (Eric.Target.refusal_reason e)
        | Ok loaded ->
          classify_run ~trap_is_detection:false
            (Oracle.of_result
               (Eric_sim.Soc.run_program ~fuel:config.fuel loaded.Eric.Target.image)))
      | Dram ->
        (* post-validation soft error in main memory: outside the HDE's
           protection window by design *)
        let memory = Eric_sim.Soc.load image in
        let text_len = Eric_rv.Program.text_size image in
        let byte = bit / 8 in
        let addr =
          if byte < text_len then Eric_rv.Program.Layout.text_base + byte
          else Eric_rv.Program.Layout.data_base image + (byte - text_len)
        in
        Eric_sim.Memory.write_u8 memory addr
          (Eric_sim.Memory.read_u8 memory addr lxor (1 lsl (bit mod 8)));
        classify_run ~trap_is_detection:true
          (Oracle.of_result
             (Eric_sim.Soc.run_loaded ~fuel:config.fuel ~load_cycles:0L image memory))
      | Key ->
        let flipped = Bytes.copy key in
        flip_bit flipped ~bit;
        (match Eric.Encrypt.decrypt ~key:flipped pkg with
        | Error (Eric.Encrypt.Framing_failure _) -> Detected "framing"
        | Error Eric.Encrypt.Signature_mismatch -> Detected "signature"
        | Ok (img, _) ->
          classify_run ~trap_is_detection:false
            (Oracle.of_result (Eric_sim.Soc.run_program ~fuel:config.fuel img)))
    in
    Eric_telemetry.Registry.inc "verif.injections_total"
      ~labels:[ ("region", region_name region); ("outcome", outcome_label outcome) ];
    (bit, outcome)
  in
  let rng = Eric_util.Prng.create ~seed:config.seed in
  let counts =
    List.map (fun r -> (r, ref { region = r; injections = 0; detected = 0; masked = 0; silent = 0 }))
      config.regions
  in
  let escapes = ref [] in
  let nregions = List.length config.regions in
  for _ = 1 to config.count do
    let region = List.nth config.regions (Eric_util.Prng.int rng ~bound:nregions) in
    let bit, outcome = inject_once rng region in
    let cell = List.assoc region counts in
    let row = !cell in
    cell :=
      {
        row with
        injections = row.injections + 1;
        detected = (row.detected + match outcome with Detected _ -> 1 | _ -> 0);
        masked = (row.masked + match outcome with Masked -> 1 | _ -> 0);
        silent = (row.silent + match outcome with Silent -> 1 | _ -> 0);
      };
    match outcome with
    | Silent -> escapes := { e_region = region; e_bit = bit } :: !escapes
    | Detected _ | Masked -> ()
  done;
  Ok { rows = List.map (fun (_, cell) -> !cell) counts; escapes = List.rev !escapes; baseline }

let pp_report fmt report =
  Format.fprintf fmt "@[<v>%-10s %10s %9s %7s %7s %9s@," "region" "injections" "detected"
    "masked" "silent" "coverage";
  List.iter
    (fun row ->
      Format.fprintf fmt "%-10s %10d %9d %7d %7d %8.1f%%@," (region_name row.region)
        row.injections row.detected row.masked row.silent (100.0 *. coverage row))
    report.rows;
  Format.fprintf fmt "overall detection coverage: %.2f%% (%d silent escapes)@]"
    (100.0 *. detection_coverage report)
    (silent_total report)
