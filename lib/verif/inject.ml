type region = Header | Map | Payload | Data | Signature | Dram | Key

let region_name = function
  | Header -> "header"
  | Map -> "map"
  | Payload -> "payload"
  | Data -> "data"
  | Signature -> "signature"
  | Dram -> "dram"
  | Key -> "key"

let region_of_string = function
  | "header" -> Ok Header
  | "map" -> Ok Map
  | "payload" -> Ok Payload
  | "data" -> Ok Data
  | "signature" -> Ok Signature
  | "dram" -> Ok Dram
  | "key" -> Ok Key
  | s ->
    Error
      (Printf.sprintf "unknown region %S (expected header|map|payload|data|signature|dram|key)" s)

let wire_regions = [ Header; Map; Payload; Data; Signature ]
let all_regions = wire_regions @ [ Dram; Key ]

type outcome = Detected of string | Masked | Silent

let outcome_label = function Detected _ -> "detected" | Masked -> "masked" | Silent -> "silent"

type row = {
  region : region;
  injections : int;
  detected : int;
  masked : int;
  silent : int;
}

type escape = { e_region : region; e_bit : int; e_seed : int64; e_iter : int }

type report = {
  rows : row list;
  escapes : escape list;
  baseline : Oracle.behaviour;
  seed : int64;
  count : int;
  dram_overhead : float;
}

let coverage row =
  let consequential = row.detected + row.silent in
  if consequential = 0 then 1.0 else float_of_int row.detected /. float_of_int consequential

let pooled f report =
  List.fold_left (fun acc row -> acc + f row) 0 report.rows

let detection_coverage report =
  let detected = pooled (fun r -> r.detected) report in
  let silent = pooled (fun r -> r.silent) report in
  if detected + silent = 0 then 1.0
  else float_of_int detected /. float_of_int (detected + silent)

let silent_total report = pooled (fun r -> r.silent) report

type config = {
  fuel : int;
  mode : Eric.Config.mode;
  device_id : int64;
  seed : int64;
  count : int;
  regions : region list;
  guard : Eric_hw.Guard.config;
}

let default_config =
  {
    fuel = Oracle.default_fuel;
    mode = Eric.Config.Partial Eric.Config.Select_all;
    device_id = 0xD07L;
    seed = 0x1A7EC7L;
    count = 1000;
    regions = wire_regions;
    guard = Eric_hw.Guard.disabled;
  }

let flip_bit buf ~bit =
  let byte = bit / 8 and pos = bit mod 8 in
  Bytes.set buf byte (Char.chr (Char.code (Bytes.get buf byte) lxor (1 lsl pos)))

let replay_command ~regions escape =
  Printf.sprintf "eric verif inject --regions %s --seed 0x%Lx --count %d"
    (String.concat "," (List.map region_name regions))
    escape.e_seed escape.e_iter

let campaign ?(config = default_config) source =
  let ( let* ) = Result.bind in
  let* () = if config.regions = [] then Error "no injection regions requested" else Ok () in
  let* image = Eric_cc.Driver.compile source in
  let target = Eric.Target.of_id config.device_id in
  let key = Eric.Protocol.provision target in
  let build = Eric.Source.package_image ~mode:config.mode ~key image in
  let pkg = build.Eric.Source.package in
  let wire = Eric.Package.serialize pkg in
  let map_len =
    match pkg.Eric.Package.map with
    | None -> 0
    | Some m -> Bytes.length (Eric_util.Bitvec.to_bytes m)
  in
  let text_len = Bytes.length pkg.Eric.Package.enc_text in
  let data_len = Bytes.length pkg.Eric.Package.data in
  let sig_len = Bytes.length pkg.Eric.Package.enc_signature in
  let header_len = Eric.Package.header_size in
  let wire_span = function
    | Header -> (0, header_len)
    | Map -> (header_len, map_len)
    | Payload -> (header_len + map_len, text_len)
    | Data -> (header_len + map_len + text_len, data_len)
    | Signature -> (header_len + map_len + text_len + data_len, sig_len)
    | Dram | Key -> invalid_arg "wire_span"
  in
  let region_bits = function
    | Dram -> (Eric_rv.Program.text_size image + Bytes.length image.Eric_rv.Program.data) * 8
    | Key -> Bytes.length key * 8
    | r -> snd (wire_span r) * 8
  in
  let* () =
    match List.find_opt (fun r -> region_bits r = 0) config.regions with
    | Some r ->
      Error
        (Printf.sprintf "region %s is empty for this package (mode %s)" (region_name r)
           (Format.asprintf "%a" Eric.Config.pp_mode config.mode))
    | None -> Ok ()
  in
  (* Baseline: the clean package must validate, and its behaviour anchors
     the masked/silent classification. *)
  let* () =
    match Eric.Target.receive_bytes target wire with
    | Ok _ -> Ok ()
    | Error e ->
      Error (Format.asprintf "clean package refused: %a" Eric.Target.pp_load_error e)
  in
  let baseline = Oracle.of_result (Eric_sim.Soc.run_program ~fuel:config.fuel image) in
  let* () =
    match baseline with
    | Oracle.Exhausted -> Error "baseline run exhausted its fuel; raise config.fuel"
    | _ -> Ok ()
  in
  let classify_run behaviour ~trap_is_detection =
    match behaviour with
    | (Oracle.Trap _ | Oracle.Exhausted) when trap_is_detection ->
      (* a fault that wedges or traps the core is caught by the trap
         handler / watchdog, not silently computed through *)
      Detected "cpu-trap"
    | b -> if Oracle.behaviour_equal b baseline then Masked else Silent
  in
  let guard_cycle_sum = ref 0L and exec_cycle_sum = ref 0L in
  let inject_once rng region =
    let bit = Eric_util.Prng.int rng ~bound:(region_bits region) in
    let outcome =
      match region with
      | Header | Map | Payload | Data | Signature ->
        let off, _ = wire_span region in
        let mutated = Bytes.copy wire in
        flip_bit mutated ~bit:((off * 8) + bit);
        (match Eric.Target.receive_bytes target mutated with
        | Error e -> Detected (Eric.Target.refusal_reason e)
        | Ok loaded ->
          classify_run ~trap_is_detection:false
            (Oracle.of_result
               (Eric_sim.Soc.run_program ~fuel:config.fuel loaded.Eric.Target.image)))
      | Dram ->
        (* post-validation soft error in main memory: outside the HDE's
           load-time protection window — exactly what the runtime guard
           exists to cover *)
        let memory = Eric_sim.Soc.load image in
        let text_len = Eric_rv.Program.text_size image in
        let byte = bit / 8 in
        let addr =
          if byte < text_len then Eric_rv.Program.Layout.text_base + byte
          else Eric_rv.Program.Layout.data_base image + (byte - text_len)
        in
        Eric_sim.Memory.write_u8 memory addr
          (Eric_sim.Memory.read_u8 memory addr lxor (1 lsl (bit mod 8)));
        let r =
          Eric_sim.Soc.run_loaded ~fuel:config.fuel ~guard:config.guard ~load_cycles:0L image
            memory
        in
        guard_cycle_sum := Int64.add !guard_cycle_sum r.Eric_sim.Soc.guard_cycles;
        exec_cycle_sum := Int64.add !exec_cycle_sum r.Eric_sim.Soc.exec_cycles;
        (match r.Eric_sim.Soc.status with
        | Eric_sim.Cpu.Integrity_fault _ -> Detected "integrity-guard"
        | _ -> classify_run ~trap_is_detection:true (Oracle.of_result r))
      | Key ->
        let flipped = Bytes.copy key in
        flip_bit flipped ~bit;
        (match Eric.Encrypt.decrypt ~key:flipped pkg with
        | Error (Eric.Encrypt.Framing_failure _) -> Detected "framing"
        | Error Eric.Encrypt.Signature_mismatch -> Detected "signature"
        | Ok (img, _) ->
          classify_run ~trap_is_detection:false
            (Oracle.of_result (Eric_sim.Soc.run_program ~fuel:config.fuel img)))
    in
    Eric_telemetry.Registry.inc "verif.injections_total"
      ~labels:[ ("region", region_name region); ("outcome", outcome_label outcome) ];
    (bit, outcome)
  in
  let rng = Eric_util.Prng.create ~seed:config.seed in
  let regions = Array.of_list config.regions in
  let nregions = Array.length regions in
  let counts =
    Array.map (fun r -> ref { region = r; injections = 0; detected = 0; masked = 0; silent = 0 })
      regions
  in
  let escapes = ref [] in
  for iter = 1 to config.count do
    let idx = Eric_util.Prng.int rng ~bound:nregions in
    let region = regions.(idx) in
    let bit, outcome = inject_once rng region in
    let cell = counts.(idx) in
    let row = !cell in
    cell :=
      {
        row with
        injections = row.injections + 1;
        detected = (row.detected + match outcome with Detected _ -> 1 | _ -> 0);
        masked = (row.masked + match outcome with Masked -> 1 | _ -> 0);
        silent = (row.silent + match outcome with Silent -> 1 | _ -> 0);
      };
    match outcome with
    | Silent ->
      escapes :=
        { e_region = region; e_bit = bit; e_seed = config.seed; e_iter = iter } :: !escapes
    | Detected _ | Masked -> ()
  done;
  let overhead =
    if Int64.compare !exec_cycle_sum 0L > 0 then
      Int64.to_float !guard_cycle_sum /. Int64.to_float !exec_cycle_sum
    else 0.0
  in
  Ok
    {
      rows = Array.to_list (Array.map (fun cell -> !cell) counts);
      escapes = List.rev !escapes;
      baseline;
      seed = config.seed;
      count = config.count;
      dram_overhead = overhead;
    }

type sweep_point = {
  sp_mechanism : Eric_hw.Guard.mechanism;
  sp_injections : int;
  sp_detected : int;
  sp_silent : int;
  sp_coverage : float;
  sp_overhead : float;
}

let dram_sweep ?(config = default_config) ~mechanisms source =
  let ( let* ) = Result.bind in
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | mechanism :: rest ->
      let guard = { config.guard with Eric_hw.Guard.mechanism } in
      let* report = campaign ~config:{ config with regions = [ Dram ]; guard } source in
      let injections = pooled (fun r -> r.injections) report in
      let detected = pooled (fun r -> r.detected) report in
      let point =
        {
          sp_mechanism = mechanism;
          sp_injections = injections;
          sp_detected = detected;
          sp_silent = silent_total report;
          sp_coverage = detection_coverage report;
          sp_overhead = report.dram_overhead;
        }
      in
      loop (point :: acc) rest
  in
  loop [] mechanisms

let report_to_json config (report : report) =
  let open Eric_telemetry.Json in
  let row_json row =
    Obj
      [
        ("region", Str (region_name row.region));
        ("injections", Num (float_of_int row.injections));
        ("detected", Num (float_of_int row.detected));
        ("masked", Num (float_of_int row.masked));
        ("silent", Num (float_of_int row.silent));
        ("coverage", Num (coverage row));
      ]
  in
  let escape_json e =
    Obj
      [
        ("region", Str (region_name e.e_region));
        ("bit", Num (float_of_int e.e_bit));
        ("seed", Str (Printf.sprintf "0x%Lx" e.e_seed));
        ("iter", Num (float_of_int e.e_iter));
        ("replay", Str (replay_command ~regions:config.regions e));
      ]
  in
  Obj
    [
      ("seed", Str (Printf.sprintf "0x%Lx" report.seed));
      ("count", Num (float_of_int report.count));
      ("regions", List (List.map (fun r -> Str (region_name r)) config.regions));
      ("guard", Str (Eric_hw.Guard.mechanism_name config.guard.Eric_hw.Guard.mechanism));
      ("baseline", Str (Format.asprintf "%a" Oracle.pp_behaviour report.baseline));
      ("coverage", Num (detection_coverage report));
      ("silent_total", Num (float_of_int (silent_total report)));
      ("dram_overhead", Num report.dram_overhead);
      ("rows", List (List.map row_json report.rows));
      ("escapes", List (List.map escape_json report.escapes));
    ]

let sweep_to_json points =
  let open Eric_telemetry.Json in
  List
    (List.map
       (fun p ->
         Obj
           [
             ("guard", Str (Eric_hw.Guard.mechanism_name p.sp_mechanism));
             ("injections", Num (float_of_int p.sp_injections));
             ("detected", Num (float_of_int p.sp_detected));
             ("silent", Num (float_of_int p.sp_silent));
             ("coverage", Num p.sp_coverage);
             ("overhead", Num p.sp_overhead);
           ])
       points)

let pp_report fmt report =
  Format.fprintf fmt "@[<v>%-10s %10s %9s %7s %7s %9s@," "region" "injections" "detected"
    "masked" "silent" "coverage";
  List.iter
    (fun row ->
      Format.fprintf fmt "%-10s %10d %9d %7d %7d %8.1f%%@," (region_name row.region)
        row.injections row.detected row.masked row.silent (100.0 *. coverage row))
    report.rows;
  Format.fprintf fmt "overall detection coverage: %.2f%% (%d silent escapes)@]"
    (100.0 *. detection_coverage report)
    (silent_total report)
