(* Environmental-sweep campaign: enroll a population, then boot every
   device repeatedly at every operating corner and measure the key
   failure rate with and without the fuzzy extractor.  This is the
   experiment behind the PR's robustness claim: plain 15-vote majority
   keys fall over at >= 10x nominal noise, the extractor does not, and a
   reconstruction that *verifies* but yields a wrong key (a silent
   failure) is a campaign-failing event on its own. *)

type corner_row = {
  corner : string;
  env : Eric_puf.Env.t;
  boots : int;
  plain_failures : int;  (* majority-vote key differed from enrolled *)
  fuzzy_failures : int;  (* typed reconstruction refusals *)
  wrong_keys : int;  (* verified reconstructions with a wrong key: must be 0 *)
  attempts_total : int;  (* fuzzy attempts summed over successful boots *)
}

let plain_kfr row =
  if row.boots = 0 then 0.0 else float_of_int row.plain_failures /. float_of_int row.boots

let fuzzy_kfr row =
  if row.boots = 0 then 0.0 else float_of_int row.fuzzy_failures /. float_of_int row.boots

let mean_attempts row =
  let ok = row.boots - row.fuzzy_failures in
  if ok = 0 then 0.0 else float_of_int row.attempts_total /. float_of_int ok

type report = {
  devices : int;
  boots_per_device : int;
  max_kfr : float;
  rows : corner_row list;
}

type config = {
  devices : int;
  boots : int;  (* per device per corner *)
  seed : int64;  (* base device id of the population *)
  corners : (string * Eric_puf.Env.t) list;
  enroll : Eric_puf.Enroll.config;
  fuzzy : Eric_puf.Fuzzy.config;
  max_kfr : float;  (* per-corner post-extractor budget *)
}

let default_config =
  {
    devices = 6;
    boots = 25;
    seed = 0xE57EEDL;
    corners = Eric_puf.Env.corners;
    enroll = Eric_puf.Enroll.default_config;
    fuzzy = Eric_puf.Fuzzy.default_config;
    max_kfr = 1e-3;
  }

let breaches (report : report) =
  List.filter (fun row -> row.wrong_keys > 0 || fuzzy_kfr row > report.max_kfr) report.rows

let passed report = breaches report = []

let count ?labels name =
  if Eric_telemetry.Control.is_enabled () then Eric_telemetry.Registry.inc ?labels name

let campaign ?(config = default_config) () =
  Eric_telemetry.Span.with_ ~cat:"verif" ~name:"verif.envsweep" (fun () ->
      let ( let* ) = Result.bind in
      let* () = if config.devices < 1 then Error "need at least one device" else Ok () in
      let* () = if config.boots < 1 then Error "need at least one boot per corner" else Ok () in
      let* () = if config.corners = [] then Error "no corners requested" else Ok () in
      let* population =
        let rec build i acc =
          if i = config.devices then Ok (List.rev acc)
          else
            let device =
              Eric_puf.Device.manufacture (Int64.add config.seed (Int64.of_int i))
            in
            match Eric_puf.Enroll.enroll ~config:config.enroll device with
            | Error e ->
              Error
                (Printf.sprintf "device 0x%Lx failed enrollment: %s"
                   (Eric_puf.Device.id device) e)
            | Ok e ->
              (* The plain-majority reference key is the nominal boot, as a
                 fleet without helper data would have enrolled it. *)
              build (i + 1) ((device, e, Eric_puf.Device.puf_key device) :: acc)
        in
        build 0 []
      in
      let rows =
        List.map
          (fun (corner, env) ->
            let row =
              ref
                {
                  corner;
                  env;
                  boots = 0;
                  plain_failures = 0;
                  fuzzy_failures = 0;
                  wrong_keys = 0;
                  attempts_total = 0;
                }
            in
            List.iter
              (fun (device, (e : Eric_puf.Enroll.enrollment), plain_ref) ->
                for _ = 1 to config.boots do
                  let r = !row in
                  let plain_fail =
                    not (Bytes.equal (Eric_puf.Device.puf_key ~env device) plain_ref)
                  in
                  let fuzzy_fail, wrong, attempts =
                    match
                      Eric_puf.Fuzzy.reconstruct ~config:config.fuzzy ~env device
                        e.Eric_puf.Enroll.helper
                    with
                    | Ok rc ->
                      ( false,
                        not (Bytes.equal rc.Eric_puf.Fuzzy.key e.Eric_puf.Enroll.key),
                        rc.Eric_puf.Fuzzy.attempts_used )
                    | Error _ -> (true, false, 0)
                  in
                  count ~labels:[ ("corner", corner) ] "verif.envsweep.boots_total";
                  if plain_fail then
                    count ~labels:[ ("corner", corner) ] "verif.envsweep.plain_failures_total";
                  if fuzzy_fail then
                    count ~labels:[ ("corner", corner) ] "verif.envsweep.fuzzy_failures_total";
                  if wrong then
                    count ~labels:[ ("corner", corner) ] "verif.envsweep.wrong_keys_total";
                  row :=
                    {
                      r with
                      boots = r.boots + 1;
                      plain_failures = (r.plain_failures + if plain_fail then 1 else 0);
                      fuzzy_failures = (r.fuzzy_failures + if fuzzy_fail then 1 else 0);
                      wrong_keys = (r.wrong_keys + if wrong then 1 else 0);
                      attempts_total = r.attempts_total + attempts;
                    }
                done)
              population;
            !row)
          config.corners
      in
      Ok
        {
          devices = config.devices;
          boots_per_device = config.boots;
          max_kfr = config.max_kfr;
          rows;
        })

let to_json (report : report) =
  let open Eric_telemetry.Json in
  Obj
    [
      ("suite", Str "env_sweep");
      ("devices", Num (float_of_int report.devices));
      ("boots_per_device", Num (float_of_int report.boots_per_device));
      ("max_kfr", Num report.max_kfr);
      ("passed", Bool (passed report));
      ( "corners",
        List
          (List.map
             (fun row ->
               Obj
                 [
                   ("corner", Str row.corner);
                   ("noise_scale", Num (Eric_puf.Env.noise_scale row.env));
                   ("age_years", Num row.env.Eric_puf.Env.age_years);
                   ("boots", Num (float_of_int row.boots));
                   ("plain_failures", Num (float_of_int row.plain_failures));
                   ("plain_kfr", Num (plain_kfr row));
                   ("fuzzy_failures", Num (float_of_int row.fuzzy_failures));
                   ("fuzzy_kfr", Num (fuzzy_kfr row));
                   ("wrong_keys", Num (float_of_int row.wrong_keys));
                   ("mean_attempts", Num (mean_attempts row));
                 ])
             report.rows) );
    ]

let pp_report fmt (report : report) =
  Format.fprintf fmt "@[<v>%-14s %7s %6s %10s %10s %6s %9s@," "corner" "noise" "boots"
    "plain-kfr" "fuzzy-kfr" "wrong" "attempts";
  List.iter
    (fun row ->
      Format.fprintf fmt "%-14s %6.1fx %6d %9.4f %9.4f %6d %9.2f@," row.corner
        (Eric_puf.Env.noise_scale row.env)
        row.boots (plain_kfr row) (fuzzy_kfr row) row.wrong_keys (mean_attempts row))
    report.rows;
  (match breaches report with
  | [] ->
    Format.fprintf fmt "all corners within the %.0e post-extractor budget, no wrong keys@]"
      report.max_kfr
  | b ->
    Format.fprintf fmt "BREACH: %d corner(s) over budget or with wrong keys: %s@]"
      (List.length b)
      (String.concat ", " (List.map (fun r -> r.corner) b)))
