type behaviour =
  | Exit of { code : int; output : string }
  | Trap of string
  | Exhausted
  | Refused of string

type report = { interp : behaviour; plain : behaviour; encrypted : behaviour }

let behaviour_equal a b =
  match (a, b) with
  | Exit a, Exit b -> a.code = b.code && String.equal a.output b.output
  | Trap _, Trap _ -> true (* messages are layer-specific *)
  | Exhausted, Exhausted -> true
  | Refused a, Refused b -> String.equal a b
  | (Exit _ | Trap _ | Exhausted | Refused _), _ -> false

let agree r = behaviour_equal r.interp r.plain && behaviour_equal r.plain r.encrypted

let exhausted r =
  r.interp = Exhausted || r.plain = Exhausted || r.encrypted = Exhausted

let pp_behaviour fmt = function
  | Exit { code; output } ->
    Format.fprintf fmt "exit %d, %d output bytes (%S)" code (String.length output)
      (if String.length output > 40 then String.sub output 0 40 ^ "..." else output)
  | Trap msg -> Format.fprintf fmt "trap: %s" msg
  | Exhausted -> Format.pp_print_string fmt "out of fuel"
  | Refused msg -> Format.fprintf fmt "refused: %s" msg

let pp_report fmt r =
  Format.fprintf fmt "@[<v>interp    : %a@,plain     : %a@,encrypted : %a@]" pp_behaviour
    r.interp pp_behaviour r.plain pp_behaviour r.encrypted

let default_fuel = 2_000_000

(* The interpreter counts IR steps, the SoC counts retired RV
   instructions, and one IR step (a call with its prologue, a runtime
   print loop iteration, ...) expands to a bounded handful of
   instructions.  The SoC paths therefore get [soc_fuel_factor] times
   the interpreter's budget: a program whose interpretation completes
   within [fuel] steps can then never exhaust the machine paths, so a
   genuine [Exhausted] asymmetry means runaway compiled code, not a
   unit mismatch. *)
let soc_fuel_factor = 32

let of_result (r : Eric_sim.Soc.result) =
  match r.Eric_sim.Soc.status with
  | Eric_sim.Cpu.Exited code -> Exit { code; output = r.Eric_sim.Soc.output }
  | Eric_sim.Cpu.Faulted "out of fuel" -> Exhausted
  | Eric_sim.Cpu.Faulted msg -> Trap msg
  (* Behaviourally an abort; Inject inspects the raw status before this
     folding when it needs to credit the guard specifically. *)
  | Eric_sim.Cpu.Integrity_fault msg -> Trap ("integrity: " ^ msg)
  | Eric_sim.Cpu.Running -> Exhausted

let run ?(fuel = default_fuel) ?(mode = Eric.Config.Full) ?(device_id = 0xE51CL)
    ?(options = Eric_cc.Driver.default_options) source =
  let ( let* ) = Result.bind in
  (* The interpreter path strips any IR transform: it executes the
     pristine program, while the machine paths run the transformed one.
     A transform that changes observable behaviour therefore shows up
     as an interp/plain divergence — this is how obfuscation passes are
     proven semantics-preserving. *)
  let interp_options = { options with Eric_cc.Driver.transform = None } in
  let* ir = Eric_cc.Driver.compile_to_ir ~options:interp_options source in
  let interp =
    match Eric_cc.Ir_interp.run ~max_steps:fuel ir with
    | outcome ->
      Exit
        { code = outcome.Eric_cc.Ir_interp.exit_code; output = outcome.Eric_cc.Ir_interp.output }
    | exception Eric_cc.Ir_interp.Runtime_error "interpreter out of fuel" -> Exhausted
    | exception Eric_cc.Ir_interp.Runtime_error msg -> Trap msg
  in
  let fuel = fuel * soc_fuel_factor in
  let* image = Eric_cc.Driver.compile ~options source in
  let plain = of_result (Eric_sim.Soc.run_program ~fuel image) in
  let target = Eric.Target.of_id device_id in
  let key = Eric.Protocol.provision target in
  let build = Eric.Source.package_image ~mode ~key image in
  let wire = Eric.Package.serialize build.Eric.Source.package in
  let encrypted =
    match Eric.Package.parse wire with
    | Error msg -> Refused ("serialized package does not parse: " ^ msg)
    | Ok pkg -> (
      match Eric.Target.execute ~fuel target pkg with
      | Error e -> Refused (Format.asprintf "%a" Eric.Target.pp_load_error e)
      | Ok r -> of_result r)
  in
  Ok { interp; plain; encrypted }
