let remove t start len =
  let n = Array.length t in
  Array.append (Array.sub t 0 start) (Array.sub t (start + len) (n - start - len))

let minimize ?(max_tests = 400) ~failing trace =
  let tests = ref 0 in
  let check t =
    if !tests >= max_tests then false
    else begin
      incr tests;
      if Eric_telemetry.Control.is_enabled () then
        Eric_telemetry.Registry.inc "verif.shrink_tests_total";
      failing t
    end
  in
  if not (check trace) then (trace, !tests)
  else begin
    let cur = ref trace in
    let progress = ref true in
    while !progress && !tests < max_tests do
      progress := false;
      (* pass 1: chunk deletion, halving granularity *)
      let chunk = ref (max 1 (Array.length !cur / 2)) in
      while !chunk >= 1 do
        let i = ref 0 in
        while !i < Array.length !cur do
          let len = min !chunk (Array.length !cur - !i) in
          let candidate = remove !cur !i len in
          if len > 0 && Array.length candidate < Array.length !cur && check candidate then begin
            cur := candidate;
            progress := true
            (* retry the same index: the next chunk slid into place *)
          end
          else i := !i + !chunk
        done;
        chunk := !chunk / 2
      done;
      (* pass 2: value lowering (smaller draws = smaller grammar alternatives) *)
      Array.iteri
        (fun i v ->
          if v > 0 then
            List.iter
              (fun candidate_v ->
                if candidate_v < !cur.(i) then begin
                  let candidate = Array.copy !cur in
                  candidate.(i) <- candidate_v;
                  if check candidate then begin
                    cur := candidate;
                    progress := true
                  end
                end)
              [ 0; v / 2; v - 1 ])
        (Array.copy !cur)
    done;
    (!cur, !tests)
  end
