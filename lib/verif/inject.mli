(** Fault-injection campaigns: flip bits, see who notices.

    DESIGN §5 makes failure injection a first-class obligation: the
    signature must detect tampering and soft errors in transit, and
    wrong-key decryptions must never validate.  This engine turns those
    claims into measured coverage.  Each injection flips one bit in a
    chosen region and classifies the result:

    - {b wire regions} ([Header], [Map], [Payload], [Data], [Signature]):
      the flip happens to the serialized package between source and
      device, i.e. in transit.  Everything here is covered by the
      signature (the signature itself travels encrypted), so single-bit
      detection must be 100%.
    - {b Dram}: the flip happens in simulated main memory {e after} the
      HDE validated the load — the paper's protection explicitly ends
      here.  Without a guard this region measures the residual exposure
      window (a CPU trap counts as detected); with
      {!config.guard} enabled the runtime integrity guard re-checks the
      resident image as the program runs, and a flip it catches is
      credited as [Detected "integrity-guard"].
    - {b Key}: the flip happens in the device's KMU-derived key (HDE/KMU
      state upset).  A wrong key must never produce a validating
      decryption.

    Classification: {e detected} (refused, guard-faulted, or trapped for
    [Dram]), {e masked} (accepted, behaviour identical to baseline) and
    {e silent} (accepted, behaviour differs) — a silent corruption in a
    signed region is a security bug and ships as a replayable escape. *)

type region = Header | Map | Payload | Data | Signature | Dram | Key

val region_name : region -> string
val region_of_string : string -> (region, string) result

val wire_regions : region list
(** The signed, in-transit regions (no [Dram]/[Key]). *)

val all_regions : region list

type outcome = Detected of string | Masked | Silent

type row = {
  region : region;
  injections : int;
  detected : int;
  masked : int;
  silent : int;
}

type escape = {
  e_region : region;
  e_bit : int;  (** bit offset within the region *)
  e_seed : int64;  (** the campaign seed the escape was drawn under *)
  e_iter : int;
      (** 1-based iteration that produced it: re-running the same
          campaign ([e_seed], same region list) with [count = e_iter]
          makes this escape the final shot — the PRNG draws are strictly
          sequential, so the replay is exact *)
}

type report = {
  rows : row list;  (** one per requested region, in request order *)
  escapes : escape list;
  baseline : Oracle.behaviour;  (** the uninjected program's behaviour *)
  seed : int64;
  count : int;
  dram_overhead : float;
      (** mean guard_cycles / exec_cycles over the campaign's [Dram]
          runs — the cycle price of the configured guard; 0 when no
          [Dram] injections ran or the guard is off *)
}

val coverage : row -> float
(** detected / (detected + silent): the fraction of consequential faults
    that were caught.  1.0 when every fault was detected or masked. *)

val detection_coverage : report -> float
(** Coverage over all rows pooled. *)

val silent_total : report -> int

type config = {
  fuel : int;
  mode : Eric.Config.mode;  (** default partial/select-all, so a map exists *)
  device_id : int64;
  seed : int64;
  count : int;
  regions : region list;
  guard : Eric_hw.Guard.config;
      (** runtime integrity guard active during [Dram] runs (default
          {!Eric_hw.Guard.disabled}); ignored by other regions, whose
          flips never reach resident memory *)
}

val default_config : config

val campaign : ?config:config -> string -> (report, string) result
(** [campaign source] compiles, packages and baselines [source] once,
    then runs [config.count] single-bit injections spread uniformly over
    [config.regions].  [Error] on a source that does not compile, a
    clean package that does not validate, or a requested region that is
    empty for this package (e.g. [Map] under full encryption).
    Each injection lands on the [verif.injections_total{region,outcome}]
    telemetry family. *)

val replay_command : regions:region list -> escape -> string
(** The [eric verif inject] invocation that reproduces an escape as its
    final injection ([regions] must be the original campaign's region
    list — the draw sequence depends on it). *)

type sweep_point = {
  sp_mechanism : Eric_hw.Guard.mechanism;
  sp_injections : int;
  sp_detected : int;
  sp_silent : int;
  sp_coverage : float;
  sp_overhead : float;  (** mean guard_cycles / exec_cycles *)
}

val dram_sweep :
  ?config:config ->
  mechanisms:Eric_hw.Guard.mechanism list ->
  string ->
  (sweep_point list, string) result
(** Run one [Dram]-only campaign per guard mechanism (same seed and
    count, so the same flips land each time) and report the residual-
    exposure-vs-cycle-overhead curve.  [config.regions] is ignored. *)

val report_to_json : config -> report -> Eric_telemetry.Json.t
(** Stable JSON rendering (per-region rows, pooled coverage, replayable
    escapes) following the serve/fleet report convention. *)

val sweep_to_json : sweep_point list -> Eric_telemetry.Json.t

val pp_report : Format.formatter -> report -> unit
