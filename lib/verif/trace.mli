(** Decision traces: the choice source behind the program generator.

    Every random decision the generator makes goes through {!draw}, so a
    generated program is a pure function of the sequence of drawn values.
    A [recording] trace draws fresh choices from a seeded PRNG and
    remembers them; a [replaying] trace feeds back a previously recorded
    (or mutated, or shrunk) sequence, substituting 0 once it runs dry.
    Because [draw] clamps every replayed value into range, {e any} integer
    array replays to {e some} valid program — which is what makes
    delta-debugging over traces sound: the shrinker can chop and zero
    freely and never has to know the generator's grammar. *)

type t

val recording : seed:int64 -> t
(** Fresh choices from a PRNG; the whole stream is a function of [seed]. *)

val replaying : int array -> t
(** Replay [choices]; draws beyond the end return 0 (the generator's
    "smallest" alternative by construction). *)

val draw : t -> bound:int -> int
(** Next decision, uniform (or replayed) in [\[0, bound)].  [bound >= 1]. *)

val recorded : t -> int array
(** The effective choices made so far, in draw order.  For a replaying
    trace this is the {e canonical} form of the input: clamped into range
    and truncated/extended to what the generator actually consumed. *)

val draws : t -> int
(** Number of [draw] calls so far. *)
