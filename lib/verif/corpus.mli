(** Persisted reproducer corpus.

    Every fuzz divergence, compile error or injection escape is written to
    a corpus directory as a small self-contained text file carrying the
    failure class, the seed, the (minimised) decision trace and the MiniC
    source it replays to.  CI uploads the directory on failure; a later
    session reproduces with [eric verif shrink FILE] or by replaying the
    trace.  Entries double as mutation seeds for the fuzz loop. *)

type kind =
  | Divergence
  | Compile_error
  | Injection_escape of { region : string; bit : int }

type entry = {
  kind : kind;
  seed : int64;  (** campaign seed that produced the failure *)
  trace : int array;  (** replays to [source] via {!Gen.of_trace} *)
  source : string;
  note : string;  (** one-line human summary (oracle verdicts, ...) *)
}

val entry_id : entry -> string
(** Stable content hash prefix; used as the file-name stem. *)

val file_name : entry -> string

val to_string : entry -> string
(** The on-disk reproducer format ([ERIC-VERIF-REPRO 1]). *)

val parse : string -> (entry, string) result

val save : dir:string -> entry -> (string, string) result
(** Write (creating [dir] if needed); returns the path. *)

val load : string -> (entry, string) result

val list : dir:string -> (string * (entry, string) result) list
(** Every [.repro] file in [dir], sorted by name.  Unreadable entries are
    reported, not skipped — a corrupt corpus should be visible. *)

val pp_entry : Format.formatter -> entry -> unit
