(** The differential oracle: one program, three independent execution
    paths, any observable difference is a toolchain bug.

    - {b interp}: lower to IR and run {!Eric_cc.Ir_interp} — shares
      nothing with the backend below the IR;
    - {b plain}: full compilation (codegen, regalloc, RVC, layout) and a
      plain load onto the simulated SoC;
    - {b encrypted}: the whole ERIC path — sign, encrypt, serialize,
      parse, HDE decrypt, signature validation — then the same SoC.

    Behaviour is the pair (observable output, exit code), or the fact of
    trapping; trap {e messages} are layer-specific and deliberately not
    compared.  A validation refusal of a clean package is its own
    behaviour class ([Refused]) and always disagrees with an execution. *)

type behaviour =
  | Exit of { code : int; output : string }
  | Trap of string  (** CPU fault / interpreter runtime error *)
  | Exhausted
      (** the harness's fuel limit, not a program behaviour: the
          interpreter and the SoC count different units (IR steps vs
          retired instructions), so exhaustion in one path and not
          another is incomparable rather than a divergence.  The fuzz
          loop skips exhausted reports; {!agree} still reports them as
          disagreement so nothing silently equates a completed run with
          a truncated one. *)
  | Refused of string  (** the HDE refused a legitimate package *)

type report = { interp : behaviour; plain : behaviour; encrypted : behaviour }

val agree : report -> bool
val behaviour_equal : behaviour -> behaviour -> bool

val exhausted : report -> bool
(** Some path hit its fuel limit — the report is not evidence of a bug. *)

val pp_behaviour : Format.formatter -> behaviour -> unit
val pp_report : Format.formatter -> report -> unit

val of_result : Eric_sim.Soc.result -> behaviour
(** Classify a SoC run (used by the fault-injection engine too). *)

val default_fuel : int
(** Generous for anything {!Gen} emits (bounded loops), small enough that
    a wrongly-looping program is flagged quickly. *)

val soc_fuel_factor : int
(** The SoC paths run with [fuel * soc_fuel_factor] instructions so that
    a program whose interpretation fits in [fuel] IR steps cannot
    exhaust the machine paths merely because one IR step expands to
    several instructions. *)

val run :
  ?fuel:int ->
  ?mode:Eric.Config.mode ->
  ?device_id:int64 ->
  ?options:Eric_cc.Driver.options ->
  string ->
  (report, string) result
(** [run source] compiles once and drives all three paths ([fuel] is in
    IR steps for the interpreter; see {!soc_fuel_factor}).  [Error] means
    the program did not compile — for generated programs that is a
    generator or compiler-frontend bug and is treated as a finding by the
    fuzz loop, not silently skipped.

    [options] applies to the machine paths; the interpreter path runs
    with [options.transform] stripped, so an IR transform (e.g. an
    {!Eric_obf.Obf} pass set) that alters observable behaviour registers
    as an interp/plain divergence rather than being compared against
    itself. *)
