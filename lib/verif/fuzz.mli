(** The differential fuzz campaign: generate, run all three paths,
    compare, shrink what disagrees.

    Each iteration either generates a fresh program from a derived seed
    or mutates the decision trace of a recent well-behaved program
    ({!Mutate}), runs it through the {!Oracle}, and treats any
    disagreement — or any failure to compile, since the generator only
    emits well-formed MiniC — as a finding.  Findings are minimised with
    {!Shrink} and persisted as reproducers via {!Corpus} when a corpus
    directory is configured.

    Determinism: the whole campaign is a pure function of [config]
    (modulo wall-clock in [stats]), so CI failures replay locally from
    the seed alone. *)

type config = {
  count : int;  (** programs to run *)
  seed : int64;
  size : int;  (** generator size budget, see {!Gen.generate} *)
  mode : Eric.Config.mode;
  device_id : int64;
  fuel : int;
  corpus_dir : string option;  (** persist minimised reproducers here *)
  mutate_pct : int;  (** percentage of iterations that mutate the pool *)
  shrink_budget : int;  (** max oracle runs per finding during shrinking *)
  max_failures : int;  (** stop the campaign after this many findings *)
  options : Eric_cc.Driver.options;
      (** driver options for the machine paths of every oracle run —
          install an {!Eric_obf.Obf} transform here to fuzz obfuscated
          builds against the untransformed interpreter *)
}

val default_config : config

type failure = {
  f_kind : Corpus.kind;
  f_seed : int64;
  f_trace : int array;  (** minimised decision trace *)
  f_source : string;  (** minimised program *)
  f_note : string;  (** one-line description of the disagreement *)
  f_shrink_tests : int;
  f_path : string option;  (** where the reproducer was saved, if anywhere *)
}

type stats = {
  programs : int;
  divergences : int;
  compile_errors : int;
  exhausted : int;
      (** programs dropped because some path hit the fuel limit — an
          incomparable report, neither a pass nor a finding *)
  mutated : int;  (** how many programs came from the mutation engine *)
  shrink_tests : int;
  wall_ns : int64;
}

type outcome = { stats : stats; failures : failure list }

val run : ?config:config -> ?on_progress:(int -> unit) -> unit -> outcome
(** [run ()] executes the campaign.  [on_progress] is called with the
    running program count every 500 programs.  Counters:
    [verif.programs_total], [verif.divergences_total],
    [verif.compile_errors_total] (and [verif.shrink_tests_total] via
    {!Shrink}). *)

val replay : ?fuel:int -> ?mode:Eric.Config.mode -> ?device_id:int64 ->
  ?options:Eric_cc.Driver.options -> Corpus.entry -> (Oracle.report, string) result
(** Re-run a persisted reproducer's trace through the oracle (the entry's
    [source] is informative; the trace is authoritative). *)

val pp_stats : Format.formatter -> stats -> unit
val pp_failure : Format.formatter -> failure -> unit
