type kind =
  | Divergence
  | Compile_error
  | Injection_escape of { region : string; bit : int }

type entry = {
  kind : kind;
  seed : int64;
  trace : int array;
  source : string;
  note : string;
}

let magic = "ERIC-VERIF-REPRO 1"

let kind_label = function
  | Divergence -> "divergence"
  | Compile_error -> "compile-error"
  | Injection_escape _ -> "injection-escape"

let trace_string trace = String.concat "," (List.map string_of_int (Array.to_list trace))

let entry_id e =
  let digest =
    Eric_crypto.Sha256.digest
      (Bytes.of_string (kind_label e.kind ^ "\n" ^ trace_string e.trace ^ "\n" ^ e.source))
  in
  String.sub (Eric_util.Bytesx.to_hex digest) 0 12

let file_name e = Printf.sprintf "%s-%s.repro" (kind_label e.kind) (entry_id e)

let to_string e =
  let b = Buffer.create 256 in
  Buffer.add_string b (magic ^ "\n");
  Buffer.add_string b (Printf.sprintf "kind: %s\n" (kind_label e.kind));
  Buffer.add_string b (Printf.sprintf "seed: %Ld\n" e.seed);
  (match e.kind with
  | Injection_escape { region; bit } ->
    Buffer.add_string b (Printf.sprintf "region: %s\n" region);
    Buffer.add_string b (Printf.sprintf "bit: %d\n" bit)
  | Divergence | Compile_error -> ());
  Buffer.add_string b (Printf.sprintf "note: %s\n" (String.map (function '\n' -> ' ' | c -> c) e.note));
  Buffer.add_string b (Printf.sprintf "trace: %s\n" (trace_string e.trace));
  Buffer.add_string b "--- source ---\n";
  Buffer.add_string b e.source;
  Buffer.contents b

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()

let save ~dir e =
  try
    ensure_dir dir;
    let path = Filename.concat dir (file_name e) in
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string e));
    Ok path
  with Sys_error msg -> Error msg

let parse text =
  let ( let* ) = Result.bind in
  match String.index_opt text '\n' with
  | None -> Error "empty reproducer file"
  | Some _ -> (
    let marker = "--- source ---\n" in
    let rec find i =
      if i + String.length marker > String.length text then None
      else if String.sub text i (String.length marker) = marker then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> Error "no '--- source ---' section"
    | Some cut ->
      let header = String.sub text 0 cut in
      let source = String.sub text (cut + String.length marker) (String.length text - cut - String.length marker) in
      let lines = String.split_on_char '\n' header in
      let* () =
        match lines with
        | m :: _ when m = magic -> Ok ()
        | _ -> Error "bad reproducer magic (expected ERIC-VERIF-REPRO 1)"
      in
      let field name =
        List.find_map
          (fun line ->
            let prefix = name ^ ": " in
            if String.length line >= String.length prefix
               && String.sub line 0 (String.length prefix) = prefix
            then Some (String.sub line (String.length prefix) (String.length line - String.length prefix))
            else None)
          lines
      in
      let* kind_s = Option.to_result ~none:"missing kind" (field "kind") in
      let* seed =
        match Option.bind (field "seed") Int64.of_string_opt with
        | Some s -> Ok s
        | None -> Error "missing or bad seed"
      in
      let* trace =
        match field "trace" with
        | None -> Error "missing trace"
        | Some "" -> Ok [||]
        | Some s -> (
          let parts = String.split_on_char ',' s in
          try Ok (Array.of_list (List.map int_of_string parts))
          with Failure _ -> Error "bad trace (expected comma-separated integers)")
      in
      let note = Option.value ~default:"" (field "note") in
      let* kind =
        match kind_s with
        | "divergence" -> Ok Divergence
        | "compile-error" -> Ok Compile_error
        | "injection-escape" -> (
          match (field "region", Option.bind (field "bit") int_of_string_opt) with
          | Some region, Some bit -> Ok (Injection_escape { region; bit })
          | _ -> Error "injection-escape entry missing region/bit")
        | other -> Error (Printf.sprintf "unknown reproducer kind %S" other)
      in
      Ok { kind; seed; trace; source; note })

let load path =
  try
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    parse text
  with Sys_error msg -> Error msg

let list ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load path))

let pp_entry fmt e =
  Format.fprintf fmt "%s seed=%Ld trace=%d draws source=%d B%s" (kind_label e.kind) e.seed
    (Array.length e.trace)
    (String.length e.source)
    (if e.note = "" then "" else " — " ^ e.note)
