(** Structured MiniC program generator.

    Emits closed, well-typed, always-terminating MiniC programs with
    deterministic observable behaviour, so the differential oracle can
    compare the IR interpreter, the plain compiled image and the full
    encrypted path without false positives:

    - every loop is bounded by a compile-time constant (counters are
      read-only inside their own bodies; [continue] can never skip a
      decrement);
    - division and remainder are generated with divisors forced into
      [1, 16], so neither divide-by-zero nor [INT64_MIN / -1] can occur;
    - shifts use constant amounts in [0, 63];
    - array indices are masked to the (power-of-two) array length;
    - every variable is initialised before it can be read — reading stale
      stack memory would make the compiled and interpreted paths diverge
      for reasons that are not bugs;
    - the call graph is acyclic (functions only call earlier functions);
    - [main]'s return value is masked to [0, 255] so the process exit code
      is the same on every path;
    - output happens only through [print_str]/[println_int].

    The generator is {e total} over decision traces (see {!Trace}): any
    integer array produces a program with the properties above, which is
    what the mutation engine and the shrinker rely on. *)

type t = {
  source : string;  (** MiniC source text *)
  trace : int array;  (** canonical decision trace that regenerates it *)
}

val generate : ?size:int -> seed:int64 -> unit -> t
(** A fresh program; [size] (default 26) scales the statement budget. *)

val of_trace : ?size:int -> int array -> t
(** Replay a recorded, mutated or shrunk decision trace. *)
