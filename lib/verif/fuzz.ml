type config = {
  count : int;
  seed : int64;
  size : int;
  mode : Eric.Config.mode;
  device_id : int64;
  fuel : int;
  corpus_dir : string option;
  mutate_pct : int;
  shrink_budget : int;
  max_failures : int;
  options : Eric_cc.Driver.options;
}

let default_config =
  {
    count = 1000;
    seed = 0xF22DL;
    size = 26;
    mode = Eric.Config.Full;
    device_id = 0xE51CL;
    fuel = Oracle.default_fuel;
    corpus_dir = None;
    mutate_pct = 30;
    shrink_budget = 400;
    max_failures = 10;
    options = Eric_cc.Driver.default_options;
  }

type failure = {
  f_kind : Corpus.kind;
  f_seed : int64;
  f_trace : int array;
  f_source : string;
  f_note : string;
  f_shrink_tests : int;
  f_path : string option;
}

type stats = {
  programs : int;
  divergences : int;
  compile_errors : int;
  exhausted : int;
  mutated : int;
  shrink_tests : int;
  wall_ns : int64;
}

type outcome = { stats : stats; failures : failure list }

(* The pool of recent well-behaved traces the mutation engine feeds on. *)
let pool_cap = 64

let classify config report =
  if Oracle.agree report then None
  else
    Some
      (Format.asprintf "%a (mode %a)" Oracle.pp_report report Eric.Config.pp_mode config.mode
      |> String.map (function '\n' -> ' ' | c -> c))

let run ?(config = default_config) ?(on_progress = fun _ -> ()) () =
  let rng = Eric_util.Prng.create ~seed:config.seed in
  let pool = Array.make pool_cap [||] in
  let pool_len = ref 0 and pool_next = ref 0 in
  let add_pool trace =
    pool.(!pool_next) <- trace;
    pool_next := (!pool_next + 1) mod pool_cap;
    if !pool_len < pool_cap then incr pool_len
  in
  let oracle source =
    Oracle.run ~fuel:config.fuel ~mode:config.mode ~device_id:config.device_id
      ~options:config.options source
  in
  let divergences = ref 0 and compile_errors = ref 0 and mutated = ref 0 in
  let exhausted = ref 0 in
  let shrink_tests = ref 0 in
  let programs = ref 0 in
  let failures = ref [] in
  let shrink_and_record ~kind ~seed ~note ~failing trace =
    let min_trace, tests = Shrink.minimize ~max_tests:config.shrink_budget ~failing trace in
    shrink_tests := !shrink_tests + tests;
    let min_prog = Gen.of_trace ~size:config.size min_trace in
    let entry =
      { Corpus.kind; seed; trace = min_prog.Gen.trace; source = min_prog.Gen.source; note }
    in
    let path =
      match config.corpus_dir with
      | None -> None
      | Some dir -> ( match Corpus.save ~dir entry with Ok p -> Some p | Error _ -> None)
    in
    failures :=
      {
        f_kind = kind;
        f_seed = seed;
        f_trace = min_prog.Gen.trace;
        f_source = min_prog.Gen.source;
        f_note = note;
        f_shrink_tests = tests;
        f_path = path;
      }
      :: !failures
  in
  let started = Eric_telemetry.Clock.now_ns () in
  (try
     for _ = 1 to config.count do
       let prog_seed = Eric_util.Prng.bits64 rng in
       let from_pool =
         !pool_len > 0 && Eric_util.Prng.int rng ~bound:100 < config.mutate_pct
       in
       let prog =
         if from_pool then begin
           incr mutated;
           let parent = pool.(Eric_util.Prng.int rng ~bound:!pool_len) in
           Gen.of_trace ~size:config.size (Mutate.mutate ~rng parent)
         end
         else Gen.generate ~size:config.size ~seed:prog_seed ()
       in
       incr programs;
       Eric_telemetry.Registry.inc "verif.programs_total";
       (match oracle prog.Gen.source with
       | Ok report when Oracle.agree report -> add_pool prog.Gen.trace
       | Ok report when Oracle.exhausted report ->
         (* a fuel limit is a harness artifact, not a behaviour: the
            report is incomparable, and a runaway program is a bad
            mutation seed, so it is counted and dropped *)
         incr exhausted;
         Eric_telemetry.Registry.inc "verif.exhausted_total"
       | Ok report ->
         incr divergences;
         Eric_telemetry.Registry.inc "verif.divergences_total";
         let note = Option.value ~default:"divergence" (classify config report) in
         let failing trace =
           match oracle (Gen.of_trace ~size:config.size trace).Gen.source with
           | Ok r -> (not (Oracle.agree r)) && not (Oracle.exhausted r)
           | Error _ -> false
         in
         shrink_and_record ~kind:Corpus.Divergence ~seed:prog_seed ~note ~failing
           prog.Gen.trace
       | Error msg ->
         (* The generator only emits well-formed MiniC: a compile failure
            is a frontend (or generator) bug, never noise. *)
         incr compile_errors;
         Eric_telemetry.Registry.inc "verif.compile_errors_total";
         let failing trace =
           match oracle (Gen.of_trace ~size:config.size trace).Gen.source with
           | Error _ -> true
           | Ok _ -> false
         in
         shrink_and_record ~kind:Corpus.Compile_error ~seed:prog_seed
           ~note:("compile error: " ^ msg) ~failing prog.Gen.trace);
       if !programs mod 500 = 0 then on_progress !programs;
       if List.length !failures >= config.max_failures then raise Exit
     done
   with Exit -> ());
  let wall_ns = Int64.sub (Eric_telemetry.Clock.now_ns ()) started in
  {
    stats =
      {
        programs = !programs;
        divergences = !divergences;
        compile_errors = !compile_errors;
        exhausted = !exhausted;
        mutated = !mutated;
        shrink_tests = !shrink_tests;
        wall_ns;
      };
    failures = List.rev !failures;
  }

let replay ?(fuel = Oracle.default_fuel) ?(mode = Eric.Config.Full) ?(device_id = 0xE51CL)
    ?(options = Eric_cc.Driver.default_options) (entry : Corpus.entry) =
  Oracle.run ~fuel ~mode ~device_id ~options (Gen.of_trace entry.Corpus.trace).Gen.source

let pp_stats fmt s =
  let secs = Int64.to_float s.wall_ns /. 1e9 in
  let rate = if secs > 0. then float_of_int s.programs /. secs else 0. in
  Format.fprintf fmt
    "@[<v>programs       : %d (%d mutated, %d dropped for fuel)@,divergences    : %d@,\
     compile errors : %d@,shrink tests   : %d@,wall time      : %.2f s (%.0f programs/s)@]"
    s.programs s.mutated s.exhausted s.divergences s.compile_errors s.shrink_tests secs rate

let pp_failure fmt f =
  Format.fprintf fmt "@[<v>[%s] seed=%Ld trace=%d draws%s@,note: %s@,%s@]"
    (match f.f_kind with
    | Corpus.Divergence -> "divergence"
    | Corpus.Compile_error -> "compile-error"
    | Corpus.Injection_escape _ -> "injection-escape")
    f.f_seed (Array.length f.f_trace)
    (match f.f_path with None -> "" | Some p -> " saved=" ^ p)
    f.f_note f.f_source
