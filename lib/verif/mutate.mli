(** Mutation engine over decision traces.

    Because the generator is total over traces ({!Gen.of_trace} accepts
    any integer array), mutation works on the trace, not on source text:
    chop, splice, perturb and extend the decision sequence and replay it.
    Every mutant is a well-formed, terminating program by construction —
    there is no "parse the mutant and hope" step. *)

val mutate : rng:Eric_util.Prng.t -> int array -> int array
(** One mutant: 1-3 random edits (point perturbation, chunk deletion,
    chunk duplication, chunk swap, tail extension) of the input trace. *)

val crossover : rng:Eric_util.Prng.t -> int array -> int array -> int array
(** Head of one trace spliced onto the tail of another. *)
