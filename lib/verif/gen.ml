type t = { source : string; trace : int array }

(* What a point in the program may refer to.  [readable] includes loop
   counters and parameters; [writable] only scalars whose mutation cannot
   break a loop bound.  Entering a block clones the scope so inner
   declarations stay block-scoped. *)
type scope = {
  readable : string list;
  writable : string list;
  arrays : (string * int) list;  (* name, power-of-two length *)
}

type ctx = {
  tr : Trace.t;
  buf : Buffer.t;
  mutable fresh : int;
  mutable funcs : (string * int) list;  (* callable earlier functions *)
  size : int;
}

let draw ctx ~bound = Trace.draw ctx.tr ~bound

let name ctx prefix =
  let n = ctx.fresh in
  ctx.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let emit ctx ~indent fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (2 * indent) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let literals =
  [| "0"; "1"; "2"; "3"; "5"; "8"; "15"; "63"; "255"; "4096"; "123456789"; "(-1)"; "(-7)";
     "1073741824"; "sizeof(int)" |]

let strings = [| "."; "x"; "ok "; "v="; "# " |]

let literal ctx =
  let i = draw ctx ~bound:(Array.length literals + 1) in
  if i < Array.length literals then literals.(i)
  else
    let v = draw ctx ~bound:1024 - 512 in
    if v < 0 then Printf.sprintf "(%d)" v else string_of_int v

(* Global initialisers are parsed as bare (optionally negated) integers,
   not expressions — keep a separate plain-int pool for them. *)
let global_literal ctx =
  let pool = [| "0"; "1"; "7"; "-1"; "255"; "4096"; "-123456" |] in
  let i = draw ctx ~bound:(Array.length pool + 1) in
  if i < Array.length pool then pool.(i) else string_of_int (draw ctx ~bound:1024 - 512)

let pick ctx = function
  | [] -> None
  | l -> Some (List.nth l (draw ctx ~bound:(List.length l)))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let arith_ops = [| "+"; "-"; "*"; "&"; "|"; "^" |]
let cmp_ops = [| "<"; "<="; ">"; ">="; "=="; "!="; "&&"; "||" |]
let un_ops = [| "-"; "~"; "!" |]

let rec expr ctx scope ~depth =
  let var () = match pick ctx scope.readable with Some v -> v | None -> literal ctx in
  if depth <= 0 then if draw ctx ~bound:2 = 0 then literal ctx else var ()
  else
    match draw ctx ~bound:13 with
    | 0 | 1 -> literal ctx
    | 2 | 3 -> var ()
    | 4 -> (
      match pick ctx scope.arrays with
      | None -> var ()
      | Some (a, n) -> Printf.sprintf "%s[(%s) & %d]" a (expr ctx scope ~depth:(depth - 1)) (n - 1))
    | 5 ->
      let op = un_ops.(draw ctx ~bound:(Array.length un_ops)) in
      Printf.sprintf "(%s(%s))" op (expr ctx scope ~depth:(depth - 1))
    | 6 | 7 ->
      let op = arith_ops.(draw ctx ~bound:(Array.length arith_ops)) in
      Printf.sprintf "((%s) %s (%s))"
        (expr ctx scope ~depth:(depth - 1))
        op
        (expr ctx scope ~depth:(depth - 1))
    | 8 ->
      let op = cmp_ops.(draw ctx ~bound:(Array.length cmp_ops)) in
      Printf.sprintf "((%s) %s (%s))"
        (expr ctx scope ~depth:(depth - 1))
        op
        (expr ctx scope ~depth:(depth - 1))
    | 9 ->
      (* checked division: divisor forced into [1, 16] so neither /0 nor
         INT64_MIN / -1 can happen on any path *)
      let op = if draw ctx ~bound:2 = 0 then "/" else "%" in
      Printf.sprintf "((%s) %s (((%s) & 15) + 1))"
        (expr ctx scope ~depth:(depth - 1))
        op
        (expr ctx scope ~depth:(depth - 1))
    | 10 ->
      let op = if draw ctx ~bound:2 = 0 then "<<" else ">>" in
      Printf.sprintf "((%s) %s %d)" (expr ctx scope ~depth:(depth - 1)) op (draw ctx ~bound:64)
    | 11 ->
      Printf.sprintf "((%s) ? (%s) : (%s))"
        (expr ctx scope ~depth:(depth - 1))
        (expr ctx scope ~depth:(depth - 1))
        (expr ctx scope ~depth:(depth - 1))
    | _ -> (
      match pick ctx ctx.funcs with
      | None -> (
        (* pointer round-trip on a variable: types as int, always safe *)
        match pick ctx scope.readable with
        | Some v -> Printf.sprintf "(*(&%s))" v
        | None -> literal ctx)
      | Some (f, arity) ->
        let args = List.init arity (fun _ -> expr ctx scope ~depth:(depth - 1)) in
        Printf.sprintf "%s(%s)" f (String.concat ", " args))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let compound_ops = [| "+="; "-="; "*="; "&="; "|="; "^=" |]

(* [ret_mask]: main's returns are masked to [0,255] so the exit code is
   identical on every execution path. *)
let ret_expr ~ret_mask e = if ret_mask then Printf.sprintf "((%s) & 255)" e else e

let rec stmt ctx scope ~indent ~depth ~in_loop ~ret_mask =
  match draw ctx ~bound:13 with
  | 0 ->
    emit ctx ~indent "println_int((%s));" (expr ctx scope ~depth:2);
    stmt_ret scope
  | 1 ->
    emit ctx ~indent "print_str(\"%s\");" strings.(draw ctx ~bound:(Array.length strings));
    stmt_ret scope
  | 2 ->
    let v = name ctx "v" in
    emit ctx ~indent "int %s = (%s);" v (expr ctx scope ~depth:2);
    stmt_ret { scope with readable = v :: scope.readable; writable = v :: scope.writable }
  | 3 ->
    (* array declaration + deterministic fill, so no element is ever read
       uninitialised *)
    let a = name ctx "a" in
    let n = [| 4; 8; 16 |].(draw ctx ~bound:3) in
    let i = name ctx "v" in
    emit ctx ~indent "int %s[%d];" a n;
    emit ctx ~indent "for (int %s = 0; %s < %d; %s++) { %s[%s] = (%s); }" i i n i a i
      (expr ctx { scope with readable = i :: scope.readable } ~depth:1);
    stmt_ret { scope with arrays = (a, n) :: scope.arrays }
  | 4 -> (
    match pick ctx scope.writable with
    | None -> stmt_fallback ctx scope ~indent
    | Some v ->
      emit ctx ~indent "%s = (%s);" v (expr ctx scope ~depth:2);
      stmt_ret scope)
  | 5 -> (
    match pick ctx scope.arrays with
    | None -> stmt_fallback ctx scope ~indent
    | Some (a, n) ->
      emit ctx ~indent "%s[(%s) & %d] = (%s);" a (expr ctx scope ~depth:1) (n - 1)
        (expr ctx scope ~depth:2);
      stmt_ret scope)
  | 6 -> (
    match pick ctx scope.writable with
    | None -> stmt_fallback ctx scope ~indent
    | Some v ->
      (match draw ctx ~bound:3 with
      | 0 -> emit ctx ~indent "%s%s;" v (if draw ctx ~bound:2 = 0 then "++" else "--")
      | _ ->
        emit ctx ~indent "%s %s (%s);" v
          compound_ops.(draw ctx ~bound:(Array.length compound_ops))
          (expr ctx scope ~depth:2));
      stmt_ret scope)
  | 7 when depth > 0 ->
    emit ctx ~indent "if ((%s)) {" (expr ctx scope ~depth:2);
    block ctx scope ~indent:(indent + 1) ~depth:(depth - 1) ~in_loop ~ret_mask;
    if draw ctx ~bound:2 = 0 then begin
      emit ctx ~indent "} else {";
      block ctx scope ~indent:(indent + 1) ~depth:(depth - 1) ~in_loop ~ret_mask
    end;
    emit ctx ~indent "}";
    stmt_ret scope
  | 8 when depth > 0 ->
    (* bounded for: the counter is readable but never writable inside *)
    let i = name ctx "v" in
    let bound = draw ctx ~bound:9 in
    emit ctx ~indent "for (int %s = 0; %s < %d; %s++) {" i i bound i;
    block ctx
      { scope with readable = i :: scope.readable }
      ~indent:(indent + 1) ~depth:(depth - 1) ~in_loop:true ~ret_mask;
    emit ctx ~indent "}";
    stmt_ret scope
  | 9 when depth > 0 ->
    (* bounded while/do-while: decrement first, so [continue] cannot skip
       it and the loop always terminates *)
    let w = name ctx "v" in
    let bound = 1 + draw ctx ~bound:8 in
    let inner = { scope with readable = w :: scope.readable } in
    if draw ctx ~bound:2 = 0 then begin
      emit ctx ~indent "int %s = %d;" w bound;
      emit ctx ~indent "while (%s > 0) {" w;
      emit ctx ~indent:(indent + 1) "%s = %s - 1;" w w;
      block ctx inner ~indent:(indent + 1) ~depth:(depth - 1) ~in_loop:true ~ret_mask;
      emit ctx ~indent "}"
    end
    else begin
      emit ctx ~indent "int %s = %d;" w bound;
      emit ctx ~indent "do {";
      emit ctx ~indent:(indent + 1) "%s = %s - 1;" w w;
      block ctx inner ~indent:(indent + 1) ~depth:(depth - 1) ~in_loop:true ~ret_mask;
      emit ctx ~indent "} while (%s > 0);" w
    end;
    stmt_ret scope
  | 10 when in_loop ->
    emit ctx ~indent "if ((%s)) { %s; }" (expr ctx scope ~depth:1)
      (if draw ctx ~bound:2 = 0 then "break" else "continue");
    stmt_ret scope
  | 11 when depth > 0 ->
    (* guarded early return *)
    emit ctx ~indent "if ((%s)) { return %s; }" (expr ctx scope ~depth:1)
      (ret_expr ~ret_mask (Printf.sprintf "(%s)" (expr ctx scope ~depth:1)));
    stmt_ret scope
  | _ -> (
    match pick ctx ctx.funcs with
    | None -> stmt_fallback ctx scope ~indent
    | Some (f, arity) ->
      let args = List.init arity (fun _ -> expr ctx scope ~depth:1) in
      emit ctx ~indent "%s(%s);" f (String.concat ", " args);
      stmt_ret scope)

and stmt_ret scope = scope

and stmt_fallback ctx scope ~indent =
  emit ctx ~indent "println_int((%s));" (expr ctx scope ~depth:1);
  scope

and block ctx scope ~indent ~depth ~in_loop ~ret_mask =
  let n = 1 + draw ctx ~bound:3 in
  let scope = ref scope in
  for _ = 1 to n do
    scope := stmt ctx !scope ~indent ~depth ~in_loop ~ret_mask
  done

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let globals ctx =
  let n = draw ctx ~bound:3 in
  let scalars = ref [] and arrays = ref [] in
  for _ = 1 to n do
    if draw ctx ~bound:2 = 0 then begin
      let g = name ctx "g" in
      emit ctx ~indent:0 "int %s = %s;" g (global_literal ctx);
      scalars := g :: !scalars
    end
    else begin
      let g = name ctx "g" in
      let len = [| 4; 8 |].(draw ctx ~bound:2) in
      let init = List.init len (fun _ -> global_literal ctx) in
      emit ctx ~indent:0 "int %s[%d] = {%s};" g len (String.concat ", " init);
      arrays := (g, len) :: !arrays
    end
  done;
  (!scalars, !arrays)

let func ctx ~g_scalars ~g_arrays ~is_main =
  let fname, params =
    if is_main then ("main", [])
    else
      let arity = 1 + draw ctx ~bound:3 in
      (name ctx "f", List.init arity (fun _ -> name ctx "v"))
  in
  emit ctx ~indent:0 "";
  emit ctx ~indent:0 "int %s(%s) {" fname
    (String.concat ", " (List.map (fun p -> "int " ^ p) params));
  let scope =
    { readable = params @ g_scalars; writable = params @ g_scalars; arrays = g_arrays }
  in
  let budget = if is_main then 2 + draw ctx ~bound:(max 3 (ctx.size / 2)) else 1 + draw ctx ~bound:(max 2 (ctx.size / 4)) in
  let scope = ref scope in
  for _ = 1 to budget do
    scope := stmt ctx !scope ~indent:1 ~depth:2 ~in_loop:false ~ret_mask:is_main
  done;
  emit ctx ~indent:1 "return %s;"
    (ret_expr ~ret_mask:is_main (Printf.sprintf "(%s)" (expr ctx !scope ~depth:2)));
  emit ctx ~indent:0 "}";
  if not is_main then ctx.funcs <- ctx.funcs @ [ (fname, List.length params) ]

let from ~size tr =
  let ctx = { tr; buf = Buffer.create 1024; fresh = 0; funcs = []; size = max 4 size } in
  let g_scalars, g_arrays = globals ctx in
  let nfuncs = draw ctx ~bound:3 in
  for _ = 1 to nfuncs do
    func ctx ~g_scalars ~g_arrays ~is_main:false
  done;
  func ctx ~g_scalars ~g_arrays ~is_main:true;
  { source = Buffer.contents ctx.buf; trace = Trace.recorded tr }

let generate ?(size = 26) ~seed () = from ~size (Trace.recording ~seed)
let of_trace ?(size = 26) choices = from ~size (Trace.replaying choices)
