(** Environmental-sweep campaign: key failure rate per operating corner,
    with and without the fuzzy extractor.

    Enrolls a small population ({!Eric_puf.Enroll.enroll}), then boots
    every device [boots] times at every corner and counts, per corner:

    - {e plain failures} — the legacy 15-vote majority key differing from
      its nominal enrollment (what a fleet without helper data would
      suffer);
    - {e fuzzy failures} — typed {!Eric_puf.Fuzzy.reconstruct} refusals;
    - {e wrong keys} — reconstructions that verified yet produced a key
      other than the enrolled one.  The extractor's tag check makes this
      a 2^-256 event; observing even one fails the campaign outright,
      because a silent wrong key is the one failure mode the design must
      never have.

    The campaign passes when every corner's post-extractor failure rate
    is within [max_kfr] and no wrong key was seen.  [to_json] renders the
    per-corner table for [BENCH_results.json] and the CI sweep artifact.

    Telemetry: [verif.envsweep.boots_total{corner}],
    [.plain_failures_total{corner}], [.fuzzy_failures_total{corner}],
    [.wrong_keys_total{corner}]. *)

type corner_row = {
  corner : string;
  env : Eric_puf.Env.t;
  boots : int;  (** devices x boots-per-device *)
  plain_failures : int;
  fuzzy_failures : int;
  wrong_keys : int;
  attempts_total : int;
}

val plain_kfr : corner_row -> float
val fuzzy_kfr : corner_row -> float
val mean_attempts : corner_row -> float
(** Mean extractor attempts per {e successful} boot. *)

type report = {
  devices : int;
  boots_per_device : int;
  max_kfr : float;
  rows : corner_row list;
}

type config = {
  devices : int;
  boots : int;  (** per device per corner *)
  seed : int64;  (** base device id of the population *)
  corners : (string * Eric_puf.Env.t) list;
  enroll : Eric_puf.Enroll.config;
  fuzzy : Eric_puf.Fuzzy.config;
  max_kfr : float;
}

val default_config : config
(** 6 devices, 25 boots each, every {!Eric_puf.Env.corners} entry,
    default enrollment/extractor configs, 1e-3 budget. *)

val campaign : ?config:config -> unit -> (report, string) result
(** [Error] only on a setup failure (empty sweep, a die failing
    enrollment); measured failures land in the report. *)

val breaches : report -> corner_row list
(** Corners over the post-extractor budget or with wrong keys. *)

val passed : report -> bool

val to_json : report -> Eric_telemetry.Json.t
val pp_report : Format.formatter -> report -> unit
