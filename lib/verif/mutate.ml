let value rng = Eric_util.Prng.int rng ~bound:1024

let point rng t =
  if Array.length t = 0 then [| value rng |]
  else begin
    let t = Array.copy t in
    t.(Eric_util.Prng.int rng ~bound:(Array.length t)) <- value rng;
    t
  end

let chunk rng t =
  let n = Array.length t in
  let start = Eric_util.Prng.int rng ~bound:(max 1 n) in
  let len = 1 + Eric_util.Prng.int rng ~bound:(max 1 (n / 4 + 1)) in
  (start, min len (n - start))

let delete rng t =
  let n = Array.length t in
  if n <= 1 then t
  else
    let start, len = chunk rng t in
    if len <= 0 || len >= n then t
    else Array.append (Array.sub t 0 start) (Array.sub t (start + len) (n - start - len))

let duplicate rng t =
  let n = Array.length t in
  if n = 0 then t
  else
    let start, len = chunk rng t in
    if len <= 0 then t
    else
      Array.concat [ Array.sub t 0 (start + len); Array.sub t start len;
                     Array.sub t (start + len) (n - start - len) ]

let swap rng t =
  let n = Array.length t in
  if n < 2 then t
  else begin
    let t = Array.copy t in
    let i = Eric_util.Prng.int rng ~bound:n and j = Eric_util.Prng.int rng ~bound:n in
    let tmp = t.(i) in
    t.(i) <- t.(j);
    t.(j) <- tmp;
    t
  end

let extend rng t =
  let extra = Array.init (1 + Eric_util.Prng.int rng ~bound:8) (fun _ -> value rng) in
  Array.append t extra

let mutate ~rng t =
  let edits = 1 + Eric_util.Prng.int rng ~bound:3 in
  let t = ref t in
  for _ = 1 to edits do
    t :=
      (match Eric_util.Prng.int rng ~bound:5 with
      | 0 -> point rng !t
      | 1 -> delete rng !t
      | 2 -> duplicate rng !t
      | 3 -> swap rng !t
      | _ -> extend rng !t)
  done;
  !t

let crossover ~rng a b =
  let cut_a = Eric_util.Prng.int rng ~bound:(Array.length a + 1) in
  let cut_b = Eric_util.Prng.int rng ~bound:(Array.length b + 1) in
  Array.append (Array.sub a 0 cut_a) (Array.sub b cut_b (Array.length b - cut_b))
