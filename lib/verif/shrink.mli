(** Delta debugging over decision traces.

    Minimises a failing trace while a caller-supplied predicate keeps
    holding.  Two alternating passes run to fixpoint (or budget):
    chunk deletion at halving granularity (classic ddmin), then per-value
    lowering (0, v/2, v-1) — lower decision values select syntactically
    smaller alternatives in {!Gen}'s grammar, so value lowering shrinks
    the program even when no draw can be removed.  Soundness needs
    nothing from the predicate: the generator is total over traces, so
    every candidate is a valid program. *)

val minimize :
  ?max_tests:int -> failing:(int array -> bool) -> int array -> int array * int
(** [minimize ~failing trace] returns the smallest trace found still
    satisfying [failing], and the number of predicate evaluations spent
    (also counted on the [verif.shrink_tests_total] telemetry counter).
    If [trace] itself does not satisfy [failing] it is returned
    unchanged with 1 test. [max_tests] defaults to 400 — predicates that
    re-run the differential oracle are expensive. *)
