type src = Record of Eric_util.Prng.t | Replay of int array

type t = {
  src : src;
  mutable rev : int list;  (* effective choices, newest first *)
  mutable pos : int;
}

let recording ~seed = { src = Record (Eric_util.Prng.create ~seed); rev = []; pos = 0 }
let replaying choices = { src = Replay choices; rev = []; pos = 0 }

let draw t ~bound =
  if bound < 1 then invalid_arg "Trace.draw: bound must be positive";
  let v =
    match t.src with
    | Record rng -> Eric_util.Prng.int rng ~bound
    | Replay arr ->
      if t.pos < Array.length arr then
        let raw = arr.(t.pos) in
        (* clamp, don't reject: any array must replay to a valid program *)
        let raw = if raw < 0 then -(raw + 1) else raw in
        raw mod bound
      else 0
  in
  t.pos <- t.pos + 1;
  t.rev <- v :: t.rev;
  v

let recorded t = Array.of_list (List.rev t.rev)
let draws t = t.pos
