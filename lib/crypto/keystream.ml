type t = {
  key : bytes;
  mutable pos : int; (* absolute byte offset in the stream *)
  mutable block_index : int; (* index of the block cached in [block], or -1 *)
  block : Bytes.t;
  ctr : Bytes.t; (* 8-byte counter scratch *)
  ctx : Sha256.ctx; (* reused across blocks: one compression per block *)
}

let block_size = Sha256.digest_size

let create ~key =
  {
    key = Bytes.copy key;
    pos = 0;
    block_index = -1;
    block = Bytes.create block_size;
    ctr = Bytes.create 8;
    ctx = Sha256.init ();
  }

let at ~key ~offset =
  if offset < 0 then invalid_arg "Keystream.at: negative offset";
  let t = create ~key in
  t.pos <- offset;
  t

let offset t = t.pos

let fill_block t index =
  Sha256.reset t.ctx;
  Sha256.feed t.ctx t.key;
  Eric_util.Bytesx.set_u64 t.ctr 0 (Int64.of_int index);
  Sha256.feed t.ctx t.ctr;
  Bytes.blit (Sha256.finalize t.ctx) 0 t.block 0 block_size;
  t.block_index <- index

let take t n =
  if n < 0 then invalid_arg "Keystream.take: negative length";
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    let abs = t.pos + !filled in
    let index = abs / block_size and off = abs mod block_size in
    if index <> t.block_index then fill_block t index;
    let chunk = min (n - !filled) (block_size - off) in
    Bytes.blit t.block off out !filled chunk;
    filled := !filled + chunk
  done;
  t.pos <- t.pos + n;
  out

let xor ~key ?(offset = 0) data =
  let t = at ~key ~offset in
  let ks = take t (Bytes.length data) in
  let out = Bytes.create (Bytes.length data) in
  Eric_util.Bytesx.xor_into ~src:data ~key:ks ~dst:out;
  out
