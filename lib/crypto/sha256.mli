(** SHA-256 (FIPS 180-2), implemented from scratch.

    This is the paper's signature function: the ERIC compiler hashes the
    plaintext program to produce a 256-bit signature, and the Signature
    Generator unit in the HDE recomputes it on the decrypted instruction
    stream.  The incremental interface below mirrors the hardware unit, which
    absorbs instruction words as they leave the Decryption Unit. *)

val digest_size : int
(** 32 bytes. *)

val block_size : int
(** 64 bytes (one 512-bit block). *)

type ctx
(** Streaming hash state. *)

val init : unit -> ctx

val reset : ctx -> unit
(** Return a context (finalized or not) to the [init] state, reusing its
    buffers — the allocation-free path for hashing many short messages,
    e.g. keystream blocks in counter mode. *)

val feed : ctx -> bytes -> unit
val feed_sub : ctx -> bytes -> pos:int -> len:int -> unit
val finalize : ctx -> bytes
(** [finalize] pads, produces the 32-byte digest, and invalidates the context
    (further [feed] raises). *)

val digest : bytes -> bytes
(** One-shot hash. *)

val digest_string : string -> bytes

val hex : bytes -> string
(** Convenience: hash and render lowercase hex. *)
