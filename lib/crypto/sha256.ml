let digest_size = 32
let block_size = 64

(* Round constants: first 32 bits of the fractional parts of the cube roots
   of the first 64 primes (FIPS 180-2, section 4.2.2). *)
let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1; 0x923f82a4; 0xab1c5ed5;
     0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174;
     0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147; 0x06ca6351; 0x14292967;
     0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
     0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f; 0x682e6ff3;
     0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208; 0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  h : int array; (* eight 32-bit words, kept masked *)
  buf : Bytes.t; (* one block of pending input *)
  mutable buf_len : int;
  mutable total : int64; (* total message bytes absorbed *)
  mutable finished : bool;
  w : int array; (* message schedule scratch *)
}

let init () =
  {
    h = [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0L;
    finished = false;
    w = Array.make 64 0;
  }

let reset ctx =
  ctx.h.(0) <- 0x6a09e667;
  ctx.h.(1) <- 0xbb67ae85;
  ctx.h.(2) <- 0x3c6ef372;
  ctx.h.(3) <- 0xa54ff53a;
  ctx.h.(4) <- 0x510e527f;
  ctx.h.(5) <- 0x9b05688c;
  ctx.h.(6) <- 0x1f83d9ab;
  ctx.h.(7) <- 0x5be0cd19;
  ctx.buf_len <- 0;
  ctx.total <- 0L;
  ctx.finished <- false

let mask32 = 0xFFFFFFFF

(* The compression function is the process-wide hot spot: every keystream
   byte, signature and content digest funnels through it.  Rotations are
   written out inline (no helper call without flambda) and the masking is
   deferred across xors, which distribute over [land]. *)
let compress ctx block pos =
  let w = ctx.w in
  for t = 0 to 15 do
    let off = pos + (4 * t) in
    Array.unsafe_set w t
      ((Char.code (Bytes.unsafe_get block off) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (off + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (off + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (off + 3)))
  done;
  for t = 16 to 63 do
    let x15 = Array.unsafe_get w (t - 15) and x2 = Array.unsafe_get w (t - 2) in
    let s0 =
      (((x15 lsr 7) lor (x15 lsl 25)) lxor ((x15 lsr 18) lor (x15 lsl 14)) lxor (x15 lsr 3))
      land mask32
    in
    let s1 =
      (((x2 lsr 17) lor (x2 lsl 15)) lxor ((x2 lsr 19) lor (x2 lsl 13)) lxor (x2 lsr 10))
      land mask32
    in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1) land mask32)
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let ee = !e and aa = !a in
    let s1 =
      (((ee lsr 6) lor (ee lsl 26)) lxor ((ee lsr 11) lor (ee lsl 21))
      lxor ((ee lsr 25) lor (ee lsl 7)))
      land mask32
    in
    let ch = (ee land !f) lxor (lnot ee land !g) land mask32 in
    let t1 = (!hh + s1 + ch + Array.unsafe_get k t + Array.unsafe_get w t) land mask32 in
    let s0 =
      (((aa lsr 2) lor (aa lsl 30)) lxor ((aa lsr 13) lor (aa lsl 19))
      lxor ((aa lsr 22) lor (aa lsl 10)))
      land mask32
    in
    let maj = (aa land !b) lxor (aa land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask32 in
    hh := !g;
    g := !f;
    f := ee;
    e := (!d + t1) land mask32;
    d := !c;
    c := !b;
    b := aa;
    a := (t1 + t2) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

let feed_sub ctx data ~pos ~len =
  if ctx.finished then invalid_arg "Sha256.feed: context already finalized";
  if pos < 0 || len < 0 || pos + len > Bytes.length data then invalid_arg "Sha256.feed_sub: bad range";
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref pos and len = ref len in
  (* Top up a partially filled buffer first. *)
  if ctx.buf_len > 0 then begin
    let take = min !len (block_size - ctx.buf_len) in
    Bytes.blit data !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    len := !len - take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !len >= block_size do
    compress ctx data !pos;
    pos := !pos + block_size;
    len := !len - block_size
  done;
  if !len > 0 then begin
    Bytes.blit data !pos ctx.buf 0 !len;
    ctx.buf_len <- !len
  end

let feed ctx data = feed_sub ctx data ~pos:0 ~len:(Bytes.length data)

let finalize ctx =
  if ctx.finished then invalid_arg "Sha256.finalize: context already finalized";
  let bit_len = Int64.mul ctx.total 8L in
  (* Padding: 0x80, zeros, 64-bit big-endian bit length. *)
  let pad_len =
    let rem = (ctx.buf_len + 1 + 8) mod block_size in
    if rem = 0 then 1 + 8 else 1 + 8 + (block_size - rem)
  in
  let pad = Bytes.make pad_len '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    let shift = 8 * (7 - i) in
    Bytes.set pad (pad_len - 8 + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len shift) 0xFFL)))
  done;
  (* Bypass the total-length accounting: padding is not message data. *)
  let saved = ctx.total in
  feed ctx pad;
  ctx.total <- saved;
  assert (ctx.buf_len = 0);
  ctx.finished <- true;
  let out = Bytes.create digest_size in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xFF))
  done;
  out

let digest data =
  let ctx = init () in
  feed ctx data;
  finalize ctx

let digest_string s = digest (Bytes.of_string s)
let hex data = Eric_util.Bytesx.to_hex (digest data)
