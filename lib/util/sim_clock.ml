(* Deterministic simulated-time clock.

   One mutable nanosecond counter shared by everything that accounts
   simulated time — the fleet shipper's retry backoff and the serve
   subsystem's event loop advance the same instance, so a scenario has a
   single coherent timeline instead of per-module private accumulators.
   Nothing here ever reads the wall clock. *)

type t = { mutable now_ns : int64 }

let create ?(now_ns = 0L) () =
  if Int64.compare now_ns 0L < 0 then invalid_arg "Sim_clock.create: negative start";
  { now_ns }

let now_ns t = t.now_ns

let advance t ns =
  if Int64.compare ns 0L < 0 then invalid_arg "Sim_clock.advance: negative delta";
  t.now_ns <- Int64.add t.now_ns ns

let advance_to t ns = if Int64.compare ns t.now_ns > 0 then t.now_ns <- ns

let of_s s =
  if s < 0.0 || Float.is_nan s then invalid_arg "Sim_clock.of_s: negative seconds";
  Int64.of_float (s *. 1e9)

let to_s ns = Int64.to_float ns /. 1e9
let to_ms ns = Int64.to_float ns /. 1e6
