(** Deterministic simulated-time clock: a mutable nanosecond counter with
    no connection to the wall clock.

    The fleet shipper accounts retry backoff into it and the serve
    subsystem's event loop drives it forward, so both subsystems advance
    {e the same} timeline rather than keeping private copies.  All
    movement is monotone: time never goes backwards. *)

type t

val create : ?now_ns:int64 -> unit -> t
(** Fresh clock, at [now_ns] (default 0).
    @raise Invalid_argument on a negative start. *)

val now_ns : t -> int64

val advance : t -> int64 -> unit
(** Move forward by a delta.
    @raise Invalid_argument on a negative delta. *)

val advance_to : t -> int64 -> unit
(** Move forward to an absolute time; a no-op when already past it. *)

val of_s : float -> int64
(** Seconds to nanoseconds.  @raise Invalid_argument on negatives/NaN. *)

val to_s : int64 -> float
val to_ms : int64 -> float
