(** Byte-buffer helpers shared across the framework: hex conversion and
    little-endian fixed-width codecs (RISC-V and ERIC's package format are
    little-endian throughout). *)

val to_hex : bytes -> string
(** Lowercase hex, two characters per byte. *)

val of_hex : string -> bytes
(** Inverse of [to_hex]; accepts upper or lower case.  Raises
    [Invalid_argument] on odd length or non-hex characters. *)

val get_u16 : bytes -> int -> int
(** Little-endian 16-bit read at byte offset. *)

val set_u16 : bytes -> int -> int -> unit

val get_u32 : bytes -> int -> int32
val set_u32 : bytes -> int -> int32 -> unit

val get_u64 : bytes -> int -> int64
val set_u64 : bytes -> int -> int64 -> unit

val xor_into : src:bytes -> key:bytes -> dst:bytes -> unit
(** [xor_into ~src ~key ~dst] writes [src XOR key] into [dst]; all three must
    have equal length.  Processes 8 bytes per step as little-endian 64-bit
    words with a scalar tail, so keystream personalization runs at word
    speed. *)

val append : bytes -> bytes -> bytes

val concat : bytes list -> bytes
