let hex_digit n = "0123456789abcdef".[n]

let to_hex b =
  let n = Bytes.length b in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code (Bytes.get b i) in
    Bytes.set out (2 * i) (hex_digit (c lsr 4));
    Bytes.set out ((2 * i) + 1) (hex_digit (c land 0xF))
  done;
  Bytes.unsafe_to_string out

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Bytesx.of_hex: odd length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bytesx.of_hex: non-hex character"
  in
  Bytes.init (n / 2) (fun i -> Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let get_u16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set_u16 b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF))

let get_u32 = Bytes.get_int32_le
let set_u32 = Bytes.set_int32_le
let get_u64 = Bytes.get_int64_le
let set_u64 = Bytes.set_int64_le

let xor_into ~src ~key ~dst =
  let n = Bytes.length src in
  if Bytes.length key <> n || Bytes.length dst <> n then
    invalid_arg "Bytesx.xor_into: length mismatch";
  (* Personalization hot path: XOR 8 bytes per step as 64-bit words, with
     a scalar tail for the last n mod 8 bytes. *)
  let words = n lsr 3 in
  for w = 0 to words - 1 do
    let off = w lsl 3 in
    Bytes.set_int64_le dst off
      (Int64.logxor (Bytes.get_int64_le src off) (Bytes.get_int64_le key off))
  done;
  for i = words lsl 3 to n - 1 do
    Bytes.set dst i (Char.chr (Char.code (Bytes.get src i) lxor Char.code (Bytes.get key i)))
  done

let append a b =
  let out = Bytes.create (Bytes.length a + Bytes.length b) in
  Bytes.blit a 0 out 0 (Bytes.length a);
  Bytes.blit b 0 out (Bytes.length a) (Bytes.length b);
  out

let concat parts = Bytes.concat Bytes.empty parts
