(** Program encryption and decryption (the compiler's Encryption Unit and
    the HDE's Decryption Unit).

    Keystream bytes are addressed by text-section byte offset; the
    signature trailer uses the stream at offset [text_len].  Decryption is
    *streaming*, exactly as the hardware works: the parcel framing of an
    encrypted text section is discovered by decrypting each parcel's low
    half first and reading its length bits — which is why a 1-bit-per-parcel
    map suffices and no parcel-size table travels with the package. *)

type stats = {
  parcels : int;
  encrypted_parcels : int;
  encrypted_bytes : int;  (** bytes that needed keystream (for the HDE model) *)
}

val encrypt :
  ?obf:int * int64 -> key:bytes -> mode:Config.mode -> Eric_rv.Program.t -> Package.t * stats
(** Sign (over plaintext) then encrypt per [mode].  [obf] is the
    obfuscation provenance (pass mask, build seed) to record in the
    package header; it is authenticated along with the rest. *)

type prepared
(** The key-independent part of an encryption: parcel selection, package
    skeleton and the plaintext signature.  [prepare] runs once per
    (image, mode); [personalize] then derives a device's package with
    nothing but keystream XOR — the fleet's compile-once/encrypt-many
    fast path.  [encrypt ~key ~mode image] is exactly
    [personalize ~key (prepare ~mode image)]. *)

val prepare : ?obf:int * int64 -> mode:Config.mode -> Eric_rv.Program.t -> prepared
(** Select parcels, lay the package out, and sign the plaintext (counts
    one [build.signatures_total]). *)

val personalize : key:bytes -> prepared -> Package.t * stats
(** XOR the prepared layout against [key]'s keystream (counts one
    [build.personalizations_total]). *)

val prepared_stats : prepared -> stats
(** Selection statistics, available before any key is seen. *)

type error =
  | Framing_failure of string
      (** the decrypted stream does not tile into parcels — wrong device,
          corrupted map, or truncation *)
  | Signature_mismatch
      (** decryption succeeded structurally but the recomputed signature
          disagrees: tampering, soft error, or wrong device *)

val pp_error : Format.formatter -> error -> unit

val decrypt : key:bytes -> Package.t -> (Eric_rv.Program.t * stats, error) result
(** Decrypt, recompute the signature over the decrypted content and
    validate it against the package's (decrypted) signature. *)

val decrypt_text_only : key:bytes -> Package.t -> bytes
(** Just run the keystream over the text section without framing or
    validation — what a naive attacker with a guessed key obtains; used by
    the analysis module. *)
