(** The encrypted program package: what actually travels over the
    untrusted network.

    Wire layout (little-endian):
    {v
    off  size  field
    0    4     magic "EPKG"
    4    2     version
    6    1     mode tag (0=full, 1=partial, 2=field/imm,
                         3=field/all-but-opcode, 4=field/control-flow)
    7    1     flags (bit 0 = obfuscation metadata present; rest reserved)
    8    4     entry offset (bytes into text)
    12   4     text length (bytes)
    16   4     data length (bytes)
    20   4     BSS size (bytes)
    24   4     parcel count
    28   4     encryption-map length (bytes; 0 for full encryption)
    32   map   encryption map (1 bit per parcel, LSB-first)
    ..   9     obfuscation metadata, iff flag bit 0: pass mask (1 byte,
               low 5 bits assigned) + build seed (8 bytes LE)
    ..   text  encrypted text section
    ..   data  data section (plaintext)
    ..   32    encrypted signature
    v}

    Matching the paper's size accounting (Fig 5): full encryption adds only
    the 256-bit signature over a plain image; partial/field encryption adds
    the signature plus one map bit per parcel. *)

type mode_kind = M_full | M_partial | M_field of Config.field_scope

val kind_of_mode : Config.mode -> mode_kind

type t = {
  kind : mode_kind;
  entry_offset : int;
  bss_size : int;
  parcel_count : int;
  map : Eric_util.Bitvec.t option;  (** [None] iff [kind = M_full] *)
  obf : (int * int64) option;
      (** obfuscation provenance: (pass mask, build seed).  Recorded so
          tooling can tell which transforms produced the text it is
          holding and rebuild it byte-identically; covered by the
          signature like the rest of the header. *)
  enc_text : bytes;
  data : bytes;
  enc_signature : bytes;  (** 32 bytes, XORed with keystream at offset [text_len] *)
}

val header_size : int

val size : t -> int
(** Total wire size in bytes — the Fig-5 "program package size". *)

val authenticated_header : t -> bytes
(** The header bytes covered by the signature (everything up to and
    including the map and obfuscation metadata, with the signature
    region excluded by construction). *)

val serialize : t -> bytes

val parse : bytes -> (t, string) result
(** Strict: every wire bit is either interpreted or rejected.  Beyond
    framing (magic, version, known mode tag, zero reserved flags, exact
    total length), the header must be internally consistent — the map is
    exactly [ceil(parcel_count/8)] bytes with zero padding bits (absent
    for full encryption), [2*parcel_count <= text_len <= 4*parcel_count]
    since parcels are 2 or 4 bytes, and the entry offset is
    parcel-aligned inside the text section. *)

val pp_summary : Format.formatter -> t -> unit
