(** The target-hardware side of ERIC: a device with a PUF, a Key Management
    Unit and an HDE in front of its Rocket-class core — steps 5-6 of the
    paper's workflow.

    [receive*] runs the whole HDE path (streaming decrypt, signature
    regeneration, validation) and accounts its load-time cycles with the
    {!Eric_hw.Hde} model; [execute] then runs the validated program on the
    simulated SoC, so [Eric_sim.Soc.total_cycles] is the end-to-end time
    Fig 7 compares against a plain load of the same program. *)

type t

type health = Healthy | Integrity_faulted of string

val create :
  ?context:Kmu.context -> ?hde:Eric_hw.Hde.config -> Eric_puf.Device.t -> t
(** Plain majority-vote key path (assumes nominal conditions; always
    yields a key). *)

val of_id : ?context:Kmu.context -> ?hde:Eric_hw.Hde.config -> Eric_puf.Device.id -> t
(** Manufacture the device on the fly. *)

val create_with_helper :
  ?context:Kmu.context ->
  ?hde:Eric_hw.Hde.config ->
  ?fuzzy:Eric_puf.Fuzzy.config ->
  ?env:Eric_puf.Env.t ->
  Eric_puf.Device.t ->
  Eric_puf.Enroll.helper ->
  t
(** Production boot: reconstruct the PUF key through the fuzzy extractor
    at the given operating point and derive the working key.  The HDE
    key-setup budget is re-costed from the actual challenge reads and
    attempts ({!Eric_hw.Hde.reconstruction_cycles}).  On reconstruction
    failure the target is still built, but {!key_state} is [Error] and
    every load refuses with {!Key_unavailable} — graceful degradation,
    never a wrong key. *)

val device : t -> Eric_puf.Device.t

val key_state : t -> (bytes, Eric_puf.Fuzzy.failure) result
(** The boot outcome: the derived working key, or the typed
    reconstruction failure this target is refusing loads with. *)

val health : t -> health
(** What the last execution left behind: [Integrity_faulted] when the
    runtime guard found resident memory diverging from its load-time
    digests.  A faulted device is recoverable — re-shipping and cleanly
    re-running the image restores [Healthy] — and distinct from a
    {!load_error}, which refuses before anything runs. *)

val hde_config : t -> Eric_hw.Hde.config
(** The device's HDE configuration, including its integrity-guard
    mechanism. *)

val derived_key : t -> bytes
(** The device's PUF-based key for its current KMU context (what
    provisioning would hand to a trusted software source).
    @raise Invalid_argument when {!key_state} is [Error] — provisioning
    flows should check {!key_state} on helper-booted targets. *)

type load_error =
  | Malformed of string  (** the bytes are not a well-formed package *)
  | Rejected of Encrypt.error  (** the Validation Unit said no *)
  | Key_unavailable of Eric_puf.Fuzzy.failure
      (** key reconstruction failed at boot; the HDE refuses every load
          (distinct from a validation refusal: the package may be fine,
          the silicon could not rebuild its key) *)

val pp_load_error : Format.formatter -> load_error -> unit

val refusal_reason : load_error -> string
(** Stable label for the telemetry family
    [ingest.refused_total{reason=...}]: ["malformed"], ["framing"],
    ["signature"] or ["key-reconstruction"]. *)

val count_refusal : load_error -> unit
(** Increment [ingest.refused_total{reason=...}] (no-op when telemetry
    is disabled).  [receive]/[receive_bytes] call this themselves; it is
    exposed for front ends that parse packages on their own. *)

type loaded = {
  image : Eric_rv.Program.t;
  stats : Encrypt.stats;
  load : Eric_hw.Hde.breakdown;  (** HDE ingest cycle accounting *)
}

val receive : t -> Package.t -> (loaded, load_error) result
val receive_bytes : t -> bytes -> (loaded, load_error) result

val run :
  ?timing:Eric_sim.Cpu.timing ->
  ?fuel:int ->
  ?corrupt:(Eric_sim.Memory.t -> Eric_rv.Program.t -> unit) ->
  t ->
  loaded ->
  Eric_sim.Soc.result
(** Load a received image into SoC memory and run it under the device's
    integrity guard ({!Eric_hw.Hde.config.guard}), accounting the HDE's
    load cycles.  [corrupt], applied after the load and before the first
    instruction, injects post-validation memory faults (soft-error
    campaigns); the guard enrolled its reference digests during the HDE
    load, so such corruption diverges from them.  Updates {!health} from
    the run's outcome. *)

val execute :
  ?timing:Eric_sim.Cpu.timing ->
  ?fuel:int ->
  t ->
  Package.t ->
  (Eric_sim.Soc.result, load_error) result
(** Receive, load into SoC memory and run to completion; the result's
    [load_cycles] is the HDE total. *)
