(** The software-source side of ERIC: compile, sign, encrypt, package —
    steps 2-3 of the paper's workflow.

    The source never sees the target's PUF key, only a PUF-based key
    derived by the device's Key Management Unit and delivered during
    provisioning (the paper's "handshake is already done" assumption,
    realised by {!Protocol.provision}). *)

type build = {
  image : Eric_rv.Program.t;  (** the plaintext image (stays at the source) *)
  package : Package.t;  (** what ships *)
  stats : Encrypt.stats;
  plain_size : int;  (** plain binary bytes — Fig 5's baseline *)
  package_size : int;  (** encrypted package bytes — Fig 5's numerator *)
}

val build :
  ?options:Eric_cc.Driver.options ->
  ?obf:int * int64 ->
  mode:Config.mode ->
  key:bytes ->
  string ->
  (build, string) result
(** Compile MiniC [source] and package it for the holder of [key].
    [obf] records obfuscation provenance (pass mask, build seed) in the
    package header; the caller is responsible for passing a matching
    transform in [options]. *)

val package_image :
  ?obf:int * int64 -> mode:Config.mode -> key:bytes -> Eric_rv.Program.t -> build
(** Packaging only, for a pre-compiled image. *)

type prepared = {
  p_image : Eric_rv.Program.t;  (** the plaintext image, physically shared
                                    by every build personalized from it *)
  p_plain_size : int;
  p_prep : Encrypt.prepared;
}
(** A build minus the device: compiled, signed, laid out — everything that
    is independent of the target's key.  The fleet's artifact cache stores
    these so repeated campaigns skip the compiler and signer entirely. *)

val prepare :
  ?options:Eric_cc.Driver.options ->
  ?obf:int * int64 ->
  mode:Config.mode ->
  string ->
  (prepared, string) result
(** Compile, sign and lay out once; personalize per device afterwards. *)

val prepare_image : ?obf:int * int64 -> mode:Config.mode -> Eric_rv.Program.t -> prepared
(** Same, for a pre-compiled image (e.g. one loaded from the artifact
    cache's disk tier). *)

val personalize : key:bytes -> prepared -> build
(** Derive one device's build: pure keystream XOR over the prepared
    layout, no compilation, hashing or layout work. *)

val build_multi :
  ?options:Eric_cc.Driver.options ->
  ?obf:int * int64 ->
  mode:Config.mode ->
  keys:(string * bytes) list ->
  string ->
  ((string * build) list, string) result
(** One compile, many targets — the paper's "compiling from a single
    software source for multiple target hardware".  Implemented as
    [prepare] + [personalize] per key, so compilation, signature hashing
    and layout run once total and every returned build shares the same
    plaintext image value. *)
