open Eric_rv
module Leakage = Eric_lint.Leakage

let coverage ~mode (p : Program.t) =
  let offsets = Program.parcel_offsets p in
  let selected = Config.selection_bits mode ~parcels:p.Program.text ~offsets in
  Array.mapi
    (fun i parcel ->
      if not (Eric_util.Bitvec.get selected i) then Leakage.Clear
      else
        match mode with
        | Config.Full | Config.Partial _ -> Leakage.Enc_all
        | Config.Field (scope, _) -> (
          match parcel with
          | Program.P32 w -> Leakage.Enc32 (Config.field_mask32 scope w)
          | Program.P16 v -> Leakage.Enc16 (Config.field_mask16 scope v)))
    p.Program.text

let analyze ~mode p = Leakage.analyze p (coverage ~mode p)
let lint ?max_leakage ~mode p = Leakage.lint ?max_leakage p (coverage ~mode p)
let recover ~mode ~attacker p = Leakage.recover attacker p (coverage ~mode p)
