open Eric_rv

type stats = { parcels : int; encrypted_parcels : int; encrypted_bytes : int }

type error = Framing_failure of string | Signature_mismatch

let pp_error fmt = function
  | Framing_failure msg -> Format.fprintf fmt "framing failure: %s" msg
  | Signature_mismatch -> Format.pp_print_string fmt "signature mismatch"

(* The whole stream for text + signature trailer, generated once.  The
   hardware generates it block-by-block on the fly; the bytes are
   identical. *)
let stream_for ~key ~text_len =
  let ks = Eric_crypto.Keystream.create ~key in
  Eric_crypto.Keystream.take ks (text_len + Siggen.signature_size)

let xor_range buf ks ~pos ~len =
  for i = pos to pos + len - 1 do
    Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor Char.code (Bytes.get ks i)))
  done

let xor_field32 buf ks ~pos ~mask =
  let w = Eric_util.Bytesx.get_u32 buf pos in
  let kw = Eric_util.Bytesx.get_u32 ks pos in
  Eric_util.Bytesx.set_u32 buf pos (Int32.logxor w (Int32.logand kw mask))

let xor_field16 buf ks ~pos ~mask =
  let p = Eric_util.Bytesx.get_u16 buf pos in
  let kp = Eric_util.Bytesx.get_u16 ks pos in
  Eric_util.Bytesx.set_u16 buf pos (p lxor (kp land mask))

(* ------------------------------------------------------------------ *)
(* Encryption (software source side)                                   *)
(* ------------------------------------------------------------------ *)

(* Everything about a package that does not depend on the target's key:
   parcel selection, the package skeleton (header + map + plaintext
   sections) and the plaintext signature.  Computed once per (image, mode)
   and shared across every device the build is personalized for. *)
type prepared = {
  p_skeleton : Package.t;  (* enc_text still plaintext, signature zeroed *)
  p_signature : bytes;  (* plaintext signature over header, text, data *)
  p_parcels : Program.parcel array;
  p_offsets : int array;
  p_map : Eric_util.Bitvec.t;
  p_stats : stats;
}

let prepared_stats p = p.p_stats

let prepare_unmetered ?obf ~mode image =
  let text = Program.text_bytes image in
  let parcels = image.Program.text in
  let offsets = Program.parcel_offsets image in
  let map = Config.selection_bits mode ~parcels ~offsets in
  let kind = Package.kind_of_mode mode in
  let skeleton =
    {
      Package.kind;
      entry_offset = image.Program.entry_offset;
      bss_size = image.Program.bss_size;
      parcel_count = Array.length parcels;
      map = (match kind with Package.M_full -> None | _ -> Some map);
      obf;
      enc_text = text;
      (* plaintext; personalization works on a copy *)
      data = image.Program.data;
      enc_signature = Bytes.make Siggen.signature_size '\000';
    }
  in
  let signature =
    Siggen.signature
      ~authenticated:[ Package.authenticated_header skeleton; text; image.Program.data ]
  in
  if Eric_telemetry.Control.is_enabled () then
    Eric_telemetry.Registry.inc "build.signatures_total";
  let encrypted_parcels = ref 0 and encrypted_bytes = ref 0 in
  Array.iteri
    (fun i parcel ->
      if Eric_util.Bitvec.get map i then begin
        incr encrypted_parcels;
        encrypted_bytes := !encrypted_bytes + Program.parcel_size parcel
      end)
    parcels;
  {
    p_skeleton = skeleton;
    p_signature = signature;
    p_parcels = parcels;
    p_offsets = offsets;
    p_map = map;
    p_stats =
      {
        parcels = Array.length parcels;
        encrypted_parcels = !encrypted_parcels;
        encrypted_bytes = !encrypted_bytes;
      };
  }

let personalize_unmetered ~key p =
  let text = p.p_skeleton.Package.enc_text in
  let kind = p.p_skeleton.Package.kind in
  let ks = stream_for ~key ~text_len:(Bytes.length text) in
  let enc_text = Bytes.copy text in
  Array.iteri
    (fun i parcel ->
      if Eric_util.Bitvec.get p.p_map i then begin
        let pos = p.p_offsets.(i) in
        let len = Program.parcel_size parcel in
        match kind with
        | Package.M_full | Package.M_partial -> xor_range enc_text ks ~pos ~len
        | Package.M_field scope -> (
          match parcel with
          | Program.P32 w -> xor_field32 enc_text ks ~pos ~mask:(Config.field_mask32 scope w)
          | Program.P16 parc -> xor_field16 enc_text ks ~pos ~mask:(Config.field_mask16 scope parc))
      end)
    p.p_parcels;
  let enc_signature = Bytes.create Siggen.signature_size in
  Eric_util.Bytesx.xor_into ~src:p.p_signature
    ~key:(Bytes.sub ks (Bytes.length text) Siggen.signature_size)
    ~dst:enc_signature;
  ({ p.p_skeleton with Package.enc_text; enc_signature }, p.p_stats)

let prepare ?obf ~mode image =
  Eric_telemetry.Span.with_ ~cat:"core" ~name:"core.prepare" (fun () ->
      prepare_unmetered ?obf ~mode image)

let personalize ~key p =
  let r =
    Eric_telemetry.Span.with_ ~cat:"core" ~name:"core.personalize" (fun () ->
        personalize_unmetered ~key p)
  in
  if Eric_telemetry.Control.is_enabled () then
    Eric_telemetry.Registry.inc "build.personalizations_total";
  r

let encrypt_unmetered ?obf ~key ~mode image =
  personalize_unmetered ~key (prepare_unmetered ?obf ~mode image)

let encrypt ?obf ~key ~mode image =
  let ((_, stats) as r) =
    Eric_telemetry.Span.with_ ~cat:"core" ~name:"core.encrypt" (fun () ->
        encrypt_unmetered ?obf ~key ~mode image)
  in
  if Eric_telemetry.Control.is_enabled () then begin
    Eric_telemetry.Registry.inc "build.encrypts_total";
    Eric_telemetry.Registry.inc ~by:(Int64.of_int stats.parcels) "build.parcels_total";
    Eric_telemetry.Registry.inc ~by:(Int64.of_int stats.encrypted_parcels)
      "build.parcels_encrypted";
    Eric_telemetry.Registry.inc ~by:(Int64.of_int stats.encrypted_bytes) "build.bytes_encrypted"
  end;
  r

(* ------------------------------------------------------------------ *)
(* Decryption (HDE side)                                               *)
(* ------------------------------------------------------------------ *)

let decrypt_unmetered ~key (pkg : Package.t) =
  let text_len = Bytes.length pkg.enc_text in
  let ks = stream_for ~key ~text_len in
  let out = Bytes.copy pkg.enc_text in
  let map_bit idx =
    match pkg.map with
    | None -> true (* full encryption *)
    | Some m -> idx < Eric_util.Bitvec.length m && Eric_util.Bitvec.get m idx
  in
  let encrypted_parcels = ref 0 and encrypted_bytes = ref 0 in
  (* Streaming framing discovery: decrypt a parcel's low half, read its
     length bits, finish the parcel, move on. *)
  let rec walk off idx =
    if off = text_len then
      if idx = pkg.parcel_count then Ok ()
      else Error (Framing_failure "fewer parcels than the header promises")
    else if off + 2 > text_len then Error (Framing_failure "trailing odd byte")
    else if idx >= pkg.parcel_count then
      Error (Framing_failure "more parcels than the header promises")
    else begin
      let enc = map_bit idx in
      match pkg.kind with
      | Package.M_full | Package.M_partial ->
        if enc then xor_range out ks ~pos:off ~len:2;
        let half = Eric_util.Bytesx.get_u16 out off in
        let size = if half land 0b11 = 0b11 then 4 else 2 in
        if off + size > text_len then Error (Framing_failure "32-bit parcel runs past the end")
        else begin
          if enc then begin
            if size = 4 then xor_range out ks ~pos:(off + 2) ~len:2;
            incr encrypted_parcels;
            encrypted_bytes := !encrypted_bytes + size
          end;
          walk (off + size) (idx + 1)
        end
      | Package.M_field scope ->
        (* Opcode bits are plaintext by construction, so framing and mask
           derivation read the ciphertext directly. *)
        let half = Eric_util.Bytesx.get_u16 out off in
        let size = if half land 0b11 = 0b11 then 4 else 2 in
        if off + size > text_len then Error (Framing_failure "32-bit parcel runs past the end")
        else begin
          if enc then begin
            (if size = 4 then begin
               let w = Eric_util.Bytesx.get_u32 out off in
               xor_field32 out ks ~pos:off ~mask:(Config.field_mask32 scope w)
             end
             else xor_field16 out ks ~pos:off ~mask:(Config.field_mask16 scope half));
            incr encrypted_parcels;
            encrypted_bytes := !encrypted_bytes + size
          end;
          walk (off + size) (idx + 1)
        end
    end
  in
  match walk 0 0 with
  | Error e -> Error e
  | Ok () -> (
    (* Validation Unit: recompute the signature over the decrypted
       content, decrypt the travelling signature, compare. *)
    let recomputed =
      Siggen.signature ~authenticated:[ Package.authenticated_header pkg; out; pkg.data ]
    in
    let travelling = Bytes.create Siggen.signature_size in
    Eric_util.Bytesx.xor_into ~src:pkg.enc_signature
      ~key:(Bytes.sub ks text_len Siggen.signature_size)
      ~dst:travelling;
    if not (Eric_crypto.Ct.equal recomputed travelling) then Error Signature_mismatch
    else
      match Program.frame_text out with
      | None -> Error (Framing_failure "decrypted text does not tile")
      | Some parcels ->
        Ok
          ( {
              Program.text = parcels;
              data = pkg.data;
              bss_size = pkg.bss_size;
              entry_offset = pkg.entry_offset;
              symbols = [];
            },
            {
              parcels = pkg.parcel_count;
              encrypted_parcels = !encrypted_parcels;
              encrypted_bytes = !encrypted_bytes;
            } ))

let decrypt ~key (pkg : Package.t) =
  let r =
    Eric_telemetry.Span.with_ ~cat:"core" ~name:"ingest.decrypt" (fun () ->
        decrypt_unmetered ~key pkg)
  in
  if Eric_telemetry.Control.is_enabled () then begin
    match r with
    | Ok (_, stats) ->
      Eric_telemetry.Registry.inc ~by:(Int64.of_int stats.encrypted_parcels)
        "ingest.parcels_decrypted";
      Eric_telemetry.Registry.inc ~by:(Int64.of_int stats.encrypted_bytes)
        "ingest.bytes_decrypted";
      Eric_telemetry.Registry.inc ~labels:[ ("result", "ok") ] "ingest.signature_validations"
    | Error Signature_mismatch ->
      Eric_telemetry.Registry.inc
        ~labels:[ ("result", "mismatch") ]
        "ingest.signature_validations"
    | Error (Framing_failure _) -> () (* the Validation Unit never ran *)
  end;
  r

let decrypt_text_only ~key (pkg : Package.t) =
  let text_len = Bytes.length pkg.enc_text in
  let ks = stream_for ~key ~text_len in
  let out = Bytes.copy pkg.enc_text in
  xor_range out ks ~pos:0 ~len:text_len;
  out
