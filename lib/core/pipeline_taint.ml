module Taint = Eric_lint.Taint

(* The declared model of ERIC's build/personalize pipeline, mirroring
   the real modules value for value:

   - [Eric_puf] silicon emits the raw PUF response; [Kmu.derive] turns
     it into the working device key (HMAC, so still key material);
     [Eric_crypto.Keystream] expands the device key.
   - [Encrypt.prepare] lays out the package skeleton from the plaintext
     image: header fields, parcel map, text, data, and the plaintext
     SHA-256 signature — none of which sees the key.
   - [Encrypt.personalize] XORs text and signature against the
     keystream.  XOR with a fresh keystream is the sanitizing step: the
     ciphertext reveals nothing about the key.
   - Telemetry observes counts (parcels, bytes, validations), never key
     bytes.

   The obligation gated in CI: no KMU-derived value may reach a
   plaintext package field or telemetry output.  Every package field is
   a sink; [enc_text] and [enc_signature] reach the package only
   through the sanitizing XOR. *)

let field_check = "taint.key.plaintext-field"
let telemetry_check = "taint.key.telemetry"

let model =
  {
    Taint.nodes =
      [ ("puf_response", Taint.Source);
        ("kmu_context", Taint.Internal);
        ("device_key", Taint.Internal);
        ("keystream", Taint.Internal);
        ("plaintext_image", Taint.Internal);
        ("parcel_selection", Taint.Internal);
        ("signature", Taint.Internal);
        ("enc_text", Taint.Internal);
        ("enc_signature", Taint.Internal);
        ("package_header", Taint.Sink field_check);
        ("package_map", Taint.Sink field_check);
        ("package_enc_text", Taint.Sink field_check);
        ("package_data", Taint.Sink field_check);
        ("package_enc_signature", Taint.Sink field_check);
        ("telemetry_counters", Taint.Sink telemetry_check) ];
    edges =
      [ (* Kmu.derive: HMAC(puf_key, context) — derived keys are key
           material; the context is public. *)
        ("puf_response", Taint.Derive, "device_key");
        ("kmu_context", Taint.Copy, "device_key");
        (* Eric_crypto.Keystream.create ~key *)
        ("device_key", Taint.Derive, "keystream");
        (* Encrypt.prepare: key-independent layout and plaintext
           signature. *)
        ("plaintext_image", Taint.Copy, "parcel_selection");
        ("plaintext_image", Taint.Derive, "signature");
        ("parcel_selection", Taint.Copy, "package_map");
        ("plaintext_image", Taint.Copy, "package_header");
        ("plaintext_image", Taint.Copy, "package_data");
        (* Encrypt.personalize: the XOR. *)
        ("keystream", Taint.Sanitize, "enc_text");
        ("plaintext_image", Taint.Copy, "enc_text");
        ("keystream", Taint.Sanitize, "enc_signature");
        ("signature", Taint.Copy, "enc_signature");
        ("enc_text", Taint.Copy, "package_enc_text");
        ("enc_signature", Taint.Copy, "package_enc_signature");
        (* build.parcels_total, build.bytes_encrypted, ...: counts of
           the selection, not of any keyed value. *)
        ("parcel_selection", Taint.Copy, "telemetry_counters") ];
  }

let check () = Taint.analyze model

let lint () =
  let result = check () in
  (result, Taint.diags result)

(* A deliberately broken variant for tests and docs: leak the derived
   key into the package header (as a debug fingerprint would). *)
let defective_model =
  { model with
    Taint.edges = ("device_key", Taint.Copy, "package_header") :: model.Taint.edges }
