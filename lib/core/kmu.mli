(** Key Management Unit: derives working "PUF-based keys" from the raw PUF
    key, the abstraction layer the paper insists on — the PUF key itself is
    immutable silicon and must never be handed to software sources, while
    derived keys can be rotated (epochs) and scoped (labels), and the same
    derivation runs inside the HDE and at the software source.

    Derivation is HMAC-SHA-256 with a context string, so distinct contexts
    yield independent keys and the software source learns nothing about
    the PUF key from the derived key it is given. *)

type context = {
  epoch : int;  (** rotating this revokes every previously issued key *)
  label : string;  (** deployment scope, e.g. "firmware-v2" *)
}

val default_context : context

val derive : puf_key:bytes -> context -> bytes
(** 32-byte PUF-based key. *)

val device_key : ?context:context -> Eric_puf.Device.t -> bytes
(** Convenience: read the device's PUF key (majority-voted) and derive.
    Assumes nominal conditions; production boots should prefer
    {!boot_key}, which survives environmental corners. *)

type boot =
  | Key_ready of bytes  (** derived working key, reconstruction verified *)
  | Key_reconstruction_failed of Eric_puf.Fuzzy.failure
      (** the extractor refused; the HDE must refuse to load, never run
          with a guessed key *)

val boot_key :
  ?context:context -> ?fuzzy:Eric_puf.Fuzzy.config -> ?env:Eric_puf.Env.t ->
  Eric_puf.Device.t -> Eric_puf.Enroll.helper -> boot
(** Boot-time key derivation through the fuzzy extractor: reconstruct the
    PUF key from helper data at the current operating point, then derive.
    Every failure is explicit — there is no wrong-key success path. *)

val pp_boot : Format.formatter -> boot -> unit

val pp_context : Format.formatter -> context -> unit
