type static_report = {
  parcels_scanned : int;
  valid_fraction : float;
  opcode_entropy_bits : float;
  distinct_mnemonics : int;
  call_edges : int;
  branch_sites : int;
  prologue_candidates : int;
  printable_runs : int;
}

let shannon counts total =
  if total = 0 then 0.0
  else
    Hashtbl.fold
      (fun _ c acc ->
        let p = float_of_int c /. float_of_int total in
        acc -. (p *. (log p /. log 2.0)))
      counts 0.0

let printable_runs_of text =
  let printable c = c >= ' ' && c <= '~' in
  let runs = ref 0 and current = ref 0 in
  Bytes.iter
    (fun c ->
      if printable c then incr current
      else begin
        if !current >= 4 then incr runs;
        current := 0
      end)
    text;
  if !current >= 4 then incr runs;
  !runs

let static_analysis text =
  Eric_telemetry.Span.with_ ~cat:"core" ~name:"core.analyze" @@ fun () ->
  let lines = Eric_rv.Disasm.disassemble_stream text in
  let total = List.length lines in
  let histogram = Hashtbl.create 64 in
  let valid = ref 0 and calls = ref 0 and branches = ref 0 and prologues = ref 0 in
  List.iter
    (fun (l : Eric_rv.Disasm.line) ->
      match l.decoded with
      | None -> ()
      | Some inst ->
        incr valid;
        let m = Eric_rv.Inst.mnemonic inst in
        Hashtbl.replace histogram m (1 + Option.value (Hashtbl.find_opt histogram m) ~default:0);
        (match inst with
        | Eric_rv.Inst.Jal (rd, _) when Eric_rv.Reg.equal rd Eric_rv.Reg.ra -> incr calls
        | Eric_rv.Inst.Branch _ -> incr branches
        | Eric_rv.Inst.I (Eric_rv.Inst.Addi, rd, rs1, imm)
          when Eric_rv.Reg.equal rd Eric_rv.Reg.sp
               && Eric_rv.Reg.equal rs1 Eric_rv.Reg.sp
               && imm < 0 ->
          incr prologues
        | _ -> ()))
    lines;
  {
    parcels_scanned = total;
    valid_fraction = (if total = 0 then 0.0 else float_of_int !valid /. float_of_int total);
    opcode_entropy_bits = shannon histogram !valid;
    distinct_mnemonics = Hashtbl.length histogram;
    call_edges = !calls;
    branch_sites = !branches;
    prologue_candidates = !prologues;
    printable_runs = printable_runs_of text;
  }

let pp_static_report fmt r =
  Format.fprintf fmt
    "%d parcels, %.1f%% decode, opcode entropy %.2f bits (%d mnemonics), %d calls, %d branches, \
     %d prologues, %d strings"
    r.parcels_scanned (100.0 *. r.valid_fraction) r.opcode_entropy_bits r.distinct_mnemonics
    r.call_edges r.branch_sites r.prologue_candidates r.printable_runs

let bit_difference a b =
  let diff = ref 0 in
  for i = 0 to Bytes.length a - 1 do
    let x = Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i) in
    let rec pop v acc = if v = 0 then acc else pop (v lsr 1) (acc + (v land 1)) in
    diff := !diff + pop x 0
  done;
  !diff

let diffusion ~key pkg =
  let flipped = Bytes.copy key in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last (Char.chr (Char.code (Bytes.get flipped last) lxor 1));
  let a = Encrypt.decrypt_text_only ~key pkg in
  let b = Encrypt.decrypt_text_only ~key:flipped pkg in
  let bits = 8 * Bytes.length a in
  if bits = 0 then 0.0 else float_of_int (bit_difference a b) /. float_of_int bits

let byte_entropy data =
  let counts = Hashtbl.create 256 in
  Bytes.iter
    (fun c -> Hashtbl.replace counts c (1 + Option.value (Hashtbl.find_opt counts c) ~default:0))
    data;
  shannon counts (Bytes.length data)
