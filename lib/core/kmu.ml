type context = { epoch : int; label : string }

let default_context = { epoch = 1; label = "eric" }

let derive ~puf_key context =
  if context.epoch < 0 then invalid_arg "Kmu.derive: negative epoch";
  let msg = Printf.sprintf "ERIC-KDF|epoch=%d|label=%s" context.epoch context.label in
  Eric_crypto.Hmac_sha256.mac_string ~key:puf_key msg

let device_key ?(context = default_context) device =
  derive ~puf_key:(Eric_puf.Device.puf_key device) context

type boot =
  | Key_ready of bytes
  | Key_reconstruction_failed of Eric_puf.Fuzzy.failure

let boot_key ?(context = default_context) ?fuzzy ?env device helper =
  match Eric_puf.Fuzzy.reconstruct ?config:fuzzy ?env device helper with
  | Ok r -> Key_ready (derive ~puf_key:r.Eric_puf.Fuzzy.key context)
  | Error f -> Key_reconstruction_failed f

let pp_boot fmt = function
  | Key_ready _ -> Format.pp_print_string fmt "key ready"
  | Key_reconstruction_failed f ->
    Format.fprintf fmt "key reconstruction failed: %a" Eric_puf.Fuzzy.pp_failure f

let pp_context fmt c = Format.fprintf fmt "epoch %d, label %S" c.epoch c.label
