(** Encryption configuration: the paper's three methods.

    - {!Full}: every instruction parcel is encrypted; the package needs no
      map, only the 256-bit signature trailer.
    - {!Partial}: a subset of parcels is encrypted and a 1-bit-per-parcel
      map travels with the package ("a bit is added for each instruction";
      with RVC that is one bit per 16-bit parcel slot in the worst case).
    - {!Field}: selected parcels have only chosen bit-fields encrypted,
      leaving opcodes legible — the paper's trick for hiding memory-trace
      immediates while making the encryption itself hard to notice. *)

type selection =
  | Select_all
  | Select_fraction of { fraction : float; seed : int64 }
      (** each parcel independently chosen by a seeded coin, matching the
          paper's "instructions randomly determined are selected" *)
  | Select_ranges of (int * int) list
      (** [start, stop) byte ranges within the text section — the
          "protect the critical parts" use case *)

type field_scope =
  | Imm_fields
      (** immediate/offset fields of loads, stores, branches, jumps and
          U-type instructions (e.g. "only the pointer values of the
          instructions that make memory accesses") *)
  | All_but_opcode  (** everything except the 7-bit opcode *)
  | Control_flow
      (** branch-offset + call-edge encryption: only the displacement
          fields of branches, [jal] and [jalr] (and their compressed
          forms) are encrypted, hiding where control transfers land —
          the structural metadata an attacker needs — while every data
          instruction ships byte-identical to the plain image *)

type mode =
  | Full
  | Partial of selection
  | Field of field_scope * selection

val mode_tag : mode -> int
(** Wire encoding of the mode (stable across versions). *)

val pp_mode : Format.formatter -> mode -> unit

val selection_bits :
  mode -> parcels:Eric_rv.Program.parcel array -> offsets:int array -> Eric_util.Bitvec.t
(** The encryption map: bit [i] = parcel [i] is (at least partly)
    encrypted.  For {!Field} modes, parcels whose scope mask is empty (no
    such field in that instruction format) are never selected. *)

val field_mask32 : field_scope -> int32 -> int32
(** Mask of encrypted bits for a 32-bit encoding, derived from its (always
    plaintext) opcode. *)

val field_mask16 : field_scope -> int -> int
(** Same for a 16-bit compressed parcel; [Imm_fields] leaves compressed
    parcels alone (their immediates interleave with register fields),
    [All_but_opcode] protects everything above the quadrant+funct3 bits,
    and [Control_flow] protects the displacement bits of [c.j] /
    [c.beqz] / [c.bnez] (quadrant and funct3 stay legible, so the
    decryptor can re-derive the mask from the ciphertext parcel). *)
