(** Adapter between a concrete encryption policy ({!Config.mode}) and the
    policy-agnostic leakage lint ({!Eric_lint.Leakage}).

    Run on the *plaintext* program before packaging, it computes exactly
    which bits each parcel would ship in the clear under the policy —
    {!Config.selection_bits} for parcel selection, {!Config.field_mask32}
    / {!Config.field_mask16} for field scopes — and scores what a
    linear-sweep attacker recovers from them. *)

val coverage :
  mode:Config.mode -> Eric_rv.Program.t -> Eric_lint.Leakage.coverage array
(** One entry per text parcel. *)

val analyze : mode:Config.mode -> Eric_rv.Program.t -> Eric_lint.Leakage.report

val lint :
  ?max_leakage:float ->
  mode:Config.mode ->
  Eric_rv.Program.t ->
  Eric_lint.Leakage.report * Eric_lint.Diag.t list
(** See {!Eric_lint.Leakage.lint} for the gate semantics. *)

val recover :
  mode:Config.mode ->
  attacker:Eric_lint.Leakage.attacker ->
  Eric_rv.Program.t ->
  Eric_lint.Leakage.structure
(** Simulate an attacker against the bits the policy ships in the clear;
    see {!Eric_lint.Leakage.recover}. *)
