type attack =
  | No_attack
  | Bit_flips of { count : int; seed : int64 }
  | Truncate of int
  | Splice of { payload : bytes; at : int }
  | Replay of bytes

let apply_attack attack bytes =
  match attack with
  | No_attack -> bytes
  | Bit_flips { count; seed } ->
    let out = Bytes.copy bytes in
    let rng = Eric_util.Prng.create ~seed in
    for _ = 1 to count do
      let pos = Eric_util.Prng.int rng ~bound:(Bytes.length out) in
      let bit = Eric_util.Prng.int rng ~bound:8 in
      Bytes.set out pos (Char.chr (Char.code (Bytes.get out pos) lxor (1 lsl bit)))
    done;
    out
  | Truncate n -> Bytes.sub bytes 0 (max 0 (Bytes.length bytes - n))
  | Splice { payload; at } ->
    let out = Bytes.copy bytes in
    let len = min (Bytes.length payload) (max 0 (Bytes.length out - at)) in
    if len > 0 then Bytes.blit payload 0 out at len;
    out
  | Replay captured -> captured

type outcome = Executed of Eric_sim.Soc.result | Refused of Target.load_error

let pp_outcome fmt = function
  | Executed r ->
    Format.fprintf fmt "executed (%a, %Ld cycles)"
      (fun f (s : Eric_sim.Cpu.status) ->
        match s with
        | Eric_sim.Cpu.Exited c -> Format.fprintf f "exit %d" c
        | Eric_sim.Cpu.Faulted m -> Format.fprintf f "fault: %s" m
        | Eric_sim.Cpu.Integrity_fault m -> Format.fprintf f "integrity fault: %s" m
        | Eric_sim.Cpu.Running -> Format.pp_print_string f "running")
      r.Eric_sim.Soc.status
      (Eric_sim.Soc.total_cycles r)
  | Refused e -> Format.fprintf fmt "refused (%a)" Target.pp_load_error e

let provision = Target.derived_key

let provision_over_network ?(attack = No_attack) ~rng ~source_key target =
  let pub = Eric_crypto.Rsa.public_of source_key in
  match Eric_crypto.Rsa.encrypt pub rng (Target.derived_key target) with
  | Error _ as e -> e
  | Ok wire -> Eric_crypto.Rsa.decrypt source_key (apply_attack attack wire)

let transmit ?(attack = No_attack) ?fuel ~(source : Source.build) ~target () =
  Eric_telemetry.Span.with_ ~cat:"core" ~name:"transit.transmit" (fun () ->
      let serialized =
        Eric_telemetry.Span.with_ ~cat:"core" ~name:"build.serialize" (fun () ->
            Package.serialize source.Source.package)
      in
      if Eric_telemetry.Control.is_enabled () then begin
        Eric_telemetry.Registry.inc "transit.messages_total";
        Eric_telemetry.Registry.inc ~by:(Int64.of_int (Bytes.length serialized))
          "transit.bytes_out"
      end;
      let wire = apply_attack attack serialized in
      match Package.parse wire with
      | Error msg ->
        let e = Target.Malformed msg in
        Target.count_refusal e;
        Refused e
      | Ok pkg -> (
        match Target.execute ?fuel target pkg with
        | Error e -> Refused e
        | Ok result -> Executed result))

let cross_check ~builds ~targets =
  List.concat_map
    (fun (bname, build) ->
      List.map
        (fun (tname, target) ->
          let ok =
            match transmit ~source:build ~target () with
            | Executed _ -> true
            | Refused _ -> false
          in
          (bname, tname, ok))
        targets)
    builds
