type selection =
  | Select_all
  | Select_fraction of { fraction : float; seed : int64 }
  | Select_ranges of (int * int) list

type field_scope = Imm_fields | All_but_opcode | Control_flow

type mode = Full | Partial of selection | Field of field_scope * selection

let mode_tag = function
  | Full -> 0
  | Partial _ -> 1
  | Field (Imm_fields, _) -> 2
  | Field (All_but_opcode, _) -> 3
  | Field (Control_flow, _) -> 4

let pp_selection fmt = function
  | Select_all -> Format.pp_print_string fmt "all"
  | Select_fraction { fraction; seed } -> Format.fprintf fmt "%.0f%% (seed %Ld)" (100.0 *. fraction) seed
  | Select_ranges rs ->
    Format.fprintf fmt "ranges[%s]"
      (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "0x%x-0x%x" a b) rs))

let pp_mode fmt = function
  | Full -> Format.pp_print_string fmt "full"
  | Partial s -> Format.fprintf fmt "partial(%a)" pp_selection s
  | Field (Imm_fields, s) -> Format.fprintf fmt "field(imm, %a)" pp_selection s
  | Field (All_but_opcode, s) -> Format.fprintf fmt "field(all-but-opcode, %a)" pp_selection s
  | Field (Control_flow, s) -> Format.fprintf fmt "field(control-flow, %a)" pp_selection s

(* Opcode-derived field masks.  The opcode is never part of the mask, so
   the decryptor can re-derive the mask from the ciphertext parcel. *)
let field_mask32 scope word =
  let opcode = Int32.to_int (Int32.logand word 0x7Fl) in
  match scope with
  | All_but_opcode -> 0xFFFFFF80l
  | Imm_fields -> (
    match opcode with
    | 0b0000011 (* loads *) | 0b1100111 (* jalr *) -> Eric_rv.Encode.Field.imm_i
    | 0b0100011 (* stores *) | 0b1100011 (* branches *) -> Eric_rv.Encode.Field.imm_s
    | 0b1101111 (* jal *) | 0b0110111 (* lui *) | 0b0010111 (* auipc *) ->
      Eric_rv.Encode.Field.imm_u
    | _ -> 0l)
  | Control_flow -> (
    (* Branch-offset + call-edge encryption: only the displacement fields
       of control-transfer instructions.  Hides where branches/calls land
       (the structural metadata) while every data instruction ships
       byte-identical to the plain image. *)
    match opcode with
    | 0b1100011 (* branches: B-imm shares the S-type bit region *) ->
      Eric_rv.Encode.Field.imm_s
    | 0b1101111 (* jal: J-imm shares the U-type bit region *) ->
      Eric_rv.Encode.Field.imm_u
    | 0b1100111 (* jalr *) -> Eric_rv.Encode.Field.imm_i
    | _ -> 0l)

let field_mask16 scope parcel =
  match scope with
  | Imm_fields -> 0
  | All_but_opcode -> 0x1FFC (* everything except quadrant [1:0] and funct3 [15:13] *)
  | Control_flow -> (
    (* Compressed control transfers: c.j carries an 11-bit jump
       displacement, c.beqz / c.bnez an 8-bit branch displacement woven
       around the rs1' field (bits [11:10] and [6:2]).  On RV64 the c.jal
       slot is c.addiw, so quadrant 1 / funct3 1 stays plaintext. *)
    let quadrant = parcel land 0x3 in
    let funct3 = (parcel lsr 13) land 0x7 in
    match (quadrant, funct3) with
    | 1, 5 (* c.j *) -> 0x1FFC
    | 1, 6 (* c.beqz *) | 1, 7 (* c.bnez *) -> 0x1C7C
    | _ -> 0)

let selected selection ~index ~offset ~rng =
  match selection with
  | Select_all -> true
  | Select_fraction { fraction; _ } ->
    ignore index;
    Eric_util.Prng.float rng < fraction
  | Select_ranges ranges -> List.exists (fun (lo, hi) -> offset >= lo && offset < hi) ranges

let selection_of_mode = function
  | Full -> Select_all
  | Partial s | Field (_, s) -> s

let selection_bits mode ~parcels ~offsets =
  let n = Array.length parcels in
  if Array.length offsets <> n then invalid_arg "Config.selection_bits: offsets/parcels mismatch";
  let selection = selection_of_mode mode in
  let rng =
    match selection with
    | Select_fraction { seed; _ } -> Eric_util.Prng.create ~seed
    | Select_all | Select_ranges _ -> Eric_util.Prng.create ~seed:0L
  in
  let bits = Eric_util.Bitvec.create n in
  Array.iteri
    (fun i parcel ->
      (* Draw the coin for every parcel so the selection of parcel i does
         not depend on which earlier parcels had maskable fields. *)
      let chosen = selected selection ~index:i ~offset:offsets.(i) ~rng in
      let maskable =
        match mode with
        | Full | Partial _ -> true
        | Field (scope, _) -> (
          match parcel with
          | Eric_rv.Program.P32 w -> field_mask32 scope w <> 0l
          | Eric_rv.Program.P16 p -> field_mask16 scope p <> 0)
      in
      if chosen && maskable then Eric_util.Bitvec.set bits i true)
    parcels;
  bits
