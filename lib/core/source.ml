type build = {
  image : Eric_rv.Program.t;
  package : Package.t;
  stats : Encrypt.stats;
  plain_size : int;
  package_size : int;
}

type prepared = {
  p_image : Eric_rv.Program.t;
  p_plain_size : int;
  p_prep : Encrypt.prepared;
}

let count_build b =
  if Eric_telemetry.Control.is_enabled () then begin
    Eric_telemetry.Registry.inc "build.builds_total";
    Eric_telemetry.Registry.inc ~by:(Int64.of_int b.package_size) "build.package_bytes"
  end;
  b

let package_image ?obf ~mode ~key image =
  let package, stats = Encrypt.encrypt ?obf ~key ~mode image in
  count_build
    {
      image;
      package;
      stats;
      plain_size = Bytes.length (Eric_rv.Program.to_binary image);
      package_size = Package.size package;
    }

let prepare_image ?obf ~mode image =
  {
    p_image = image;
    p_plain_size = Bytes.length (Eric_rv.Program.to_binary image);
    p_prep = Encrypt.prepare ?obf ~mode image;
  }

let personalize ~key prepared =
  let package, stats = Encrypt.personalize ~key prepared.p_prep in
  count_build
    {
      image = prepared.p_image;
      package;
      stats;
      plain_size = prepared.p_plain_size;
      package_size = Package.size package;
    }

let prepare ?options ?obf ~mode source =
  Result.map (prepare_image ?obf ~mode) (Eric_cc.Driver.compile ?options source)

let build ?options ?obf ~mode ~key source =
  Result.map (package_image ?obf ~mode ~key) (Eric_cc.Driver.compile ?options source)

let build_multi ?options ?obf ~mode ~keys source =
  Result.map
    (fun prepared -> List.map (fun (name, key) -> (name, personalize ~key prepared)) keys)
    (prepare ?options ?obf ~mode source)
