type build = {
  image : Eric_rv.Program.t;
  package : Package.t;
  stats : Encrypt.stats;
  plain_size : int;
  package_size : int;
}

let package_image ~mode ~key image =
  let package, stats = Encrypt.encrypt ~key ~mode image in
  let b =
    {
      image;
      package;
      stats;
      plain_size = Bytes.length (Eric_rv.Program.to_binary image);
      package_size = Package.size package;
    }
  in
  if Eric_telemetry.Control.is_enabled () then begin
    Eric_telemetry.Registry.inc "build.builds_total";
    Eric_telemetry.Registry.inc ~by:(Int64.of_int b.package_size) "build.package_bytes"
  end;
  b

let build ?options ~mode ~key source =
  Result.map (package_image ~mode ~key) (Eric_cc.Driver.compile ?options source)

let build_multi ?options ~mode ~keys source =
  Result.map
    (fun image -> List.map (fun (name, key) -> (name, package_image ~mode ~key image)) keys)
    (Eric_cc.Driver.compile ?options source)
