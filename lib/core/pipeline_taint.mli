(** The secret-taint obligation over ERIC's build/personalize pipeline.

    A declared {!Eric_lint.Taint} model of the real dataflow — PUF
    response, KMU derivation, keystream expansion, package layout,
    personalizing XOR, telemetry — proving that KMU-derived key material
    never reaches a plaintext package field ([taint.key.plaintext-field])
    or telemetry output ([taint.key.telemetry]).  Gated in CI in error
    mode: any finding fails the lint. *)

val field_check : string
val telemetry_check : string

val model : Eric_lint.Taint.spec
(** The faithful model; see the implementation for the value-by-value
    correspondence with [Kmu]/[Encrypt]/[Package]. *)

val check : unit -> Eric_lint.Taint.result

val lint : unit -> Eric_lint.Taint.result * Eric_lint.Diag.t list
(** [check] plus error diagnostics for every tainted sink. *)

val defective_model : Eric_lint.Taint.spec
(** [model] with a seeded defect (derived key copied into the package
    header); must produce a [taint.key.plaintext-field] error.  Used by
    tests and docs to demonstrate the obligation has teeth. *)
