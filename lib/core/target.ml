type t = {
  device_ : Eric_puf.Device.t;
  context : Kmu.context;
  hde : Eric_hw.Hde.config;
  key : bytes;  (** cached derived key; the silicon recomputes it at boot *)
}

let create ?(context = Kmu.default_context) ?(hde = Eric_hw.Hde.default_config) device_ =
  { device_; context; hde; key = Kmu.device_key ~context device_ }

let of_id ?context ?hde id = create ?context ?hde (Eric_puf.Device.manufacture id)

let device t = t.device_
let derived_key t = t.key

type load_error = Malformed of string | Rejected of Encrypt.error

let pp_load_error fmt = function
  | Malformed msg -> Format.fprintf fmt "malformed package: %s" msg
  | Rejected e -> Format.fprintf fmt "validation failed: %a" Encrypt.pp_error e

type loaded = {
  image : Eric_rv.Program.t;
  stats : Encrypt.stats;
  load : Eric_hw.Hde.breakdown;
}

let refusal_reason = function
  | Malformed _ -> "malformed"
  | Rejected (Encrypt.Framing_failure _) -> "framing"
  | Rejected Encrypt.Signature_mismatch -> "signature"

let count_refusal e =
  if Eric_telemetry.Control.is_enabled () then
    Eric_telemetry.Registry.inc ~labels:[ ("reason", refusal_reason e) ] "ingest.refused_total"

let receive t pkg =
  Eric_telemetry.Span.with_ ~cat:"core" ~name:"ingest.receive" (fun () ->
      if Eric_telemetry.Control.is_enabled () then
        Eric_telemetry.Registry.inc ~by:(Int64.of_int (Package.size pkg)) "ingest.bytes_in";
      match Encrypt.decrypt ~key:t.key pkg with
      | Error e ->
        let e = Rejected e in
        count_refusal e;
        Error e
      | Ok (image, stats) ->
        let image_bytes = Package.size pkg in
        let hashed_bytes =
          Bytes.length (Package.authenticated_header pkg)
          + Bytes.length pkg.Package.enc_text + Bytes.length pkg.Package.data
        in
        (* The travelling signature needs keystream too. *)
        let encrypted_bytes = stats.Encrypt.encrypted_bytes + Siggen.signature_size in
        let load = Eric_hw.Hde.load_encrypted t.hde ~image_bytes ~hashed_bytes ~encrypted_bytes in
        Ok { image; stats; load })

let receive_bytes t bytes =
  match Package.parse bytes with
  | Error msg ->
    let e = Malformed msg in
    count_refusal e;
    Error e
  | Ok pkg -> receive t pkg

let execute ?timing ?fuel t pkg =
  match receive t pkg with
  | Error e -> Error e
  | Ok { image; load; _ } ->
    let memory = Eric_sim.Soc.load image in
    Ok
      (Eric_sim.Soc.run_loaded ?timing ?fuel ~load_cycles:load.Eric_hw.Hde.total_cycles image
         memory)
