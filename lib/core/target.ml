type health = Healthy | Integrity_faulted of string

type t = {
  device_ : Eric_puf.Device.t;
  context : Kmu.context;
  hde : Eric_hw.Hde.config;
  key : (bytes, Eric_puf.Fuzzy.failure) result;
      (** cached boot outcome; the silicon recomputes it at boot.  The
          plain [create] path always lands in [Ok]; helper-data boots can
          land in [Error], and such a target refuses every load. *)
  mutable health : health;
      (** outcome of the last execution: a device whose integrity guard
          fired stays [Integrity_faulted] until something runs clean on
          it again (re-shipping the image is the recovery path) *)
}

let create ?(context = Kmu.default_context) ?(hde = Eric_hw.Hde.default_config) device_ =
  { device_; context; hde; key = Ok (Kmu.device_key ~context device_); health = Healthy }

let of_id ?context ?hde id = create ?context ?hde (Eric_puf.Device.manufacture id)

let create_with_helper ?(context = Kmu.default_context)
    ?(hde = Eric_hw.Hde.default_config) ?(fuzzy = Eric_puf.Fuzzy.default_config)
    ?env device_ helper =
  let votes = if fuzzy.Eric_puf.Fuzzy.votes mod 2 = 0 then fuzzy.votes + 1 else fuzzy.votes in
  let reads =
    Eric_puf.Enroll.kept_chains helper * helper.Eric_puf.Enroll.rep * votes
  in
  match Eric_puf.Fuzzy.reconstruct ~config:fuzzy ?env device_ helper with
  | Ok r ->
    (* Fuzzy boot replaces the majority-vote challenge sequencing in the
       key-setup budget; the SHA block for derivation stays. *)
    let setup =
      Eric_hw.Hde.reconstruction_cycles hde ~reads ~attempts:r.Eric_puf.Fuzzy.attempts_used
      + hde.Eric_hw.Hde.sha_block_cycles
    in
    let hde = { hde with Eric_hw.Hde.key_setup_cycles = setup } in
    {
      device_;
      context;
      hde;
      key = Ok (Kmu.derive ~puf_key:r.Eric_puf.Fuzzy.key context);
      health = Healthy;
    }
  | Error f -> { device_; context; hde; key = Error f; health = Healthy }

let device t = t.device_
let key_state t = t.key
let health t = t.health
let hde_config t = t.hde

let derived_key t =
  match t.key with
  | Ok key -> key
  | Error f ->
    invalid_arg
      (Printf.sprintf "Target.derived_key: no key (%s)"
         (Eric_puf.Fuzzy.failure_to_string f))

type load_error =
  | Malformed of string
  | Rejected of Encrypt.error
  | Key_unavailable of Eric_puf.Fuzzy.failure

let pp_load_error fmt = function
  | Malformed msg -> Format.fprintf fmt "malformed package: %s" msg
  | Rejected e -> Format.fprintf fmt "validation failed: %a" Encrypt.pp_error e
  | Key_unavailable f ->
    Format.fprintf fmt "key unavailable: %a" Eric_puf.Fuzzy.pp_failure f

type loaded = {
  image : Eric_rv.Program.t;
  stats : Encrypt.stats;
  load : Eric_hw.Hde.breakdown;
}

let refusal_reason = function
  | Malformed _ -> "malformed"
  | Rejected (Encrypt.Framing_failure _) -> "framing"
  | Rejected Encrypt.Signature_mismatch -> "signature"
  | Key_unavailable _ -> "key-reconstruction"

let count_refusal e =
  if Eric_telemetry.Control.is_enabled () then
    Eric_telemetry.Registry.inc ~labels:[ ("reason", refusal_reason e) ] "ingest.refused_total"

let receive t pkg =
  Eric_telemetry.Span.with_ ~cat:"core" ~name:"ingest.receive" (fun () ->
      if Eric_telemetry.Control.is_enabled () then
        Eric_telemetry.Registry.inc ~by:(Int64.of_int (Package.size pkg)) "ingest.bytes_in";
      match t.key with
      | Error f ->
        (* No key, no decrypt: the HDE refuses outright rather than ever
           running the validation path with a guessed key. *)
        let e = Key_unavailable f in
        count_refusal e;
        Error e
      | Ok key ->
      match Encrypt.decrypt ~key pkg with
      | Error e ->
        let e = Rejected e in
        count_refusal e;
        Error e
      | Ok (image, stats) ->
        let image_bytes = Package.size pkg in
        let hashed_bytes =
          Bytes.length (Package.authenticated_header pkg)
          + Bytes.length pkg.Package.enc_text + Bytes.length pkg.Package.data
        in
        (* The travelling signature needs keystream too. *)
        let encrypted_bytes = stats.Encrypt.encrypted_bytes + Siggen.signature_size in
        let load = Eric_hw.Hde.load_encrypted t.hde ~image_bytes ~hashed_bytes ~encrypted_bytes in
        Ok { image; stats; load })

let receive_bytes t bytes =
  match Package.parse bytes with
  | Error msg ->
    let e = Malformed msg in
    count_refusal e;
    Error e
  | Ok pkg -> receive t pkg

let run ?timing ?fuel ?corrupt t { image; load; _ } =
  let memory = Eric_sim.Soc.load image in
  (match corrupt with None -> () | Some f -> f memory image);
  let result =
    Eric_sim.Soc.run_loaded ?timing ?fuel ~guard:t.hde.Eric_hw.Hde.guard
      ~load_cycles:load.Eric_hw.Hde.total_cycles image memory
  in
  (t.health <-
     (match result.Eric_sim.Soc.status with
     | Eric_sim.Cpu.Integrity_fault msg -> Integrity_faulted msg
     | _ -> Healthy));
  result

let execute ?timing ?fuel t pkg =
  match receive t pkg with
  | Error e -> Error e
  | Ok loaded -> Ok (run ?timing ?fuel t loaded)
