type mode_kind = M_full | M_partial | M_field of Config.field_scope

let kind_of_mode : Config.mode -> mode_kind = function
  | Config.Full -> M_full
  | Config.Partial _ -> M_partial
  | Config.Field (scope, _) -> M_field scope

let tag_of_kind = function
  | M_full -> 0
  | M_partial -> 1
  | M_field Config.Imm_fields -> 2
  | M_field Config.All_but_opcode -> 3
  | M_field Config.Control_flow -> 4

let kind_of_tag = function
  | 0 -> Ok M_full
  | 1 -> Ok M_partial
  | 2 -> Ok (M_field Config.Imm_fields)
  | 3 -> Ok (M_field Config.All_but_opcode)
  | 4 -> Ok (M_field Config.Control_flow)
  | t -> Error (Printf.sprintf "unknown mode tag %d" t)

type t = {
  kind : mode_kind;
  entry_offset : int;
  bss_size : int;
  parcel_count : int;
  map : Eric_util.Bitvec.t option;
  obf : (int * int64) option;
  enc_text : bytes;
  data : bytes;
  enc_signature : bytes;
}

let magic = "EPKG"
let version = 1
let header_size = 32

(* Flags byte (offset 7).  Bit 0 = obfuscation metadata block present;
   bits 1-7 remain reserved-must-be-zero. *)
let flag_obf = 0x01

(* Low 5 bits of the pass mask are assigned (lib/obf owns the name <->
   bit mapping); 5-7 are reserved. *)
let obf_pass_bits = 0x1F
let obf_block_size = 9

let map_bytes t = match t.map with None -> Bytes.empty | Some m -> Eric_util.Bitvec.to_bytes m

let obf_bytes t =
  match t.obf with
  | None -> Bytes.empty
  | Some (mask, seed) ->
    let b = Bytes.create obf_block_size in
    Bytes.set b 0 (Char.chr (mask land 0xFF));
    Eric_util.Bytesx.set_u64 b 1 seed;
    b

let size t =
  header_size + Bytes.length (map_bytes t) + Bytes.length (obf_bytes t)
  + Bytes.length t.enc_text + Bytes.length t.data + Siggen.signature_size

let header_bytes t =
  let h = Bytes.create header_size in
  Bytes.blit_string magic 0 h 0 4;
  Eric_util.Bytesx.set_u16 h 4 version;
  Bytes.set h 6 (Char.chr (tag_of_kind t.kind));
  Bytes.set h 7 (Char.chr (match t.obf with None -> 0 | Some _ -> flag_obf));
  Eric_util.Bytesx.set_u32 h 8 (Int32.of_int t.entry_offset);
  Eric_util.Bytesx.set_u32 h 12 (Int32.of_int (Bytes.length t.enc_text));
  Eric_util.Bytesx.set_u32 h 16 (Int32.of_int (Bytes.length t.data));
  Eric_util.Bytesx.set_u32 h 20 (Int32.of_int t.bss_size);
  Eric_util.Bytesx.set_u32 h 24 (Int32.of_int t.parcel_count);
  Eric_util.Bytesx.set_u32 h 28 (Int32.of_int (Bytes.length (map_bytes t)));
  h

let authenticated_header t =
  Eric_util.Bytesx.concat [ header_bytes t; map_bytes t; obf_bytes t ]

let serialize t =
  Eric_util.Bytesx.concat
    [ header_bytes t; map_bytes t; obf_bytes t; t.enc_text; t.data; t.enc_signature ]

let parse b =
  let ( let* ) = Result.bind in
  let* () = if Bytes.length b >= header_size then Ok () else Error "package too short" in
  let* () = if Bytes.sub_string b 0 4 = magic then Ok () else Error "bad magic (not an EPKG)" in
  let* () =
    if Eric_util.Bytesx.get_u16 b 4 = version then Ok () else Error "unsupported package version"
  in
  let* kind = kind_of_tag (Char.code (Bytes.get b 6)) in
  (* Strict parsing: bytes the decoder would otherwise ignore (reserved
     flags, map padding bits) must be zero, so that every wire bit is
     either interpreted or rejected — a flipped "don't care" bit cannot
     silently pass validation. *)
  let flags = Char.code (Bytes.get b 7) in
  let* () = if flags land lnot flag_obf = 0 then Ok () else Error "reserved flags set" in
  let has_obf = flags land flag_obf <> 0 in
  let obf_len = if has_obf then obf_block_size else 0 in
  let entry_offset = Int32.to_int (Eric_util.Bytesx.get_u32 b 8) in
  let text_len = Int32.to_int (Eric_util.Bytesx.get_u32 b 12) in
  let data_len = Int32.to_int (Eric_util.Bytesx.get_u32 b 16) in
  let bss_size = Int32.to_int (Eric_util.Bytesx.get_u32 b 20) in
  let parcel_count = Int32.to_int (Eric_util.Bytesx.get_u32 b 24) in
  let map_len = Int32.to_int (Eric_util.Bytesx.get_u32 b 28) in
  let* () =
    if text_len >= 0 && data_len >= 0 && bss_size >= 0 && parcel_count >= 0 && map_len >= 0 then
      Ok ()
    else Error "negative section length"
  in
  let expected = header_size + map_len + obf_len + text_len + data_len + Siggen.signature_size in
  let* () =
    if Bytes.length b = expected then Ok ()
    else Error (Printf.sprintf "package length %d does not match header (%d)" (Bytes.length b) expected)
  in
  (* Parcels are 2 or 4 bytes, so a consistent header has
     2*parcel_count <= text_len <= 4*parcel_count.  An attacker shrinking
     or growing one of the two fields must be caught here, before any
     keystream or signature work happens. *)
  let* () =
    if text_len >= 2 * parcel_count && text_len <= 4 * parcel_count then Ok ()
    else Error "parcel count inconsistent with text length"
  in
  let* map =
    match kind with
    | M_full -> if map_len = 0 then Ok None else Error "full-encryption package carries a map"
    | M_partial | M_field _ ->
      let exact = (parcel_count + 7) / 8 in
      if map_len < exact then Error "encryption map shorter than parcel count"
      else if map_len > exact then Error "encryption map longer than parcel count"
      else begin
        let raw = Bytes.sub b header_size map_len in
        let map = Eric_util.Bitvec.of_bytes ~len:parcel_count raw in
        if not (Bytes.equal (Eric_util.Bitvec.to_bytes map) raw) then
          Error "encryption map has padding bits set"
        else Ok (Some map)
      end
  in
  let* obf =
    if not has_obf then Ok None
    else begin
      let mask = Char.code (Bytes.get b (header_size + map_len)) in
      if mask land lnot obf_pass_bits <> 0 then Error "reserved obfuscation pass bits set"
      else if mask = 0 then Error "obfuscation metadata without passes"
      else Ok (Some (mask, Eric_util.Bytesx.get_u64 b (header_size + map_len + 1)))
    end
  in
  let off = header_size + map_len + obf_len in
  let* () =
    if entry_offset >= 0 && entry_offset <= text_len then Ok () else Error "entry out of range"
  in
  let* () =
    if entry_offset land 1 = 0 then Ok () else Error "entry not parcel-aligned"
  in
  let* () =
    if entry_offset = text_len && text_len > 0 then Error "entry out of range" else Ok ()
  in
  Ok
    {
      kind;
      entry_offset;
      bss_size;
      parcel_count;
      map;
      obf;
      enc_text = Bytes.sub b off text_len;
      data = Bytes.sub b (off + text_len) data_len;
      enc_signature = Bytes.sub b (off + text_len + data_len) Siggen.signature_size;
    }

let pp_kind fmt = function
  | M_full -> Format.pp_print_string fmt "full"
  | M_partial -> Format.pp_print_string fmt "partial"
  | M_field Config.Imm_fields -> Format.pp_print_string fmt "field(imm)"
  | M_field Config.All_but_opcode -> Format.pp_print_string fmt "field(all-but-opcode)"
  | M_field Config.Control_flow -> Format.pp_print_string fmt "field(control-flow)"

let pp_summary fmt t =
  Format.fprintf fmt "%a package: %d B total (text %d B, %d parcels, map %d B, data %d B)" pp_kind
    t.kind (size t) (Bytes.length t.enc_text) t.parcel_count
    (Bytes.length (map_bytes t))
    (Bytes.length t.data);
  match t.obf with
  | None -> ()
  | Some (mask, seed) ->
    Format.fprintf fmt ", obfuscated (pass mask 0x%02x, seed 0x%Lx)" mask seed
