(* Bechamel micro-benchmarks: the primitive operations behind each table
   and figure.  One Test.make per experiment family:
   - Table II's units: SHA-256 core, keystream, XOR cipher, PUF response;
   - Fig 5/6's compiler path: full compilation and encrypting build;
   - Fig 7's load path: package decrypt+validate and SoC execution. *)

open Bechamel
open Toolkit

let buf_4k = Bytes.init 4096 (fun i -> Char.chr (i land 0xFF))
let key = Bytes.of_string "0123456789abcdef0123456789abcdef"

let quick_source = (List.nth Eric_workloads.Workloads.all 4).Eric_workloads.Workloads.source
(* crc32 *)

let quick_image = lazy (Eric_cc.Driver.compile_exn quick_source)

let quick_package =
  lazy (fst (Eric.Encrypt.encrypt ~key ~mode:Eric.Config.Full (Lazy.force quick_image)))

let puf_device = lazy (Eric_puf.Device.manufacture 99L)

let word = Eric_rv.Encode.encode (Eric_rv.Inst.I (Addi, Eric_rv.Reg.a 0, Eric_rv.Reg.a 1, 42))

let tests =
  Test.make_grouped ~name:"eric"
    [ Test.make ~name:"sha256-4KiB" (Staged.stage (fun () -> Eric_crypto.Sha256.digest buf_4k));
      Test.make ~name:"keystream-4KiB"
        (Staged.stage (fun () ->
             Eric_crypto.Keystream.take (Eric_crypto.Keystream.create ~key) 4096));
      Test.make ~name:"xor-cipher-4KiB"
        (Staged.stage (fun () -> Eric_crypto.Xor_cipher.apply_bytes ~key buf_4k));
      Test.make ~name:"hmac-derive" (Staged.stage (fun () ->
          Eric.Kmu.derive ~puf_key:key Eric.Kmu.default_context));
      Test.make ~name:"decode-word" (Staged.stage (fun () -> Eric_rv.Decode.decode word));
      Test.make ~name:"rvc-expand" (Staged.stage (fun () -> Eric_rv.Rvc.expand 0x4505));
      Test.make ~name:"puf-response"
        (Staged.stage (fun () ->
             let d = Lazy.force puf_device in
             Eric_puf.Device.respond d (Eric_puf.Device.challenge_set d)));
      Test.make ~name:"compile-crc32"
        (Staged.stage (fun () ->
             match Eric_cc.Driver.compile quick_source with
             | Ok _ -> ()
             | Error e -> failwith e));
      Test.make ~name:"eric-build-crc32"
        (Staged.stage (fun () ->
             match Eric.Source.build ~mode:Eric.Config.Full ~key quick_source with
             | Ok _ -> ()
             | Error e -> failwith e));
      Test.make ~name:"package-decrypt-validate"
        (Staged.stage (fun () ->
             match Eric.Encrypt.decrypt ~key (Lazy.force quick_package) with
             | Ok _ -> ()
             | Error _ -> failwith "decrypt failed"));
      (* The telemetry no-op guarantee: with recording disabled, an
         instrumentation site must cost one branch over the bare call.
         Compare these three rows (all should be within noise of each
         other and a handful of ns). *)
      Test.make ~name:"telemetry-off-baseline" (Staged.stage (fun () -> Sys.opaque_identity ()));
      Test.make ~name:"telemetry-off-span"
        (Staged.stage (fun () ->
             Eric_telemetry.Span.with_ ~name:"noop" (fun () -> Sys.opaque_identity ())));
      Test.make ~name:"telemetry-off-counter"
        (Staged.stage (fun () -> Eric_telemetry.Registry.inc "noop")) ]

let run () =
  Report.heading "Microbenchmarks (bechamel, monotonic clock, ns/run)";
  assert (not (Eric_telemetry.Control.is_enabled ()));
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns, ns_value =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> (Printf.sprintf "%.1f" est, Some est)
        | Some [] | None -> ("n/a", None)
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "n/a"
      in
      (match ns_value with
      | Some est -> Report.record ~suite:"micro" ~metric:name ~unit_:"ns/run" est
      | None -> ());
      rows := [ name; ns; r2 ] :: !rows)
    results;
  Report.table ~header:[ "benchmark"; "ns/run"; "r^2" ]
    (List.sort compare !rows)
