(* The paper's evaluation, regenerated: Table I (environment), Table II
   (FPGA area), Fig 5 (package size), Fig 6 (compile time), Fig 7
   (end-to-end execution time), plus ablations beyond the paper. *)

let device_id = 0xE51CL

let target = lazy (Eric.Target.of_id device_id)
let device_key () = Eric.Target.derived_key (Lazy.force target)

let compile_suite pick =
  List.map
    (fun (w : Eric_workloads.Workloads.t) ->
      match Eric_cc.Driver.compile (pick w) with
      | Ok image -> (w, image)
      | Error e -> failwith (w.name ^ ": " ^ e))
    Eric_workloads.Workloads.all

let compiled = lazy (compile_suite (fun w -> w.Eric_workloads.Workloads.source))

(* MiBench-style "small" datasets: short enough runs that load-time costs
   are visible, as on the paper's 25 MHz FPGA. *)
let compiled_small = lazy (compile_suite (fun w -> w.Eric_workloads.Workloads.source_small))

let partial_mode = Eric.Config.Partial (Eric.Config.Select_fraction { fraction = 0.5; seed = 0xF16L })

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  Report.heading "Table I: Test environment (simulated counterparts of the paper's setup)";
  let cache = Eric_sim.Cache.table1_config in
  let puf = Eric_puf.Arbiter.default_params in
  let hde = Eric_hw.Hde.default_config in
  Report.table
    ~header:[ "Parameter"; "Value" ]
    [ [ "Platform"; "cycle-approximate SoC model (stands in for Xilinx Zedboard)" ];
      [ "PUF Type"; "Arbiter PUF (Monte-Carlo delay model)" ];
      [ "PUF Parameters";
        Printf.sprintf "32x %d-bit challenge 1-bit response" puf.Eric_puf.Arbiter.stages ];
      [ "Signature Function"; "SHA-256" ];
      [ "Encryption Function"; "XOR cipher (SHA-256-CTR keystream)" ];
      [ "SoC"; "Rocket-class in-order 6-stage model" ];
      [ "Target ISA"; "RV64IM + C subset" ];
      [ "L1 Data Cache";
        Printf.sprintf "%dKiB, %d-way, set-associative" (cache.Eric_sim.Cache.size_bytes / 1024)
          cache.Eric_sim.Cache.ways ];
      [ "L1 Instruction Cache";
        Printf.sprintf "%dKiB, %d-way, set-associative" (cache.Eric_sim.Cache.size_bytes / 1024)
          cache.Eric_sim.Cache.ways ];
      [ "Register File"; "31 entries, 64-bit (x0 hardwired)" ];
      [ "HDE DMA"; Printf.sprintf "%d B/cycle" hde.Eric_hw.Hde.dma_bytes_per_cycle ];
      [ "HDE SHA-256 core"; Printf.sprintf "%d cycles / 64-byte block" hde.Eric_hw.Hde.sha_block_cycles ];
      [ "HDE keystream"; Printf.sprintf "%d cycles / 32-byte block" hde.Eric_hw.Hde.keystream_block_cycles ] ]

(* ------------------------------------------------------------------ *)
(* Table II                                                            *)
(* ------------------------------------------------------------------ *)

let table2 () =
  Report.heading "Table II: Area results of FPGA implementation (structural cost model)";
  Format.printf "%a" Eric_hw.Area.pp_table2 ();
  Report.subheading "HDE component breakdown";
  Format.printf "%a" Eric_hw.Rtl.pp Eric_hw.Area.hde;
  print_endline "paper: +2.63% LUTs, +3.83% flip-flops"

(* ------------------------------------------------------------------ *)
(* Fig 5: program package size                                         *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  Report.heading
    "Fig 5: Program package size of encrypted packages, normalised to the plain binary";
  let key = device_key () in
  let rows, stats =
    List.fold_left
      (fun (rows, (full_acc, part_acc)) ((w : Eric_workloads.Workloads.t), image) ->
        let plain = Bytes.length (Eric_rv.Program.to_binary image) in
        let full = Eric.Source.package_image ~mode:Eric.Config.Full ~key image in
        let partial = Eric.Source.package_image ~mode:partial_mode ~key image in
        let fpct = Report.pct (full.Eric.Source.package_size - plain) plain in
        let ppct = Report.pct (partial.Eric.Source.package_size - plain) plain in
        ( rows
          @ [ [ w.name; Report.i plain; Report.i full.Eric.Source.package_size; Report.fpct fpct;
                Report.i partial.Eric.Source.package_size; Report.fpct ppct ] ],
          (fpct :: full_acc, ppct :: part_acc) ))
      ([], ([], []))
      (Lazy.force compiled)
  in
  Report.table
    ~header:[ "workload"; "plain B"; "full pkg B"; "full +%"; "partial pkg B"; "partial +%" ]
    rows;
  let full_pcts, part_pcts = stats in
  let avg xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  let mx xs = List.fold_left max 0.0 xs in
  Printf.printf
    "\nfull encryption: avg %+.2f%%, max %+.2f%%   (paper: avg +1.59%%, max +3.73%%)\n"
    (avg full_pcts) (mx full_pcts);
  Printf.printf "partial (50%%): avg %+.2f%%, max %+.2f%% (adds 1 map bit per parcel)\n"
    (avg part_pcts) (mx part_pcts);
  Report.record ~suite:"fig5" ~metric:"full_size_avg" ~unit_:"%" (avg full_pcts);
  Report.record ~suite:"fig5" ~metric:"full_size_max" ~unit_:"%" (mx full_pcts);
  Report.record ~suite:"fig5" ~metric:"partial_size_avg" ~unit_:"%" (avg part_pcts);
  Report.record ~suite:"fig5" ~metric:"partial_size_max" ~unit_:"%" (mx part_pcts)

(* ------------------------------------------------------------------ *)
(* Fig 6: compile time                                                 *)
(* ------------------------------------------------------------------ *)

let median times =
  let sorted = List.sort compare times in
  List.nth sorted (List.length sorted / 2)

(* Compare two functions by interleaving their samples (so slow machine
   phases hit both alike) and taking each one's fastest sample — the
   classic minimum-timing estimator, robust to additive noise.  Each
   sample averages [batch] consecutive runs. *)
let measure_pair ?(samples = 13) ?(batch = 5) f g =
  f ();
  g ();
  (* warmup *)
  let sample h =
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batch do
      h ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int batch
  in
  let best_f = ref infinity and best_g = ref infinity in
  for _ = 1 to samples do
    best_f := min !best_f (sample f);
    best_g := min !best_g (sample g)
  done;
  (!best_f, !best_g)

let fig6 () =
  Report.heading
    "Fig 6: Compile time of ERIC's encrypting compilation, normalised to plain compilation";
  let key = device_key () in
  let rows, pcts =
    List.fold_left
      (fun (rows, pcts) (w : Eric_workloads.Workloads.t) ->
        let baseline, encrypting =
          measure_pair
            (fun () ->
              match Eric_cc.Driver.compile w.source with Ok _ -> () | Error e -> failwith e)
            (fun () ->
              match Eric.Source.build ~mode:Eric.Config.Full ~key w.source with
              | Ok _ -> ()
              | Error e -> failwith e)
        in
        let pct = 100.0 *. ((encrypting /. baseline) -. 1.0) in
        ( rows
          @ [ [ w.name; Printf.sprintf "%.2f" (baseline *. 1e3);
                Printf.sprintf "%.2f" (encrypting *. 1e3); Report.fpct pct ] ],
          pct :: pcts ))
      ([], []) Eric_workloads.Workloads.all
  in
  Report.table ~header:[ "workload"; "plain ms"; "eric ms"; "overhead" ] rows;
  let avg = List.fold_left ( +. ) 0.0 pcts /. float_of_int (List.length pcts) in
  let worst = List.fold_left max neg_infinity pcts in
  Printf.printf "\naverage %+.2f%%, worst %+.2f%%   (paper: avg +15.22%%, worst +33.20%%)\n" avg worst;
  Report.record ~suite:"fig6" ~metric:"compile_overhead_avg" ~unit_:"%" avg;
  Report.record ~suite:"fig6" ~metric:"compile_overhead_worst" ~unit_:"%" worst

(* ------------------------------------------------------------------ *)
(* Fig 7: end-to-end execution time                                    *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  Report.heading
    "Fig 7: End-to-end execution time (load + run) of encrypted packages, normalised to plain";
  print_endline "(MiBench-style small datasets; full encryption; serialised single-SHA HDE)";
  let t = Lazy.force target in
  let key = device_key () in
  let rows, pcts =
    List.fold_left
      (fun (rows, pcts) ((w : Eric_workloads.Workloads.t), image) ->
        let plain = Eric_sim.Soc.run_program image in
        let build = Eric.Source.package_image ~mode:Eric.Config.Full ~key image in
        match Eric.Target.execute t build.Eric.Source.package with
        | Error e -> failwith (Format.asprintf "%s: %a" w.name Eric.Target.pp_load_error e)
        | Ok enc ->
          (match (plain.Eric_sim.Soc.status, enc.Eric_sim.Soc.status) with
          | Eric_sim.Cpu.Exited 0, Eric_sim.Cpu.Exited 0 -> ()
          | _ -> failwith (w.name ^ ": unexpected exit status"));
          if plain.Eric_sim.Soc.output <> enc.Eric_sim.Soc.output then
            failwith (w.name ^ ": encrypted run diverged");
          let pt = Eric_sim.Soc.total_cycles plain and et = Eric_sim.Soc.total_cycles enc in
          let pct = Report.pct64 (Int64.sub et pt) pt in
          ( rows
            @ [ [ w.name; Report.i64 plain.Eric_sim.Soc.load_cycles;
                  Report.i64 enc.Eric_sim.Soc.load_cycles; Report.i64 plain.Eric_sim.Soc.exec_cycles;
                  Report.i64 et; Report.fpct pct ] ],
            pct :: pcts ))
      ([], []) (Lazy.force compiled_small)
  in
  Report.table
    ~header:[ "workload"; "plain load"; "hde load"; "exec cyc"; "eric total"; "overhead" ]
    rows;
  let avg = List.fold_left ( +. ) 0.0 pcts /. float_of_int (List.length pcts) in
  let mx = List.fold_left max neg_infinity pcts in
  Printf.printf "\naverage %+.2f%%, max %+.2f%%   (paper: avg +4.13%%, max +7.05%%)\n" avg mx;
  Report.record ~suite:"fig7" ~metric:"e2e_overhead_avg" ~unit_:"%" avg;
  Report.record ~suite:"fig7" ~metric:"e2e_overhead_max" ~unit_:"%" mx;
  (* companion: large datasets, where the one-off load cost amortises away
     (the flip side of the paper's size/run-length proportionality) *)
  let t = Lazy.force target in
  let large_pcts =
    List.map
      (fun ((w : Eric_workloads.Workloads.t), image) ->
        let plain = Eric_sim.Soc.run_program image in
        let b = Eric.Source.package_image ~mode:Eric.Config.Full ~key image in
        match Eric.Target.execute t b.Eric.Source.package with
        | Error e -> failwith (Format.asprintf "%s: %a" w.name Eric.Target.pp_load_error e)
        | Ok enc ->
          Report.pct64
            (Int64.sub (Eric_sim.Soc.total_cycles enc) (Eric_sim.Soc.total_cycles plain))
            (Eric_sim.Soc.total_cycles plain))
      (Lazy.force compiled)
  in
  let large_avg = List.fold_left ( +. ) 0.0 large_pcts /. float_of_int (List.length large_pcts) in
  let large_max = List.fold_left max neg_infinity large_pcts in
  Printf.printf "large datasets: avg %+.3f%%, max %+.3f%% (load cost amortised)\n" large_avg
    large_max;
  Report.record ~suite:"fig7" ~metric:"e2e_overhead_large_avg" ~unit_:"%" large_avg;
  Report.record ~suite:"fig7" ~metric:"e2e_overhead_large_max" ~unit_:"%" large_max

(* ------------------------------------------------------------------ *)
(* Ablations (beyond the paper's figures)                              *)
(* ------------------------------------------------------------------ *)

let ablation_puf () =
  Report.subheading "PUF quality (32 devices, standard metrics)";
  let r = Eric_puf.Metrics.evaluate ~devices:16 ~challenges_per_device:64 ~reeval:12 ~seed:7L () in
  Format.printf "%a@." Eric_puf.Metrics.pp_report r

let ablation_static_analysis () =
  Report.subheading "Static-analysis resistance per encryption mode (workload: crc32)";
  let _, image = List.nth (Lazy.force compiled) 4 in
  let key = device_key () in
  let plain_text = Eric_rv.Program.text_bytes image in
  let row name text =
    let r = Eric.Analysis.static_analysis text in
    [ name; Printf.sprintf "%.1f%%" (100.0 *. r.Eric.Analysis.valid_fraction);
      Report.f1 r.Eric.Analysis.opcode_entropy_bits; Report.i r.Eric.Analysis.call_edges;
      Report.i r.Eric.Analysis.branch_sites; Report.i r.Eric.Analysis.prologue_candidates;
      Printf.sprintf "%.2f" (Eric.Analysis.byte_entropy text) ]
  in
  let enc mode = (fst (Eric.Encrypt.encrypt ~key ~mode image)).Eric.Package.enc_text in
  Report.table
    ~header:[ "text section"; "decodes"; "opc entropy"; "calls"; "branches"; "prologues"; "byte entropy" ]
    [ row "plaintext" plain_text;
      row "full" (enc Eric.Config.Full);
      row "partial 50%" (enc partial_mode);
      row "field imm" (enc (Eric.Config.Field (Eric.Config.Imm_fields, Eric.Config.Select_all)));
      row "field all-but-opcode"
        (enc (Eric.Config.Field (Eric.Config.All_but_opcode, Eric.Config.Select_all))) ]

let ablation_fraction_sweep () =
  Report.subheading "Partial-encryption fraction sweep (workload: sha)";
  let _, image = List.nth (Lazy.force compiled_small) 6 in
  let t = Lazy.force target in
  let key = device_key () in
  let plain = Eric_sim.Soc.run_program image in
  let rows =
    List.map
      (fun fraction ->
        let mode =
          if fraction >= 1.0 then Eric.Config.Partial Eric.Config.Select_all
          else Eric.Config.Partial (Eric.Config.Select_fraction { fraction; seed = 33L })
        in
        let b = Eric.Source.package_image ~mode ~key image in
        match Eric.Target.execute t b.Eric.Source.package with
        | Error e -> failwith (Format.asprintf "%a" Eric.Target.pp_load_error e)
        | Ok enc ->
          let overhead =
            Report.pct64
              (Int64.sub (Eric_sim.Soc.total_cycles enc) (Eric_sim.Soc.total_cycles plain))
              (Eric_sim.Soc.total_cycles plain)
          in
          let r = Eric.Analysis.static_analysis b.Eric.Source.package.Eric.Package.enc_text in
          [ Printf.sprintf "%.0f%%" (100.0 *. fraction);
            Report.i b.Eric.Source.stats.Eric.Encrypt.encrypted_parcels;
            Report.i b.Eric.Source.package_size; Report.i64 enc.Eric_sim.Soc.load_cycles;
            Report.fpct overhead;
            Printf.sprintf "%.1f%%" (100.0 *. r.Eric.Analysis.valid_fraction) ])
      [ 0.0; 0.1; 0.25; 0.5; 0.75; 1.0 ]
  in
  Report.table
    ~header:[ "fraction"; "enc parcels"; "pkg B"; "hde load cyc"; "e2e overhead"; "decodes" ]
    rows

let ablation_hde_throughput () =
  Report.subheading "HDE keystream-core throughput sensitivity (workload: dijkstra/small, full encryption)";
  let _, image = List.nth (Lazy.force compiled_small) 3 in
  let key = device_key () in
  let build = Eric.Source.package_image ~mode:Eric.Config.Full ~key image in
  let plain = Eric_sim.Soc.run_program image in
  let rows =
    List.map
      (fun keystream_block_cycles ->
        let hde = { Eric_hw.Hde.default_config with Eric_hw.Hde.keystream_block_cycles } in
        let t = Eric.Target.of_id ~hde device_id in
        match Eric.Target.execute t build.Eric.Source.package with
        | Error e -> failwith (Format.asprintf "%a" Eric.Target.pp_load_error e)
        | Ok enc ->
          let overhead =
            Report.pct64
              (Int64.sub (Eric_sim.Soc.total_cycles enc) (Eric_sim.Soc.total_cycles plain))
              (Eric_sim.Soc.total_cycles plain)
          in
          [ Printf.sprintf "%d cyc/32B" keystream_block_cycles;
            Report.i64 enc.Eric_sim.Soc.load_cycles; Report.fpct overhead ])
      [ 16; 32; 65; 130; 260 ]
  in
  Report.table ~header:[ "keystream core"; "hde load cyc"; "e2e overhead" ] rows

let ablation_soft_errors () =
  Report.subheading "Soft-error / tamper detection (random single-bit flips in transit)";
  let t = Lazy.force target in
  let key = device_key () in
  let _, image = List.nth (Lazy.force compiled) 1 in
  let build = Eric.Source.package_image ~mode:Eric.Config.Full ~key image in
  let trials = 500 in
  let detected = ref 0 in
  for i = 1 to trials do
    match
      Eric.Protocol.transmit
        ~attack:(Eric.Protocol.Bit_flips { count = 1; seed = Int64.of_int i })
        ~source:build ~target:t ()
    with
    | Eric.Protocol.Refused _ -> incr detected
    | Eric.Protocol.Executed _ -> ()
  done;
  let rate = 100.0 *. float_of_int !detected /. float_of_int trials in
  Printf.printf "%d/%d corrupted transmissions rejected (%.1f%%)\n" !detected trials rate;
  Report.record ~suite:"ablations" ~metric:"soft_error_detection" ~unit_:"%" rate

let ablation_diffusion () =
  Report.subheading "Key diffusion (fraction of text bits changed by a 1-bit key change)";
  let key = device_key () in
  let _, image = List.nth (Lazy.force compiled) 0 in
  let pkg, _ = Eric.Encrypt.encrypt ~key ~mode:Eric.Config.Full image in
  let d = Eric.Analysis.diffusion ~key pkg in
  Printf.printf "diffusion = %.4f (ideal 0.5)\n" d;
  Report.record ~suite:"ablations" ~metric:"key_diffusion" ~unit_:"fraction" d

let ablation_compression () =
  Report.subheading "RVC compression ablation (text size and parcels per workload)";
  let rows =
    List.map
      (fun (w : Eric_workloads.Workloads.t) ->
        let sized options =
          match Eric_cc.Driver.compile ~options w.source with
          | Ok img -> (Eric_rv.Program.text_size img, Array.length img.Eric_rv.Program.text)
          | Error e -> failwith e
        in
        let on, on_parcels = sized Eric_cc.Driver.default_options in
        let off, off_parcels =
          sized { Eric_cc.Driver.default_options with Eric_cc.Driver.compress = false }
        in
        [ w.name; Report.i off; Report.i on;
          Printf.sprintf "%.1f%%" (100.0 *. (1.0 -. (float_of_int on /. float_of_int off)));
          Report.i off_parcels; Report.i on_parcels ])
      Eric_workloads.Workloads.all
  in
  Report.table
    ~header:[ "workload"; "rv64i B"; "rv64ic B"; "saved"; "parcels"; "parcels (C)" ]
    rows


let ablation_multi_target () =
  Report.subheading
    "Multi-target scaling (paper: \"ERIC does not have a scaling problem\"; one compile, N encryptions)";
  let w = List.nth Eric_workloads.Workloads.all 4 in
  (* crc32 *)
  let source = w.Eric_workloads.Workloads.source in
  let rows =
    List.map
      (fun n ->
        let keys =
          List.init n (fun i ->
              (Printf.sprintf "dev%d" i,
               Eric.Target.derived_key (Eric.Target.of_id (Int64.of_int (9000 + i)))))
        in
        let t0 = Unix.gettimeofday () in
        (match Eric.Source.build_multi ~mode:Eric.Config.Full ~keys source with
        | Ok builds -> assert (List.length builds = n)
        | Error e -> failwith e);
        let shared = Unix.gettimeofday () -. t0 in
        let t0 = Unix.gettimeofday () in
        List.iter
          (fun (_, key) ->
            match Eric.Source.build ~mode:Eric.Config.Full ~key source with
            | Ok _ -> ()
            | Error e -> failwith e)
          keys;
        let naive = Unix.gettimeofday () -. t0 in
        [ string_of_int n; Printf.sprintf "%.1f" (shared *. 1e3); Printf.sprintf "%.1f" (naive *. 1e3);
          Printf.sprintf "%.2fx" (naive /. shared) ])
      [ 1; 4; 16; 64 ]
  in
  Report.table ~header:[ "devices"; "compile-once ms"; "recompile-each ms"; "speedup" ] rows

let ablation_core_timing () =
  Report.subheading
    "Core-timing sensitivity: Fig-7 overhead under different memory latencies (workload: qsort/small)";
  let _, image = List.nth (Lazy.force compiled_small) 2 in
  let key = device_key () in
  let build = Eric.Source.package_image ~mode:Eric.Config.Full ~key image in
  let t = Lazy.force target in
  let rows =
    List.map
      (fun miss ->
        let timing =
          { Eric_sim.Cpu.default_timing with
            Eric_sim.Cpu.icache_miss_penalty = miss;
            dcache_miss_penalty = miss }
        in
        let plain = Eric_sim.Soc.run_program ~timing image in
        match Eric.Target.execute ~timing t build.Eric.Source.package with
        | Error e -> failwith (Format.asprintf "%a" Eric.Target.pp_load_error e)
        | Ok enc ->
          let overhead =
            Report.pct64
              (Int64.sub (Eric_sim.Soc.total_cycles enc) (Eric_sim.Soc.total_cycles plain))
              (Eric_sim.Soc.total_cycles plain)
          in
          [ Printf.sprintf "%d cyc" miss; Report.i64 plain.Eric_sim.Soc.exec_cycles;
            Report.fpct overhead ])
      [ 5; 20; 50; 100 ]
  in
  Report.table ~header:[ "miss penalty"; "exec cycles"; "e2e overhead" ] rows


let ablation_runtime_side_channel () =
  Report.subheading
    "Runtime observability (paper claim v: the HDE \"does not directly affect cache ... performance\")";
  (* Execute the same workload plain and via ERIC and compare everything a
     dynamic-analysis attacker could sample at runtime. *)
  let _, image = List.nth (Lazy.force compiled_small) 6 in
  let key = device_key () in
  let plain = Eric_sim.Soc.run_program image in
  let b = Eric.Source.package_image ~mode:Eric.Config.Full ~key image in
  match Eric.Target.execute (Lazy.force target) b.Eric.Source.package with
  | Error e -> failwith (Format.asprintf "%a" Eric.Target.pp_load_error e)
  | Ok enc ->
    Report.table
      ~header:[ "counter"; "plain"; "via ERIC"; "delta" ]
      [ [ "instructions"; Report.i64 plain.Eric_sim.Soc.instructions;
          Report.i64 enc.Eric_sim.Soc.instructions;
          Report.i64 (Int64.sub enc.Eric_sim.Soc.instructions plain.Eric_sim.Soc.instructions) ];
        [ "exec cycles"; Report.i64 plain.Eric_sim.Soc.exec_cycles;
          Report.i64 enc.Eric_sim.Soc.exec_cycles;
          Report.i64 (Int64.sub enc.Eric_sim.Soc.exec_cycles plain.Eric_sim.Soc.exec_cycles) ];
        [ "icache hit rate"; Printf.sprintf "%.6f" plain.Eric_sim.Soc.icache_hit_rate;
          Printf.sprintf "%.6f" enc.Eric_sim.Soc.icache_hit_rate;
          Printf.sprintf "%.6f" (enc.Eric_sim.Soc.icache_hit_rate -. plain.Eric_sim.Soc.icache_hit_rate) ];
        [ "dcache hit rate"; Printf.sprintf "%.6f" plain.Eric_sim.Soc.dcache_hit_rate;
          Printf.sprintf "%.6f" enc.Eric_sim.Soc.dcache_hit_rate;
          Printf.sprintf "%.6f" (enc.Eric_sim.Soc.dcache_hit_rate -. plain.Eric_sim.Soc.dcache_hit_rate) ] ];
    print_endline
      "every runtime counter is identical: ERIC's cost is entirely at load time, outside the core"


let ablation_branch_predictor () =
  Report.subheading "Branch-predictor sensitivity (bimodal 2-bit vs fixed taken-penalty model)";
  let rows =
    List.map
      (fun ((w : Eric_workloads.Workloads.t), image) ->
        let fixed = Eric_sim.Soc.run_program image in
        let predicted = Eric_sim.Soc.run_program ~branch_predictor:true image in
        [ w.name; Report.i64 fixed.Eric_sim.Soc.exec_cycles;
          Report.i64 predicted.Eric_sim.Soc.exec_cycles;
          Printf.sprintf "%.1f%%"
            (100.0
            *. (1.0
               -. Int64.to_float predicted.Eric_sim.Soc.exec_cycles
                  /. Int64.to_float fixed.Eric_sim.Soc.exec_cycles)) ])
      (Lazy.force compiled_small)
  in
  Report.table ~header:[ "workload"; "fixed-penalty cyc"; "predicted cyc"; "saved" ] rows;
  print_endline
    "(the Fig-7 overhead ratio is insensitive to this choice: the HDE cost is load-time only)"

(* ------------------------------------------------------------------ *)
(* Lint cost                                                           *)
(* ------------------------------------------------------------------ *)

(* How much the static verifiers cost on the largest workload image: the
   machine-code verifier (CFG + stack + register discipline) plus the
   leakage lint for the partial policy.  The wall time lands in
   BENCH_results.json so PRs that touch the checkers are accountable. *)
let lint () =
  Report.heading "Lint cost (machine-code verifier + leakage lint)";
  let w, image =
    List.fold_left
      (fun ((_, bi) as best) ((_, i) as cand) ->
        if Eric_rv.Program.text_size i > Eric_rv.Program.text_size bi then cand else best)
      (List.hd (Lazy.force compiled))
      (List.tl (Lazy.force compiled))
  in
  let t0 = Eric_telemetry.Clock.now_ns () in
  let mc_diags = Eric_lint.Mc_verify.verify image in
  let _, leak_diags = Eric.Policy_lint.lint ~mode:partial_mode image in
  let wall = Int64.sub (Eric_telemetry.Clock.now_ns ()) t0 in
  let diags = List.length mc_diags + List.length leak_diags in
  Printf.printf "largest workload %s: %d parcels verified, %d diagnostics, %.3f ms\n"
    w.Eric_workloads.Workloads.name
    (Array.length image.Eric_rv.Program.text)
    diags (Eric_telemetry.Clock.ns_to_ms wall);
  Report.record ~suite:"lint" ~metric:"wall_ns" ~unit_:"ns" (Int64.to_float wall);
  Report.record ~suite:"lint" ~metric:"diagnostics" ~unit_:"count" (float_of_int diags);

  (* Attacker hierarchy: structure recovered by the linear sweep vs the
     recursive-descent + value-set attacker, per workload, on the plain
     image (the hierarchy itself) and under the 50% partial policy (what
     the policy actually concedes).  The dataflow wall time is the cost
     of the worklist solves behind the recursive attacker. *)
  Report.subheading "Attacker hierarchy (structure score, 0 = opaque, 1 = fully recovered)";
  let df_wall = ref 0L in
  let rows =
    List.map
      (fun (w, image) ->
        let clear = Array.map (fun _ -> Eric_lint.Leakage.Clear) image.Eric_rv.Program.text in
        let lin = Eric_lint.Leakage.recover Eric_lint.Leakage.Linear image clear in
        let t0 = Eric_telemetry.Clock.now_ns () in
        let rc = Eric_lint.Leakage.recover Eric_lint.Leakage.Recursive image clear in
        df_wall := Int64.add !df_wall (Int64.sub (Eric_telemetry.Clock.now_ns ()) t0);
        let rc_partial =
          Eric.Policy_lint.recover ~mode:partial_mode ~attacker:Eric_lint.Leakage.Recursive
            image
        in
        let name = w.Eric_workloads.Workloads.name in
        let score s = s.Eric_lint.Leakage.structure_score in
        Report.record ~suite:"lint" ~metric:("structure_linear_" ^ name) ~unit_:"score"
          (score lin);
        Report.record ~suite:"lint" ~metric:("structure_recursive_" ^ name) ~unit_:"score"
          (score rc);
        [ name;
          Printf.sprintf "%.3f" (score lin);
          Printf.sprintf "%.3f" (score rc);
          Printf.sprintf "%.3f" (score rc_partial);
          Printf.sprintf "%d/%d" rc.Eric_lint.Leakage.indirect_resolved
            rc.Eric_lint.Leakage.indirect_total ])
      (Lazy.force compiled)
  in
  Report.table
    ~header:[ "workload"; "linear"; "recursive"; "recursive@50%"; "indirect" ]
    rows;
  Report.record ~suite:"lint" ~metric:"dataflow.wall_ns" ~unit_:"ns"
    (Int64.to_float !df_wall);

  (* The secret-taint obligation over the build pipeline: pass/fail. *)
  let _, taint_diags = Eric.Pipeline_taint.lint () in
  let taint_ok = taint_diags = [] in
  Printf.printf "pipeline taint obligation: %s\n" (if taint_ok then "holds" else "VIOLATED");
  Report.record ~suite:"lint" ~metric:"taint_obligation" ~unit_:"bool"
    (if taint_ok then 1.0 else 0.0)

(* ------------------------------------------------------------------ *)
(* Fleet deployment at scale                                           *)
(* ------------------------------------------------------------------ *)

(* The economics the fleet subsystem exists for: a naive distributor runs
   the whole pipeline (compile + sign + layout + encrypt) once per device;
   a campaign prepares once and only personalizes (keystream XOR) and
   ships per device.  Per-device wall time for both, at three fleet
   sizes, lands in BENCH_results.json. *)
let fleet () =
  Report.heading "Fleet deployment: naive per-device build vs campaign (compile once)";
  let w = List.nth Eric_workloads.Workloads.all 4 (* crc32 *) in
  let source = w.Eric_workloads.Workloads.source in
  let enroll n =
    let reg = Eric_fleet.Registry.create () in
    for i = 0 to n - 1 do
      match Eric_fleet.Registry.enroll reg (Int64.of_int (50_000 + i)) with
      | Ok _ -> ()
      | Error e -> failwith e
    done;
    reg
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e9)
  in
  let rows =
    List.map
      (fun n ->
        let reg = enroll n in
        (* naive: full Source.build per device, then deliver *)
        let (), naive_ns =
          wall (fun () ->
              List.iter
                (fun (e : Eric_fleet.Registry.entry) ->
                  match Eric.Source.build ~mode:Eric.Config.Full ~key:e.Eric_fleet.Registry.key source with
                  | Error err -> failwith err
                  | Ok b -> (
                    let wire = Eric.Package.serialize b.Eric.Source.package in
                    match Eric.Target.receive_bytes (Eric_fleet.Registry.target reg e) wire with
                    | Ok _ -> ()
                    | Error _ -> failwith "naive delivery refused"))
                (Eric_fleet.Registry.entries reg))
        in
        (* campaign: prepare once through the cache, personalize + ship per device *)
        let cache = Eric_fleet.Artifact_cache.create () in
        let deploy () =
          match Eric_fleet.Campaign.deploy ~cache ~registry:reg source with
          | Error e -> failwith e
          | Ok r ->
            if r.Eric_fleet.Campaign.delivered <> n then failwith "campaign left devices behind";
            r
        in
        let cold, campaign_ns = wall deploy in
        let warm, warm_ns = wall deploy in
        assert (warm.Eric_fleet.Campaign.cache = Eric_fleet.Artifact_cache.Memory_hit);
        let per x = x /. float_of_int n in
        let suite = "fleet" in
        let m fmt = Printf.sprintf fmt n in
        Report.record ~suite ~metric:(m "naive_per_device_ns_n%d") ~unit_:"ns" (per naive_ns);
        Report.record ~suite ~metric:(m "campaign_per_device_ns_n%d") ~unit_:"ns" (per campaign_ns);
        Report.record ~suite ~metric:(m "campaign_warm_per_device_ns_n%d") ~unit_:"ns" (per warm_ns);
        Report.record ~suite ~metric:(m "speedup_n%d") ~unit_:"x" (naive_ns /. campaign_ns);
        Report.record ~suite ~metric:(m "cache_hits_n%d") ~unit_:"count"
          (float_of_int (Eric_fleet.Artifact_cache.hits cache));
        [ string_of_int n;
          Printf.sprintf "%.1f" (per naive_ns /. 1e3);
          Printf.sprintf "%.1f" (per campaign_ns /. 1e3);
          Printf.sprintf "%.1f" (per warm_ns /. 1e3);
          Printf.sprintf "%.1fx" (naive_ns /. campaign_ns);
          Eric_fleet.Artifact_cache.outcome_label cold.Eric_fleet.Campaign.cache ^ "/"
          ^ Eric_fleet.Artifact_cache.outcome_label warm.Eric_fleet.Campaign.cache ])
      [ 10; 100; 1000 ]
  in
  Report.table
    ~header:
      [ "devices"; "naive us/dev"; "campaign us/dev"; "warm us/dev"; "speedup"; "cache c/w" ]
    rows;
  (* retry economics over a lossy channel: every device needs one retry,
     recovery is deterministic, nobody is dropped *)
  let n = 100 in
  let reg = enroll n in
  let cache = Eric_fleet.Artifact_cache.create () in
  let config =
    { Eric_fleet.Campaign.default_config with
      Eric_fleet.Campaign.channel = Eric_fleet.Channel.drop_first 1 }
  in
  (match Eric_fleet.Campaign.deploy ~config ~cache ~registry:reg source with
  | Error e -> failwith e
  | Ok r ->
    if not (Eric_fleet.Campaign.all_accounted r) then failwith "device unaccounted for";
    Printf.printf
      "\nlossy channel (drop-first:1, %d devices): %d delivered, %d after retry, %.3f ms simulated backoff\n"
      n r.Eric_fleet.Campaign.delivered r.Eric_fleet.Campaign.retried
      (Int64.to_float r.Eric_fleet.Campaign.backoff_ns /. 1e6);
    Report.record ~suite:"fleet" ~metric:"retries_recovered_n100" ~unit_:"count"
      (float_of_int r.Eric_fleet.Campaign.retried);
    Report.record ~suite:"fleet" ~metric:"backoff_ms_n100" ~unit_:"ms"
      (Int64.to_float r.Eric_fleet.Campaign.backoff_ns /. 1e6))

(* ------------------------------------------------------------------ *)
(* Campaign engine at fleet scale                                      *)
(* ------------------------------------------------------------------ *)

(* The engine + sharded-registry economics: campaign throughput at
   N = 10^3..10^5 real devices under both schedulers, registry-open cost
   (whole file vs manifest-only) as the fleet grows, quarantine behaviour
   over a lossy channel, raw engine overhead on 10^6 synthetic jobs, and
   the personalize hot path in MiB/s.

   Throughput numbers are honest for this machine: the worker count and
   whether domains actually ran are recorded alongside them.  On a
   single-core box the domain scheduler cannot beat the deterministic
   one — the point of the comparison is that it never has to: outcomes
   are identical, so deployments can pick per machine. *)
let engine () =
  Report.heading "Campaign engine: fleet-scale work queue + sharded registry";
  let module Engine = Eric_engine.Engine in
  let module Job = Eric_engine.Job in
  let module Shard = Eric_fleet.Registry_shard in
  let suite = "engine" in
  let cores = Eric_engine.Pool.recommended () in
  Printf.printf "domains available: %b, recommended workers: %d\n"
    Eric_engine.Pool.available cores;
  Report.record ~suite ~metric:"pool_available" ~unit_:"bool"
    (if Eric_engine.Pool.available then 1.0 else 0.0);
  Report.record ~suite ~metric:"recommended_workers" ~unit_:"count" (float_of_int cores);
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e9)
  in
  let w = List.nth Eric_workloads.Workloads.all 4 (* crc32 *) in
  let source = w.Eric_workloads.Workloads.source in

  (* personalize hot path: pure keystream XOR over the prepared image *)
  (match Eric.Source.prepare ~mode:Eric.Config.Full source with
  | Error e -> failwith e
  | Ok prepared ->
    let key = Eric.Target.derived_key (Eric.Target.of_id 77_000L) in
    let reps = 400 in
    let (), ns =
      wall (fun () ->
          for _ = 1 to reps do
            ignore (Eric.Source.personalize ~key prepared)
          done)
    in
    let bytes = float_of_int (prepared.Eric.Source.p_plain_size * reps) in
    let mib_s = bytes /. (ns /. 1e9) /. (1024.0 *. 1024.0) in
    Printf.printf "personalize: %.1f MiB/s (%.1f us per %d-byte image)\n" mib_s
      (ns /. float_of_int reps /. 1e3)
      prepared.Eric.Source.p_plain_size;
    Report.record ~suite ~metric:"personalize_mib_s" ~unit_:"MiB/s" mib_s);

  (* fleet-scale campaign sweep; factory (legacy) enrollment keeps the
     setup affordable at 10^5 devices *)
  let enroll_legacy n =
    let reg = Eric_fleet.Registry.create () in
    for i = 0 to n - 1 do
      match Eric_fleet.Registry.enroll_legacy reg (Int64.of_int (1_000_000 + i)) with
      | Ok _ -> ()
      | Error e -> failwith e
    done;
    reg
  in
  let deploy ?channel ~scheduler ~cache reg =
    let config =
      {
        Eric_fleet.Campaign.default_config with
        Eric_fleet.Campaign.channel =
          (match channel with Some c -> c | None -> Eric_fleet.Channel.clean);
        engine = { Engine.default_config with Engine.scheduler };
      }
    in
    match Eric_fleet.Campaign.deploy ~config ~cache ~registry:reg source with
    | Error e -> failwith e
    | Ok r -> r
  in
  let rows =
    List.map
      (fun n ->
        let reg, enroll_ns = wall (fun () -> enroll_legacy n) in
        let cache = Eric_fleet.Artifact_cache.create () in
        (* cold run boots every device and compiles once; both warm runs
           personalize + ship only, so the scheduler comparison isolates
           the engine *)
        let cold, cold_ns = wall (fun () -> deploy ~scheduler:Engine.Deterministic ~cache reg) in
        let det, det_ns = wall (fun () -> deploy ~scheduler:Engine.Deterministic ~cache reg) in
        let dom, dom_ns = wall (fun () -> deploy ~scheduler:(Engine.Domains 0) ~cache reg) in
        if det.Eric_fleet.Campaign.delivered <> n || dom.Eric_fleet.Campaign.delivered <> n
        then failwith "fleet-scale campaign left devices behind";
        let per_s ns = float_of_int n /. (ns /. 1e9) in
        (* registry-open cost: parsing the whole file is O(devices);
           opening the sharded manifest is O(shards) *)
        let file = Filename.temp_file "eric_bench_reg" ".efrg" in
        Eric_fleet.Registry.save reg file;
        let open_file =
          match wall (fun () -> Eric_fleet.Registry.load file) with
          | Ok _, ns -> ns
          | Error e, _ -> failwith e
        in
        let dir = Filename.temp_file "eric_bench_shards" "" in
        Sys.remove dir;
        (match Shard.of_registry ~dir ~shards:64 reg with
        | Ok _ -> ()
        | Error e -> failwith e);
        let open_manifest =
          match wall (fun () -> Shard.load dir) with
          | Ok _, ns -> ns
          | Error e, _ -> failwith e
        in
        Sys.remove file;
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir;
        let m fmt = Printf.sprintf fmt n in
        Report.record ~suite ~metric:(m "enroll_legacy_per_device_ns_n%d") ~unit_:"ns"
          (enroll_ns /. float_of_int n);
        Report.record ~suite ~metric:(m "campaign_cold_jobs_per_s_n%d") ~unit_:"jobs/s"
          (per_s cold_ns);
        Report.record ~suite ~metric:(m "campaign_det_jobs_per_s_n%d") ~unit_:"jobs/s"
          (per_s det_ns);
        Report.record ~suite ~metric:(m "campaign_domains_jobs_per_s_n%d") ~unit_:"jobs/s"
          (per_s dom_ns);
        Report.record ~suite ~metric:(m "campaign_quarantined_n%d") ~unit_:"count"
          (float_of_int (cold.Eric_fleet.Campaign.quarantined
                         + det.Eric_fleet.Campaign.quarantined
                         + dom.Eric_fleet.Campaign.quarantined));
        Report.record ~suite ~metric:(m "cache_hits_n%d") ~unit_:"count"
          (float_of_int (Eric_fleet.Artifact_cache.hits cache));
        Report.record ~suite ~metric:(m "registry_open_file_ns_n%d") ~unit_:"ns" open_file;
        Report.record ~suite ~metric:(m "registry_open_manifest_ns_n%d") ~unit_:"ns"
          open_manifest;
        [ string_of_int n;
          Printf.sprintf "%.0f" (per_s cold_ns);
          Printf.sprintf "%.0f" (per_s det_ns);
          Printf.sprintf "%.0f" (per_s dom_ns);
          dom.Eric_fleet.Campaign.scheduler_used;
          Printf.sprintf "%.2f" (open_file /. 1e6);
          Printf.sprintf "%.3f" (open_manifest /. 1e6) ])
      [ 1_000; 10_000; 100_000 ]
  in
  Report.table
    ~header:
      [ "devices"; "cold jobs/s"; "warm det jobs/s"; "warm dom jobs/s"; "dom sched";
        "open file ms"; "open manifest ms" ]
    rows;

  (* sharded campaign: same fleet walked shard by shard at one-shard
     memory cost *)
  let n = 10_000 in
  let reg = enroll_legacy n in
  let dir = Filename.temp_file "eric_bench_shards" "" in
  Sys.remove dir;
  let sh =
    match Shard.of_registry ~dir ~shards:16 reg with Ok s -> s | Error e -> failwith e
  in
  let cache = Eric_fleet.Artifact_cache.create () in
  let r, ns =
    wall (fun () ->
        match Eric_fleet.Campaign.deploy_sharded ~cache ~shards:sh source with
        | Ok r -> r
        | Error e -> failwith e)
  in
  if r.Eric_fleet.Campaign.delivered <> n then failwith "sharded campaign left devices behind";
  Printf.printf "sharded campaign (%d devices, 16 shards): %.0f jobs/s\n" n
    (float_of_int n /. (ns /. 1e9));
  Report.record ~suite ~metric:"campaign_sharded_jobs_per_s_n10000" ~unit_:"jobs/s"
    (float_of_int n /. (ns /. 1e9));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir;

  (* quarantine economics over a lossy channel: half the sends fail, the
     backoff policy retries, the refusal threshold quarantines the rest *)
  let n = 1_000 in
  let reg = enroll_legacy n in
  let cache = Eric_fleet.Artifact_cache.create () in
  let lossy = Eric_fleet.Channel.flaky ~probability:0.5 ~seed:11L () in
  let r =
    deploy ~channel:lossy ~scheduler:Engine.Deterministic ~cache reg
  in
  let rate v = float_of_int v /. float_of_int n in
  Printf.printf
    "lossy channel (flaky:0.5, %d devices): %d delivered, %d retried, %d quarantined\n" n
    r.Eric_fleet.Campaign.delivered r.Eric_fleet.Campaign.retried
    r.Eric_fleet.Campaign.quarantined;
  Report.record ~suite ~metric:"lossy_delivered_rate_n1000" ~unit_:"fraction"
    (rate r.Eric_fleet.Campaign.delivered);
  Report.record ~suite ~metric:"lossy_quarantined_rate_n1000" ~unit_:"fraction"
    (rate r.Eric_fleet.Campaign.quarantined);

  (* raw engine overhead: 10^6 synthetic jobs through the full stage +
     completion machinery *)
  let n = 1_000_000 in
  let spec =
    {
      Job.admit = Job.always_admit;
      prepare = (fun i -> Ok (i * 0x9E3779B1));
      personalize = (fun x -> Ok (x lxor (x lsr 16)));
      ship = (fun x -> Ok (x + 1));
      verify = (fun x -> Ok x);
    }
  in
  let items = Array.init n (fun i -> i) in
  let smoke scheduler =
    let config = { Engine.default_config with Engine.scheduler; window = 65_536 } in
    let r = Engine.run ~config ~name:"bench.engine.smoke" spec items in
    if r.Engine.jobs_done <> n then failwith "synthetic smoke lost jobs";
    (Engine.throughput_per_s r, r.Engine.scheduler_used)
  in
  let det_tp, _ = smoke Engine.Deterministic in
  let dom_tp, dom_used = smoke (Engine.Domains 0) in
  Printf.printf "synthetic 10^6 jobs: %.2f M/s deterministic, %.2f M/s %s\n"
    (det_tp /. 1e6) (dom_tp /. 1e6) dom_used;
  Report.record ~suite ~metric:"synthetic_det_jobs_per_s_n1e6" ~unit_:"jobs/s" det_tp;
  Report.record ~suite ~metric:"synthetic_domains_jobs_per_s_n1e6" ~unit_:"jobs/s" dom_tp

let ablations () =
  Report.heading "Ablations and security evaluations (beyond the paper's figures)";
  ablation_puf ();
  ablation_static_analysis ();
  ablation_fraction_sweep ();
  ablation_hde_throughput ();
  ablation_soft_errors ();
  ablation_diffusion ();
  ablation_compression ();
  ablation_multi_target ();
  ablation_core_timing ();
  ablation_runtime_side_channel ();
  ablation_branch_predictor ()

(* ------------------------------------------------------------------ *)
(* Obfuscation: leakage vs size vs cycles Pareto                        *)
(* ------------------------------------------------------------------ *)

(* Per workload x pass set: what the recursive attacker still recovers
   (Jaccard against the decoy-subtracted ground truth — lower is more
   opaque), against what the obfuscation costs in text bytes and SoC
   cycles.  The rows land in BENCH_results.json as the Pareto frontier
   of the pass family; a PR that regresses either axis shows up in the
   numbers. *)
let obf () =
  Report.heading
    "Obfuscation Pareto: residual structure (recursive attacker) vs size and cycle cost";
  let sets =
    [ ("data", [ Eric_obf.Obf.Constants; Eric_obf.Obf.Arith ]);
      ("decoy", [ Eric_obf.Obf.Opaque; Eric_obf.Obf.Dummy ]);
      ("flatten", [ Eric_obf.Obf.Flatten ]);
      ("all", Eric_obf.Obf.all_passes) ]
  in
  let rows =
    List.concat_map
      (fun ((w : Eric_workloads.Workloads.t), plain) ->
        let plain_run = Eric_sim.Soc.run_program plain in
        let plain_bytes = Eric_rv.Program.text_size plain in
        let plain_cycles = Eric_sim.Soc.total_cycles plain_run in
        let baseline =
          let clear = Array.map (fun _ -> Eric_lint.Leakage.Clear) plain.Eric_rv.Program.text in
          (Eric_lint.Leakage.recover Eric_lint.Leakage.Recursive plain clear)
            .Eric_lint.Leakage.structure_score
        in
        List.map
          (fun (label, passes) ->
            let cfg = { Eric_obf.Obf.passes; seed = Eric_obf.Obf.default_seed } in
            let t, annot = Eric_obf.Obf.hook cfg in
            let options =
              { Eric_cc.Driver.default_options with Eric_cc.Driver.transform = Some t }
            in
            let image =
              match Eric_cc.Driver.compile ~options w.source_small with
              | Ok i -> i
              | Error e -> failwith (w.name ^ "/" ^ label ^ ": " ^ e)
            in
            let s = Eric_obf.Obf.grade ~annot ~attacker:Eric_lint.Leakage.Recursive image in
            let run = Eric_sim.Soc.run_program image in
            if run.Eric_sim.Soc.output <> plain_run.Eric_sim.Soc.output then
              failwith (w.name ^ "/" ^ label ^ ": obfuscated run diverged");
            let score = s.Eric_lint.Leakage.structure_score in
            let size_pct =
              Report.pct64
                (Int64.of_int (Eric_rv.Program.text_size image - plain_bytes))
                (Int64.of_int plain_bytes)
            in
            let cyc_pct =
              Report.pct64
                (Int64.sub (Eric_sim.Soc.total_cycles run) plain_cycles)
                plain_cycles
            in
            let m fmt = Printf.sprintf fmt label w.name in
            Report.record ~suite:"obf" ~metric:(m "score_%s_%s") ~unit_:"score" score;
            Report.record ~suite:"obf" ~metric:(m "size_overhead_%s_%s") ~unit_:"%" size_pct;
            Report.record ~suite:"obf" ~metric:(m "cycle_overhead_%s_%s") ~unit_:"%" cyc_pct;
            [ w.name; label; Printf.sprintf "%.3f" baseline; Printf.sprintf "%.3f" score;
              Report.fpct size_pct; Report.fpct cyc_pct ])
          sets)
      (Lazy.force compiled_small)
  in
  Report.table
    ~header:[ "workload"; "passes"; "plain score"; "obf score"; "size"; "cycles" ]
    rows

(* ------------------------------------------------------------------ *)
(* PUF reliability: environmental sweep of the key path                 *)
(* ------------------------------------------------------------------ *)

(* The robustness claim, measured: per-corner key failure rate of the
   legacy majority-vote boot vs the fuzzy-extractor boot, over a small
   enrolled population.  At the >= 10x-noise stress corners the plain
   path must fail measurably while the extractor stays within its 1e-3
   budget with zero wrong keys — the rows land in BENCH_results.json so
   a PR that degrades either path is caught by the numbers. *)
let pufrel () =
  Report.heading "PUF reliability: key failure rate per operating corner (plain vs fuzzy)";
  let config =
    { Eric_verif.Envsweep.default_config with Eric_verif.Envsweep.devices = 8; boots = 40 }
  in
  match Eric_verif.Envsweep.campaign ~config () with
  | Error e -> failwith ("pufrel: " ^ e)
  | Ok report ->
    Format.printf "%a@." Eric_verif.Envsweep.pp_report report;
    let suite = "puf_reliability" in
    List.iter
      (fun (row : Eric_verif.Envsweep.corner_row) ->
        let m fmt = Printf.sprintf fmt row.Eric_verif.Envsweep.corner in
        Report.record ~suite ~metric:(m "plain_kfr_%s") ~unit_:"fraction"
          (Eric_verif.Envsweep.plain_kfr row);
        Report.record ~suite ~metric:(m "fuzzy_kfr_%s") ~unit_:"fraction"
          (Eric_verif.Envsweep.fuzzy_kfr row);
        Report.record ~suite ~metric:(m "wrong_keys_%s") ~unit_:"count"
          (float_of_int row.Eric_verif.Envsweep.wrong_keys))
      report.Eric_verif.Envsweep.rows;
    let stress_row =
      List.find
        (fun (r : Eric_verif.Envsweep.corner_row) -> r.Eric_verif.Envsweep.corner = "cold-lowv")
        report.Eric_verif.Envsweep.rows
    in
    Report.record ~suite ~metric:"stress_noise_scale" ~unit_:"x"
      (Eric_puf.Env.noise_scale stress_row.Eric_verif.Envsweep.env);
    Report.record ~suite ~metric:"passed" ~unit_:"bool"
      (if Eric_verif.Envsweep.passed report then 1.0 else 0.0)

(* ------------------------------------------------------------------ *)
(* Verification campaigns: differential fuzzing throughput and         *)
(* fault-injection detection coverage                                  *)
(* ------------------------------------------------------------------ *)

let verif_source =
  "int g0[4] = {3, 1, 4, 1};\n\
   int main() {\n\
  \  int acc = 0;\n\
  \  for (int i = 0; i < 4; i++) { acc += g0[i] * (i + 1); }\n\
  \  print_str(\"acc=\");\n\
  \  println_int(acc);\n\
  \  return acc & 255;\n\
   }\n"

let verif () =
  Report.heading "Verification: differential fuzzing + fault-injection coverage";
  (* 10k generated programs through all three execution paths; the
     acceptance bar is zero divergences at fixed seeds. *)
  let config = { Eric_verif.Fuzz.default_config with Eric_verif.Fuzz.count = 10_000 } in
  let outcome = Eric_verif.Fuzz.run ~config () in
  let stats = outcome.Eric_verif.Fuzz.stats in
  let secs = Int64.to_float stats.Eric_verif.Fuzz.wall_ns /. 1e9 in
  let rate = float_of_int stats.Eric_verif.Fuzz.programs /. secs in
  Printf.printf "fuzz: %d programs (%d mutated), %d divergences, %d compile errors, %.1f exec/s\n"
    stats.Eric_verif.Fuzz.programs stats.Eric_verif.Fuzz.mutated
    stats.Eric_verif.Fuzz.divergences stats.Eric_verif.Fuzz.compile_errors rate;
  Report.record ~suite:"verif" ~metric:"fuzz_programs" ~unit_:"count"
    (float_of_int stats.Eric_verif.Fuzz.programs);
  Report.record ~suite:"verif" ~metric:"fuzz_divergences" ~unit_:"count"
    (float_of_int stats.Eric_verif.Fuzz.divergences);
  Report.record ~suite:"verif" ~metric:"fuzz_compile_errors" ~unit_:"count"
    (float_of_int stats.Eric_verif.Fuzz.compile_errors);
  Report.record ~suite:"verif" ~metric:"fuzz_programs_per_sec" ~unit_:"1/s" rate;
  (* Single-bit fault injections per region group.  Wire regions are
     signed: detection must be total.  Dram (post-validation) measures
     the residual exposure the paper accepts; Key measures the KMU path. *)
  let inject regions count =
    let config =
      { Eric_verif.Inject.default_config with Eric_verif.Inject.count; regions }
    in
    match Eric_verif.Inject.campaign ~config verif_source with
    | Error e -> failwith ("inject: " ^ e)
    | Ok r -> r
  in
  let wire = inject Eric_verif.Inject.wire_regions 2_000 in
  let dram = inject [ Eric_verif.Inject.Dram ] 1_000 in
  let key = inject [ Eric_verif.Inject.Key ] 1_000 in
  let rows =
    List.map
      (fun (r : Eric_verif.Inject.row) ->
        [ Eric_verif.Inject.region_name r.Eric_verif.Inject.region;
          Report.i r.Eric_verif.Inject.injections;
          Report.i r.Eric_verif.Inject.detected;
          Report.i r.Eric_verif.Inject.masked;
          Report.i r.Eric_verif.Inject.silent;
          Report.f1 (100.0 *. Eric_verif.Inject.coverage r) ])
      (wire.Eric_verif.Inject.rows @ dram.Eric_verif.Inject.rows @ key.Eric_verif.Inject.rows)
  in
  Report.table ~header:[ "region"; "inj"; "detected"; "masked"; "silent"; "coverage %" ] rows;
  Report.record ~suite:"verif" ~metric:"inject_wire_coverage_pct" ~unit_:"%"
    (100.0 *. Eric_verif.Inject.detection_coverage wire);
  Report.record ~suite:"verif" ~metric:"inject_wire_silent" ~unit_:"count"
    (float_of_int (Eric_verif.Inject.silent_total wire));
  Report.record ~suite:"verif" ~metric:"inject_key_coverage_pct" ~unit_:"%"
    (100.0 *. Eric_verif.Inject.detection_coverage key);
  Report.record ~suite:"verif" ~metric:"inject_dram_coverage_pct" ~unit_:"%"
    (100.0 *. Eric_verif.Inject.detection_coverage dram);
  (* Runtime integrity guard: the residual-exposure-vs-cycle-overhead
     curve over the same DRAM flips.  The baseline (guard off) is the
     paper's accepted exposure; the acceptance bar is total detection at
     the tightest mechanism. *)
  Report.subheading "DRAM guard sweep (coverage vs cycle overhead, same flips per point)";
  let mechanisms =
    Eric_hw.Guard.
      [ Off;
        Scrub { interval_cycles = 4096 };
        Scrub { interval_cycles = 1024 };
        Scrub { interval_cycles = 256 };
        Fetch_check;
        Fetch_and_scrub { interval_cycles = 1024 };
        Fetch_and_scrub { interval_cycles = 256 } ]
  in
  let sweep =
    match Eric_verif.Inject.dram_sweep ~mechanisms verif_source with
    | Error e -> failwith ("dram sweep: " ^ e)
    | Ok s -> s
  in
  Report.table
    ~header:[ "mechanism"; "inj"; "detected"; "silent"; "coverage %"; "overhead" ]
    (List.map
       (fun (p : Eric_verif.Inject.sweep_point) ->
         [ Eric_hw.Guard.mechanism_name p.Eric_verif.Inject.sp_mechanism;
           Report.i p.Eric_verif.Inject.sp_injections;
           Report.i p.Eric_verif.Inject.sp_detected;
           Report.i p.Eric_verif.Inject.sp_silent;
           Report.f1 (100.0 *. p.Eric_verif.Inject.sp_coverage);
           Printf.sprintf "%.3f" p.Eric_verif.Inject.sp_overhead ])
       sweep);
  List.iter
    (fun (p : Eric_verif.Inject.sweep_point) ->
      let m = Eric_hw.Guard.mechanism_name p.Eric_verif.Inject.sp_mechanism in
      Report.record ~suite:"verif"
        ~metric:(Printf.sprintf "guard_%s_coverage_pct" m)
        ~unit_:"%"
        (100.0 *. p.Eric_verif.Inject.sp_coverage);
      Report.record ~suite:"verif"
        ~metric:(Printf.sprintf "guard_%s_overhead" m)
        ~unit_:"ratio" p.Eric_verif.Inject.sp_overhead)
    sweep;
  let coverage_of mech =
    match
      List.find_opt
        (fun (p : Eric_verif.Inject.sweep_point) ->
          p.Eric_verif.Inject.sp_mechanism = mech)
        sweep
    with
    | Some p -> p.Eric_verif.Inject.sp_coverage
    | None -> 0.0
  in
  let tightest =
    coverage_of (Eric_hw.Guard.Fetch_and_scrub { interval_cycles = 256 })
  in
  if tightest < 0.99 then
    failwith
      (Printf.sprintf "dram sweep: tightest guard detects %.1f%% (< 99%%)"
         (100.0 *. tightest));
  if coverage_of Eric_hw.Guard.Off >= 0.99 then
    failwith "dram sweep: baseline should leave residual exposure"

(* ------------------------------------------------------------------ *)
(* OTA update service scenarios                                        *)
(* ------------------------------------------------------------------ *)

(* The serve subsystem's SLO numbers, per scenario preset, on the
   simulated clock — fully deterministic, so these rows are stable
   across machines.  The final section re-runs flash-crowd scaled to
   >= 10^4 requests to demonstrate the Zipf cache economics: a handful
   of corpus-wide compiles absorb the entire request stream. *)
let serve () =
  Report.heading "OTA update service: per-scenario SLOs (simulated time)";
  let module S = Eric_serve.Slo in
  let seed = 42L in
  let suite = "serve" in
  let rows =
    List.map
      (fun (sc : Eric_serve.Scenario.t) ->
        let r = Eric_serve.Service.run ~seed ~scenario:sc () in
        let name = sc.Eric_serve.Scenario.name in
        let m fmt = Printf.sprintf fmt name in
        Report.record ~suite ~metric:(m "%s_requests") ~unit_:"count"
          (float_of_int r.S.requests);
        Report.record ~suite ~metric:(m "%s_p50_ms") ~unit_:"ms" r.S.latency.S.p50_ms;
        Report.record ~suite ~metric:(m "%s_p99_ms") ~unit_:"ms" r.S.latency.S.p99_ms;
        Report.record ~suite ~metric:(m "%s_refusal_rate") ~unit_:"ratio" r.S.refusal_rate;
        Report.record ~suite ~metric:(m "%s_quarantine_rate") ~unit_:"ratio"
          r.S.quarantine_rate;
        Report.record ~suite ~metric:(m "%s_cache_hit_rate") ~unit_:"ratio"
          r.S.cache_hit_rate;
        if r.S.faults_injected > 0 then begin
          (* The soft-error scenario's acceptance bar: every injected
             upset caught (guard or trap), faulted devices recovered by
             re-delivery, nothing silently corrupted. *)
          Report.record ~suite ~metric:(m "%s_faults_injected") ~unit_:"count"
            (float_of_int r.S.faults_injected);
          Report.record ~suite ~metric:(m "%s_fault_detection_rate") ~unit_:"ratio"
            (float_of_int r.S.faults_detected /. float_of_int r.S.faults_injected);
          Report.record ~suite ~metric:(m "%s_faults_undetected") ~unit_:"count"
            (float_of_int r.S.faults_undetected);
          Report.record ~suite ~metric:(m "%s_fault_recovered") ~unit_:"count"
            (float_of_int r.S.fault_recovered);
          if r.S.faults_undetected > 0 then
            failwith
              (Printf.sprintf "serve bench: %s let %d corrupted execution(s) pass silently"
                 name r.S.faults_undetected)
        end;
        if not (S.passed r) then
          failwith
            (Printf.sprintf "serve bench: scenario %s blew its SLO budget: %s" name
               (String.concat "; " r.S.violations));
        [ name;
          Report.i r.S.requests;
          Report.f1 r.S.latency.S.p50_ms;
          Report.f1 r.S.latency.S.p99_ms;
          Printf.sprintf "%.2f" (100.0 *. r.S.refusal_rate);
          Printf.sprintf "%.2f" (100.0 *. r.S.quarantine_rate);
          Printf.sprintf "%.2f" (100.0 *. r.S.cache_hit_rate) ])
      Eric_serve.Scenario.presets
  in
  Report.table
    ~header:[ "scenario"; "requests"; "p50 ms"; "p99 ms"; "refused %"; "quar %"; "cache %" ]
    rows;
  (* Zipf cache economics at scale: the acceptance bar is a >90% hit
     rate over at least 10^4 requests. *)
  let sc =
    Eric_serve.Scenario.with_rate_scale Eric_serve.Scenario.flash_crowd ~factor:2.0
  in
  let big = Eric_serve.Service.run ~seed:7L ~scenario:sc () in
  if big.S.requests < 10_000 then
    failwith
      (Printf.sprintf "serve bench: wanted >= 10^4 requests, generated %d" big.S.requests);
  if big.S.cache_hit_rate <= 0.9 then
    failwith
      (Printf.sprintf "serve bench: Zipf cache hit rate %.4f is not > 0.9"
         big.S.cache_hit_rate);
  Printf.printf "zipf at scale: %d requests, cache hit rate %.2f%% (%d compiles)\n"
    big.S.requests
    (100.0 *. big.S.cache_hit_rate)
    big.S.cache_misses;
  Report.record ~suite ~metric:"zipf_requests" ~unit_:"count" (float_of_int big.S.requests);
  Report.record ~suite ~metric:"zipf_cache_hit_rate" ~unit_:"ratio" big.S.cache_hit_rate;
  Report.record ~suite ~metric:"zipf_cache_misses" ~unit_:"count"
    (float_of_int big.S.cache_misses)
