(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation (see DESIGN.md's experiment index), the ablation
   studies, and the bechamel microbenchmarks.

   Usage: main.exe [table1|table2|fig5|fig6|fig7|ablations|lint|fleet|engine|serve|pufrel|obf|verif|micro|all]... *)

let experiments =
  [ ("table1", Experiments.table1);
    ("table2", Experiments.table2);
    ("fig5", Experiments.fig5);
    ("fig6", Experiments.fig6);
    ("fig7", Experiments.fig7);
    ("ablations", Experiments.ablations);
    ("lint", Experiments.lint);
    ("fleet", Experiments.fleet);
    ("engine", Experiments.engine);
    ("serve", Experiments.serve);
    ("pufrel", Experiments.pufrel);
    ("obf", Experiments.obf);
    ("verif", Experiments.verif);
    ("micro", Micro.run) ]

let run_all () = List.iter (fun (_, f) -> f ()) experiments

(* Dump every bench.result{suite,metric,unit} gauge the run recorded
   (see Report.record) as machine-readable JSON, one row per metric.
   Suites not exercised by this run keep their rows from the existing
   file, so a partial run (e.g. `main.exe verif`) refreshes its own
   numbers without discarding everyone else's. *)
let results_file = "BENCH_results.json"

(* The file is our own output, so its shape is exact:
   [{"suite":"...",...},{...}].  Recover (suite, raw object) pairs with
   plain string surgery rather than a JSON parser. *)
let existing_rows () =
  if not (Sys.file_exists results_file) then []
  else begin
    let text = String.trim (In_channel.with_open_bin results_file In_channel.input_all) in
    (* split "[{..},{..},{..}]" into "{..}" pieces: no nesting, and no
       string value can contain braces (suite/metric/unit names only) *)
    let objects = ref [] and depth = ref 0 and start = ref 0 in
    String.iteri
      (fun i c ->
        match c with
        | '{' ->
          if !depth = 0 then start := i;
          incr depth
        | '}' ->
          decr depth;
          if !depth = 0 then objects := String.sub text !start (i - !start + 1) :: !objects
        | _ -> ())
      text;
    List.filter_map
      (fun obj ->
        let marker = {|"suite":"|} in
        let mlen = String.length marker in
        let rec find i =
          if i + mlen > String.length obj then None
          else if String.sub obj i mlen = marker then Some (i + mlen)
          else find (i + 1)
        in
        match find 0 with
        | None -> None
        | Some start -> (
          match String.index_from_opt obj start '"' with
          | None -> None
          | Some stop -> Some (String.sub obj start (stop - start), obj)))
      (List.rev !objects)
  end

let write_results () =
  let snapshot = Eric_telemetry.Snapshot.capture () in
  let rows =
    List.filter_map
      (fun (name, labels, value) ->
        if name <> "bench.result" then None
        else
          let label key = Option.value ~default:"" (List.assoc_opt key labels) in
          Some
            ( label "suite",
              Eric_telemetry.Json.to_string
                (Eric_telemetry.Json.Obj
                   [ ("suite", Eric_telemetry.Json.Str (label "suite"));
                     ("metric", Eric_telemetry.Json.Str (label "metric"));
                     ("value", Eric_telemetry.Json.Num value);
                     ("unit", Eric_telemetry.Json.Str (label "unit")) ]) ))
      snapshot.Eric_telemetry.Snapshot.gauges
  in
  if rows <> [] then begin
    let fresh_suites = List.map fst rows in
    let kept =
      List.filter (fun (suite, _) -> not (List.mem suite fresh_suites)) (existing_rows ())
    in
    let all = List.map snd kept @ List.map snd rows in
    let oc = open_out results_file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc ("[" ^ String.concat "," all ^ "]");
        output_char oc '\n');
    Printf.printf "\n%d results -> %s (%d kept from previous runs)\n" (List.length rows)
      results_file (List.length kept)
  end

let () =
  (match Array.to_list Sys.argv with
  | [ _ ] | [ _; "all" ] -> run_all ()
  | _ :: picks ->
    List.iter
      (fun pick ->
        match List.assoc_opt pick experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; known: %s all\n" pick
            (String.concat " " (List.map fst experiments));
          exit 2)
      picks
  | [] -> run_all ());
  write_results ()
