(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation (see DESIGN.md's experiment index), the ablation
   studies, and the bechamel microbenchmarks.

   Usage: main.exe [table1|table2|fig5|fig6|fig7|ablations|lint|fleet|micro|all]... *)

let experiments =
  [ ("table1", Experiments.table1);
    ("table2", Experiments.table2);
    ("fig5", Experiments.fig5);
    ("fig6", Experiments.fig6);
    ("fig7", Experiments.fig7);
    ("ablations", Experiments.ablations);
    ("lint", Experiments.lint);
    ("fleet", Experiments.fleet);
    ("micro", Micro.run) ]

let run_all () = List.iter (fun (_, f) -> f ()) experiments

(* Dump every bench.result{suite,metric,unit} gauge the run recorded
   (see Report.record) as machine-readable JSON, one row per metric. *)
let results_file = "BENCH_results.json"

let write_results () =
  let snapshot = Eric_telemetry.Snapshot.capture () in
  let rows =
    List.filter_map
      (fun (name, labels, value) ->
        if name <> "bench.result" then None
        else
          let label key = Option.value ~default:"" (List.assoc_opt key labels) in
          Some
            (Eric_telemetry.Json.Obj
               [ ("suite", Eric_telemetry.Json.Str (label "suite"));
                 ("metric", Eric_telemetry.Json.Str (label "metric"));
                 ("value", Eric_telemetry.Json.Num value);
                 ("unit", Eric_telemetry.Json.Str (label "unit")) ]))
      snapshot.Eric_telemetry.Snapshot.gauges
  in
  if rows <> [] then begin
    let oc = open_out results_file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Eric_telemetry.Json.to_string (Eric_telemetry.Json.List rows));
        output_char oc '\n');
    Printf.printf "\n%d results -> %s\n" (List.length rows) results_file
  end

let () =
  (match Array.to_list Sys.argv with
  | [ _ ] | [ _; "all" ] -> run_all ()
  | _ :: picks ->
    List.iter
      (fun pick ->
        match List.assoc_opt pick experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; known: %s all\n" pick
            (String.concat " " (List.map fst experiments));
          exit 2)
      picks
  | [] -> run_all ());
  write_results ()
