(* Plain-text table rendering for the benchmark harness. *)

let rule width = print_endline (String.make width '-')

let heading title =
  print_newline ();
  rule 78;
  Printf.printf "%s\n" title;
  rule 78

let subheading title = Printf.printf "\n-- %s --\n" title

(* Render rows of columns with right-aligned numeric columns. *)
let table ~header rows =
  let all = header :: rows in
  let columns = List.length header in
  let width c = List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all in
  let widths = List.init columns width in
  let print_row row =
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        if c = 0 then Printf.printf "%-*s" w cell else Printf.printf "  %*s" w cell)
      row;
    print_newline ()
  in
  print_row header;
  rule (List.fold_left (fun acc w -> acc + w + 2) (-2) widths);
  List.iter print_row rows

(* Every headline number lands in the telemetry registry as a
   bench.result{suite,metric,unit} gauge; main.ml dumps the family to
   BENCH_results.json after the run, so the perf trajectory is tracked
   across PRs by machines, not just eyeballs.  Recording enables
   telemetry only for the store itself, so the measurement loops stay
   uninstrumented. *)
let record ~suite ~metric ~unit_ value =
  Eric_telemetry.Control.with_enabled (fun () ->
      Eric_telemetry.Registry.set
        ~labels:[ ("suite", suite); ("metric", metric); ("unit", unit_) ]
        "bench.result" value)

let pct delta base = 100.0 *. (float_of_int delta /. float_of_int base)
let pct64 delta base = 100.0 *. (Int64.to_float delta /. Int64.to_float base)
let f1 v = Printf.sprintf "%.2f" v
let fpct v = Printf.sprintf "%+.2f%%" v
let i v = string_of_int v
let i64 v = Int64.to_string v
